//! Criterion bench: wall-clock cost of INCREMENTAL vs FULL refreshes as
//! the changed-data fraction grows (exp-crossover in DESIGN.md).
//!
//! The paper's claim (§3.3.2): incremental cost ≈ fixed + variable·Δ, so
//! small deltas refresh far cheaper than recomputing; at large deltas full
//! refresh wins. Absolute numbers differ from production (interpreter vs
//! vectorized engine); the *shape* is the reproduction target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dt_core::{DbConfig, Engine, Session};

const BASE_ROWS: usize = 2000;

fn setup(mode: &str) -> Session {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let db = engine.session();
    db.execute("CREATE TABLE src (k INT, v INT)").unwrap();
    let values: Vec<String> = (0..BASE_ROWS)
        .map(|i| format!("({}, {})", i % 100, i))
        .collect();
    db.execute(&format!("INSERT INTO src VALUES {}", values.join(", ")))
        .unwrap();
    db.execute(&format!(
        "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh \
         REFRESH_MODE = {mode} \
         AS SELECT k, count(*) c, sum(v) s FROM src GROUP BY k"
    ))
    .unwrap();
    db
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("refresh_cost");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for frac in [0.002, 0.02, 0.2, 1.0] {
        let n_changed = ((BASE_ROWS as f64) * frac).max(1.0) as usize;
        for mode in ["INCREMENTAL", "FULL"] {
            group.bench_with_input(
                BenchmarkId::new(mode.to_lowercase(), format!("{:.1}%", frac * 100.0)),
                &n_changed,
                |b, &n_changed| {
                    b.iter_with_setup(
                        || {
                            let db = setup(mode);
                            let values: Vec<String> = (0..n_changed)
                                .map(|i| format!("({}, {})", i % 100, 900_000 + i))
                                .collect();
                            db.execute(&format!(
                                "INSERT INTO src VALUES {}",
                                values.join(", ")
                            ))
                            .unwrap();
                            db
                        },
                        |db| {
                            db.execute("ALTER DYNAMIC TABLE agg REFRESH").unwrap();
                            db
                        },
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_refresh);
criterion_main!(benches);
