//! Criterion bench: per-operator differentiation cost and the §5.5
//! ablations (exp-operators in DESIGN.md):
//!
//! * delta computation per operator family vs full recompute;
//! * outer join: direct derivative vs the naive inner∪anti rewrite
//!   (§5.5.1's duplicated-subplan cost);
//! * change consolidation vs the insert-only specialization that skips it
//!   (§5.5.2).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dt_common::{row, Column, DataType, EntityId, Row, Schema};
use dt_exec::MapProvider;
use dt_ivm::{delta, DeltaContext, MapChanges, OuterJoinStrategy};
use dt_plan::{AggExpr, AggFunc, JoinType, LogicalPlan, ScalarExpr, WindowExpr, WindowFunc};
use dt_storage::ChangeSet;

const N: usize = 5000;
const DELTA_N: usize = 50;

fn scan(id: u64) -> LogicalPlan {
    LogicalPlan::TableScan {
        entity: EntityId(id),
        name: format!("t{id}"),
        schema: Arc::new(Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])),
        pushdown: None,
    }
}

/// Rows are (unique_key, group): join keys are unique (fanout 1, the
/// common case for key joins), groups have ~100 members each.
fn rows(n: usize, offset: i64) -> Vec<Row> {
    (0..n)
        .map(|i| row!(offset + i as i64, (i % 100) as i64))
        .collect()
}

struct Fixture {
    old: MapProvider,
    new: MapProvider,
    changes: MapChanges,
}

fn fixture() -> Fixture {
    let base = rows(N, 0);
    let fresh = rows(DELTA_N, N as i64); // fresh unique keys, existing groups
    let mut new_rows = base.clone();
    new_rows.extend(fresh.clone());
    let mut old = MapProvider::new();
    old.insert(EntityId(1), base.clone());
    old.insert(EntityId(2), base.clone());
    let mut new = MapProvider::new();
    new.insert(EntityId(1), new_rows.clone());
    new.insert(EntityId(2), base.clone());
    let mut changes = MapChanges::new();
    changes.insert(EntityId(1), ChangeSet::new(fresh, vec![]));
    changes.insert(EntityId(2), ChangeSet::empty());
    Fixture { old, new, changes }
}

fn plans() -> Vec<(&'static str, LogicalPlan)> {
    let join_on = ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2));
    vec![
        (
            "filter",
            LogicalPlan::Filter {
                input: Box::new(scan(1)),
                predicate: ScalarExpr::Binary {
                    left: Box::new(ScalarExpr::col(1)),
                    op: dt_plan::expr::BinOp::Gt,
                    right: Box::new(ScalarExpr::lit(10i64)),
                },
            },
        ),
        (
            "inner_join",
            LogicalPlan::Join {
                left: Box::new(scan(1)),
                right: Box::new(scan(2)),
                join_type: JoinType::Inner,
                on: join_on.clone(),
                schema: Arc::new(scan(1).schema().join(&scan(2).schema())),
            },
        ),
        (
            "aggregate",
            LogicalPlan::Aggregate {
                input: Box::new(scan(1)),
                group_exprs: vec![ScalarExpr::col(1)],
                aggregates: vec![AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::col(0)),
                    distinct: false,
                    name: "s".into(),
                }],
                schema: Arc::new(Schema::new(vec![
                    Column::new("k", DataType::Int),
                    Column::new("s", DataType::Int),
                ])),
            },
        ),
        (
            "distinct",
            LogicalPlan::Distinct {
                input: Box::new(scan(1)),
            },
        ),
        (
            "window",
            LogicalPlan::Window {
                input: Box::new(scan(1)),
                exprs: vec![WindowExpr {
                    func: WindowFunc::Sum,
                    arg: Some(ScalarExpr::col(0)),
                    partition_by: vec![ScalarExpr::col(1)],
                    order_by: vec![(ScalarExpr::col(0), false)],
                    name: "w".into(),
                }],
                schema: Arc::new(Schema::new(vec![
                    Column::new("k", DataType::Int),
                    Column::new("v", DataType::Int),
                    Column::new("w", DataType::Int),
                ])),
            },
        ),
    ]
}

fn bench_operator_deltas(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("operator_delta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (name, plan) in plans() {
        group.bench_with_input(BenchmarkId::new("delta", name), &plan, |b, plan| {
            let ctx = DeltaContext {
                old: &f.old,
                new: &f.new,
                changes: &f.changes,
                outer_join: OuterJoinStrategy::Direct,
            };
            b.iter(|| delta(plan, &ctx).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("full_recompute", name), &plan, |b, plan| {
            b.iter(|| {
                // Full refresh baseline: evaluate at the new snapshot.
                let new = dt_exec::execute(plan, &f.new).unwrap();
                let old = dt_exec::execute(plan, &f.old).unwrap();
                ChangeSet::new(new, old).consolidate()
            });
        });
    }
    group.finish();
}

fn bench_outer_join_strategies(c: &mut Criterion) {
    let f = fixture();
    let plan = LogicalPlan::Join {
        left: Box::new(scan(1)),
        right: Box::new(scan(2)),
        join_type: JoinType::Left,
        on: ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2)),
        schema: Arc::new(scan(1).schema().join(&scan(2).schema())),
    };
    let mut group = c.benchmark_group("outer_join_strategy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, strategy) in [
        ("direct", OuterJoinStrategy::Direct),
        ("naive_rewrite", OuterJoinStrategy::NaiveRewrite),
    ] {
        group.bench_function(label, |b| {
            let ctx = DeltaContext {
                old: &f.old,
                new: &f.new,
                changes: &f.changes,
                outer_join: strategy,
            };
            b.iter(|| delta(&plan, &ctx).unwrap());
        });
    }
    group.finish();
}

fn bench_consolidation(c: &mut Criterion) {
    // Insert-only specialization: consolidation is a no-op that can be
    // skipped when the plan and changes are insert-only (§5.5.2).
    let inserts: Vec<Row> = rows(20_000, 0);
    let mut group = c.benchmark_group("consolidation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("consolidate", |b| {
        b.iter_with_setup(
            || ChangeSet::new(inserts.clone(), vec![]),
            |cs| cs.consolidate(),
        );
    });
    group.bench_function("insert_only_skip", |b| {
        let plan = scan(1);
        b.iter_with_setup(
            || ChangeSet::new(inserts.clone(), vec![]),
            |cs| dt_ivm::merge::maybe_consolidate(&plan, true, cs),
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_operator_deltas,
    bench_outer_join_strategies,
    bench_consolidation
);
criterion_main!(benches);
