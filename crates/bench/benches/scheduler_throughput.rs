//! Criterion bench: scheduler planning cost for large DT graphs.
//!
//! §5.1: the scheduler consumes the DDL log, renders the dependency graph,
//! and issues refresh commands. This bench measures `due_refreshes` over
//! fleets of independent DTs and over deep chains — the two topologies §5.2
//! calls out (long chains limit responsiveness under the canonical-period
//! heuristic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dt_common::{Duration, EntityId, Timestamp};
use dt_scheduler::{RefreshAction, RefreshOutcome, Scheduler, SchedulerConfig, TargetLag};

fn flat_fleet(n: u64) -> Scheduler {
    let mut s = Scheduler::new(SchedulerConfig::default());
    for i in 0..n {
        s.register(
            EntityId(i),
            TargetLag::Duration(Duration::from_mins(1 + (i % 60) as i64)),
            vec![],
        );
        s.mark_initialized(EntityId(i), Timestamp::EPOCH).unwrap();
    }
    s
}

fn chain(n: u64) -> Scheduler {
    let mut s = Scheduler::new(SchedulerConfig::default());
    for i in 0..n {
        let upstream = if i == 0 { vec![] } else { vec![EntityId(i - 1)] };
        s.register(EntityId(i), TargetLag::Duration(Duration::from_mins(5)), upstream);
        s.mark_initialized(EntityId(i), Timestamp::EPOCH).unwrap();
    }
    s
}

fn ok() -> RefreshOutcome {
    RefreshOutcome {
        action: RefreshAction::Incremental,
        changed_rows: 1,
        dt_rows: 10,
        work_units: 10.0,
    }
}

fn bench_due(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_due_refreshes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for n in [100u64, 1000] {
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, &n| {
            b.iter_with_setup(
                || flat_fleet(n),
                |mut s| {
                    let due = s.due_refreshes(Timestamp::from_secs(3600));
                    std::hint::black_box(due.len())
                },
            );
        });
    }
    // Chains drain one wave per due_refreshes call; keep sizes moderate
    // (the planner's per-call cost is O(n²) over the DT graph).
    for n in [50u64, 200] {
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            b.iter_with_setup(
                || chain(n),
                |mut s| {
                    // Drain one full wave down the chain.
                    let mut total = 0;
                    let now = Timestamp::from_secs(3600);
                    loop {
                        let due = s.due_refreshes(now);
                        if due.is_empty() {
                            break;
                        }
                        total += due.len();
                        for cmd in due {
                            s.report(cmd.dt, cmd.refresh_ts, &ok(), now).unwrap();
                        }
                    }
                    std::hint::black_box(total)
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_due);
criterion_main!(benches);
