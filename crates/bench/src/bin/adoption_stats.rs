//! §6.3 headline statistics, regenerated from a live fleet simulation:
//!
//! * ~70% of active DTs have incremental refresh mode;
//! * >90% of refreshes move no data (NO_DATA);
//! * 67% of incremental refreshes change <1% of the DT;
//! * 21% change more than 10%.
//!
//! Run with: `cargo run -p dt-bench --bin adoption_stats`

use dt_bench::{apply_bulk_change, apply_traffic, build_fleet, create_base_tables};
use dt_catalog::RefreshMode;
use dt_common::{Duration, Timestamp};
use dt_core::{DbConfig, Engine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 8).unwrap();
    let db = engine.session();
    create_base_tables(&db).unwrap();
    // A modest fleet with lags across the spectrum. Most DTs have lags far
    // above the base-table update cadence, which is what produces the
    // paper's ">90% NO_DATA" in production (customers set target lag lower
    // than their data refresh rate).
    let names = build_fleet(&db, &mut rng, 120).unwrap();

    // Simulate 8 hours; sparse burst traffic every ~40 minutes.
    let end = Timestamp::from_secs(8 * 3600);
    let mut t = Timestamp::EPOCH;
    let mut round = 0u32;
    while t < end {
        t = t.add(Duration::from_mins(40));
        engine.run_scheduler_until(t).unwrap();
        round += 1;
        if round.is_multiple_of(5) {
            // Occasional broad change: the ">10% of the DT" bucket.
            apply_bulk_change(&db, &mut rng).unwrap();
        } else {
            apply_traffic(&db, &mut rng, 4).unwrap();
        }
    }
    engine.run_scheduler_until(end).unwrap();

    // Measurement 1: refresh-mode census.
    let incremental_dts = engine.inspect(|s| {
        names
            .iter()
            .filter(|n| {
                s.catalog().resolve(n).unwrap().as_dt().unwrap().refresh_mode
                    == RefreshMode::Incremental
            })
            .count()
    });

    // Measurement 2: action mix over the refresh log.
    let full_log = engine.refresh_log().entries();
    let log: Vec<_> = full_log.iter().filter(|e| !e.initial).collect();
    let total = log.len();
    let no_data = log.iter().filter(|e| e.action == "no_data").count();

    // Measurements 3/4: changed-rows ratio of incremental refreshes
    // (non-initial, non-empty — §6.3's filter).
    let inc: Vec<_> = log
        .iter()
        .filter(|e| e.action == "incremental" && e.changed_rows > 0 && e.dt_rows > 0)
        .collect();
    let small = inc
        .iter()
        .filter(|e| (e.changed_rows as f64) < 0.01 * e.dt_rows as f64)
        .count();
    let large = inc
        .iter()
        .filter(|e| (e.changed_rows as f64) > 0.10 * e.dt_rows as f64)
        .count();

    println!("# §6.3 adoption statistics — paper vs measured (fleet = {}, 8h sim)", names.len());
    println!(
        "  incremental refresh mode:   paper ~70%   measured {:>5.1}%  ({incremental_dts}/{})",
        incremental_dts as f64 / names.len() as f64 * 100.0,
        names.len()
    );
    println!(
        "  NO_DATA refreshes:          paper >90%   measured {:>5.1}%  ({no_data}/{total})",
        no_data as f64 / total as f64 * 100.0
    );
    if !inc.is_empty() {
        println!(
            "  incr. changing <1% of DT:   paper  67%   measured {:>5.1}%  ({small}/{})",
            small as f64 / inc.len() as f64 * 100.0,
            inc.len()
        );
        println!(
            "  incr. changing >10% of DT:  paper  21%   measured {:>5.1}%  ({large}/{})",
            large as f64 / inc.len() as f64 * 100.0,
            inc.len()
        );
    }
    println!(
        "\n  total refreshes: {total}; skips: {}; credits: {:.0} node-seconds",
        engine.inspect(|s| {
            s.scheduler()
                .registered()
                .iter()
                .filter_map(|id| s.scheduler().state(*id))
                .map(|s| s.skipped_total)
                .sum::<u64>()
        }),
        engine.inspect(|s| s.warehouses().total_credits())
    );
}
