//! Incremental vs full refresh cost crossover (§3.3.2 / §6.3).
//!
//! §3.3.2: incremental cost = fixed + variable, with the variable part
//! linear in the changed data. §6.3 notes 21% of refreshes change >10% of
//! their DT, "highlighting the need to dynamically choose full refreshes
//! when a large fraction of the data has changed". This harness sweeps the
//! changed fraction and reports the work units of both modes; the shape to
//! reproduce is: incremental wins by a wide margin at small fractions, and
//! the two converge (with full eventually cheaper) as the fraction grows.
//!
//! Run with: `cargo run -p dt-bench --bin crossover_sweep`

use dt_core::{DbConfig, Engine, Session};

const BASE_ROWS: usize = 4000;

fn setup(mode: &str) -> (Engine, Session) {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let db = engine.session();
    db.execute("CREATE TABLE src (k INT, v INT)").unwrap();
    let mut values = Vec::new();
    for i in 0..BASE_ROWS {
        values.push(format!("({}, {})", i % 200, i));
    }
    db.execute(&format!("INSERT INTO src VALUES {}", values.join(", ")))
        .unwrap();
    db.execute(&format!(
        "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh \
         REFRESH_MODE = {mode} AS SELECT k, count(*) c, sum(v) s FROM src GROUP BY k"
    ))
    .unwrap();
    (engine, db)
}

/// Returns (wall micros of the refresh, action label).
fn run(mode: &str, changed_fraction: f64) -> (u128, &'static str) {
    let (engine, db) = setup(mode);
    let n_changed = ((BASE_ROWS as f64) * changed_fraction).max(1.0) as usize;
    let mut values = Vec::new();
    for i in 0..n_changed {
        values.push(format!("({}, {})", i % 200, 100_000 + i));
    }
    db.execute(&format!("INSERT INTO src VALUES {}", values.join(", ")))
        .unwrap();
    let t0 = std::time::Instant::now();
    db.execute("ALTER DYNAMIC TABLE agg REFRESH").unwrap();
    let micros = t0.elapsed().as_micros();
    (micros, engine.refresh_log().last().unwrap().action)
}

fn main() {
    println!("# Incremental vs full refresh: wall time per refresh (µs, median of 5)");
    println!("# (base table: {BASE_ROWS} rows; DT: 200 groups)");
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>9}",
        "changed", "incremental", "full", "ratio", "winner"
    );
    for frac in [0.001, 0.005, 0.01, 0.05, 0.10, 0.25, 0.50, 1.00] {
        let median = |mode: &str| {
            let mut xs: Vec<u128> = (0..5).map(|_| run(mode, frac).0).collect();
            xs.sort();
            xs[2]
        };
        let inc = median("INCREMENTAL");
        let full = median("FULL");
        println!(
            "{:>9.1}% {:>14} {:>14} {:>9.2} {:>9}",
            frac * 100.0,
            inc,
            full,
            inc as f64 / full as f64,
            if inc < full { "incr" } else { "full" }
        );
    }
    println!("\n# expected shape (paper §3.3.2/§6.3): incremental wins by a wide");
    println!("# margin at small change fractions; as the fraction grows the");
    println!("# advantage shrinks and eventually inverts — the motivation for");
    println!("# dynamically choosing FULL when a large fraction changed.");
}
