//! DAG refresh throughput: what does level-parallel refresh with group
//! install buy over refreshing the same DAG serially?
//!
//! The harness builds a `levels × fanout` DT grid over one churning base
//! table — level 0 reads the base, level *i* reads level *i-1* — and
//! drives `rounds` refresh rounds through two arms:
//!
//! * `serial` — every DT refreshed one at a time in topological order
//!   under the engine write lock (`EngineState::run_refresh`), the
//!   pre-PR-8 behaviour.
//! * `parallel` — [`dt_core::Engine::refresh_all_parallel`]: each level's
//!   deltas computed concurrently against pinned snapshots, installs
//!   group-committed so a whole level lands in one or two engine-lock
//!   acquisitions.
//!
//! Report per arm: refreshes/s, per-DT actual lag (wall-clock offset from
//! round start to that DT's install — the paper's §3.3.2 actual-lag
//! measure against the 1-minute target every DT declares) at p50/p99,
//! and group-install telemetry (lock acquisitions, max batch).
//!
//! Gates (exit non-zero on violation):
//! * both arms refresh every DT every round and converge to identical
//!   contents — the arms must agree before speed matters;
//! * every per-DT actual lag stays under the declared 1-minute target;
//! * on hosts with ≥ 4 cores, parallel throughput ≥ 2x serial (skipped
//!   below 4 cores, where level parallelism has nothing to run on).
//!
//! Run with: `cargo run --release -p dt-bench --bin dag_refresh`
//! Optional args: `[levels] [fanout] [rounds] [--json PATH]`.

use std::time::Instant;

use dt_core::{DbConfig, Engine, RoundStatus};

/// The target lag every DT in the grid declares, in microseconds.
const TARGET_LAG_US: u64 = 60_000_000;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn dt_name(level: usize, slot: usize) -> String {
    format!("d_{level}_{slot}")
}

/// Build the grid: `fanout` chains of depth `levels` over one base table.
fn setup(levels: usize, fanout: usize) -> Engine {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE src (k INT, v INT)").unwrap();
    s.execute("INSERT INTO src VALUES (0, 0)").unwrap();
    for level in 0..levels {
        for slot in 0..fanout {
            let upstream = if level == 0 {
                "src".to_string()
            } else {
                dt_name(level - 1, slot)
            };
            s.execute(&format!(
                "CREATE DYNAMIC TABLE {} TARGET_LAG = '1 minute' WAREHOUSE = wh \
                 AS SELECT k, v FROM {upstream}",
                dt_name(level, slot)
            ))
            .unwrap();
        }
    }
    engine
}

struct ArmReport {
    mode: &'static str,
    refreshes: u64,
    wall_ms: u128,
    refreshes_per_s: f64,
    lag_p50_us: u64,
    lag_p99_us: u64,
    lock_acquisitions: u64,
    max_batch: u64,
    workers: u64,
}

fn finish_arm(
    mode: &'static str,
    engine: &Engine,
    refreshes: u64,
    wall: std::time::Duration,
    mut lags: Vec<u64>,
) -> ArmReport {
    lags.sort_unstable();
    let stats = engine.refresh_stats();
    ArmReport {
        mode,
        refreshes,
        wall_ms: wall.as_millis(),
        refreshes_per_s: refreshes as f64 / wall.as_secs_f64(),
        lag_p50_us: percentile(&lags, 0.50),
        lag_p99_us: percentile(&lags, 0.99),
        lock_acquisitions: stats.install_lock_acquisitions,
        max_batch: stats.max_batch,
        workers: stats.workers,
    }
}

/// The serial arm: topological order, one DT at a time, engine write lock
/// held across each refresh.
fn run_serial(levels: usize, fanout: usize, rounds: usize) -> (Engine, ArmReport) {
    let engine = setup(levels, fanout);
    let s = engine.session();
    let order: Vec<String> = (0..levels)
        .flat_map(|l| (0..fanout).map(move |f| dt_name(l, f)))
        .collect();
    let ids: Vec<_> = order
        .iter()
        .map(|n| engine.inspect(|st| st.catalog().resolve(n).unwrap().id))
        .collect();

    let mut lags = Vec::new();
    let mut refreshes = 0u64;
    let started = Instant::now();
    for round in 0..rounds {
        s.execute(&format!("INSERT INTO src VALUES ({round}, {round})")).unwrap();
        let round_start = Instant::now();
        engine.inspect_mut(|st| {
            let refresh_ts = st.txn_manager().hlc().tick();
            for &dt in &ids {
                st.run_refresh(dt, refresh_ts, false).unwrap();
                lags.push(round_start.elapsed().as_micros() as u64);
                refreshes += 1;
            }
        });
    }
    let report = finish_arm("serial", &engine, refreshes, started.elapsed(), lags);
    (engine, report)
}

/// The parallel arm: whole-DAG rounds through the level-parallel
/// group-install path.
fn run_parallel(levels: usize, fanout: usize, rounds: usize) -> (Engine, ArmReport) {
    let engine = setup(levels, fanout);
    let s = engine.session();
    let mut lags = Vec::new();
    let mut refreshes = 0u64;
    let started = Instant::now();
    for round in 0..rounds {
        s.execute(&format!("INSERT INTO src VALUES ({round}, {round})")).unwrap();
        let report = engine.refresh_all_parallel().unwrap();
        assert_eq!(
            report.failed + report.conflicts + report.pruned,
            0,
            "an uncontended round refreshes everything: {report:?}"
        );
        for (_, status) in &report.outcomes {
            if let RoundStatus::Installed { at_micros, .. } = status {
                lags.push(*at_micros);
                refreshes += 1;
            }
        }
    }
    let report = finish_arm("parallel", &engine, refreshes, started.elapsed(), lags);
    (engine, report)
}

fn json_line(r: &ArmReport) -> String {
    format!(
        "{{\"mode\": \"{}\", \"refreshes\": {}, \"wall_ms\": {}, \
         \"refreshes_per_s\": {:.1}, \"lag_p50_us\": {}, \"lag_p99_us\": {}, \
         \"target_lag_us\": {}, \"install_lock_acquisitions\": {}, \
         \"max_batch\": {}, \"workers\": {}}}",
        r.mode,
        r.refreshes,
        r.wall_ms,
        r.refreshes_per_s,
        r.lag_p50_us,
        r.lag_p99_us,
        TARGET_LAG_US,
        r.lock_acquisitions,
        r.max_batch,
        r.workers,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    let mut json_path: Option<String> = None;
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        } else {
            positional.push(a);
        }
    }
    let levels: usize = positional.first().map_or(3, |a| a.parse().unwrap());
    let fanout: usize = positional.get(1).map_or(4, |a| a.parse().unwrap());
    let rounds: usize = positional.get(2).map_or(5, |a| a.parse().unwrap());
    let dts = levels * fanout;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "dag_refresh: {levels} levels x {fanout} fanout = {dts} DTs, \
         {rounds} rounds, {cores} cores"
    );

    let (serial_engine, serial) = run_serial(levels, fanout, rounds);
    let (parallel_engine, parallel) = run_parallel(levels, fanout, rounds);

    println!(
        "{:<10} {:>10} {:>9} {:>12} {:>12} {:>12} {:>8} {:>9}",
        "mode", "refreshes", "wall_ms", "refresh/s", "lag_p50_us", "lag_p99_us", "locks", "max_batch"
    );
    for r in [&serial, &parallel] {
        println!(
            "{:<10} {:>10} {:>9} {:>12.1} {:>12} {:>12} {:>8} {:>9}",
            r.mode,
            r.refreshes,
            r.wall_ms,
            r.refreshes_per_s,
            r.lag_p50_us,
            r.lag_p99_us,
            r.lock_acquisitions,
            r.max_batch,
        );
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"bench\": \"dag_refresh\",\n  \"levels\": {levels},\n  \
             \"fanout\": {fanout},\n  \"rounds\": {rounds},\n  \"cores\": {cores},\n  \
             \"runs\": [\n    {},\n    {}\n  ]\n}}\n",
            json_line(&serial),
            json_line(&parallel),
        );
        std::fs::write(&path, json).unwrap();
        println!("wrote {path}");
    }

    // Gate 1: both arms refreshed every DT every round...
    let expected = (dts * rounds) as u64;
    assert_eq!(serial.refreshes, expected, "serial arm skipped refreshes");
    assert_eq!(parallel.refreshes, expected, "parallel arm skipped refreshes");
    // ...and converged to identical contents (deepest level sees all rows).
    let ss = serial_engine.session();
    let ps = parallel_engine.session();
    for slot in 0..fanout {
        let q = format!("SELECT * FROM {}", dt_name(levels - 1, slot));
        let lhs = ss.query_sorted(&q).unwrap();
        let rhs = ps.query_sorted(&q).unwrap();
        assert_eq!(lhs, rhs, "arms disagree on {q}");
        assert_eq!(lhs.len(), rounds + 1, "stale chain tail in {q}");
    }

    // Gate 2: every DT met its declared target lag in both arms.
    for r in [&serial, &parallel] {
        assert!(
            r.lag_p99_us < TARGET_LAG_US,
            "{}: p99 actual lag {}us breaches the {}us target",
            r.mode,
            r.lag_p99_us,
            TARGET_LAG_US
        );
    }

    // Gate 3: with real cores to run on, level parallelism must pay.
    if cores >= 4 {
        assert!(
            parallel.refreshes_per_s >= 2.0 * serial.refreshes_per_s,
            "parallel ({:.1}/s) is not 2x serial ({:.1}/s) on a {cores}-core host",
            parallel.refreshes_per_s,
            serial.refreshes_per_s
        );
        println!(
            "gate: parallel {:.1}/s >= 2x serial {:.1}/s — ok",
            parallel.refreshes_per_s, serial.refreshes_per_s
        );
    } else {
        println!("gate: parallel >= 2x serial skipped ({cores} cores < 4)");
    }
    println!("dag_refresh ok");
}
