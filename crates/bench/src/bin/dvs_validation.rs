//! The §6.1 level-4 randomized workload test at harness scale:
//!
//! > "Checking this assertion within a framework that generates random SQL
//! > queries allows us to test the correctness of hundreds of thousands of
//! > different DTs in a matter of hours."
//!
//! Generates random DTs and random DML, refreshes with the in-engine DVS
//! validation enabled, and reports the pass count. Any violation aborts
//! with the failing DT's definition.
//!
//! Run with: `cargo run -p dt-bench --bin dvs_validation [n_dts]`

use dt_bench::{apply_traffic, create_base_tables, sample_query};
use dt_core::{DbConfig, Engine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let mut rng = StdRng::seed_from_u64(99);
    let mut validated_refreshes = 0u64;
    let mut dts_checked = 0u64;

    // Fresh database per batch keeps catalogs small and exercises
    // initialization paths repeatedly.
    let batch = 20;
    for batch_idx in 0..n.div_ceil(batch) {
        let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
        let engine = Engine::new(cfg);
        engine.create_warehouse("wh", 4).unwrap();
        let db = engine.session();
        create_base_tables(&db).unwrap();
        let mut names = Vec::new();
        for i in 0..batch.min(n - batch_idx * batch) {
            let q = sample_query(&mut rng);
            let name = format!("v_{i}");
            db.execute(&format!(
                "CREATE DYNAMIC TABLE {name} TARGET_LAG = '1 minute' WAREHOUSE = wh AS {q}"
            ))
            .unwrap_or_else(|e| panic!("create failed for {q}: {e}"));
            names.push((name, q));
        }
        for round in 0..4 {
            apply_traffic(&db, &mut rng, 10).unwrap();
            for (name, q) in &names {
                db.execute(&format!("ALTER DYNAMIC TABLE {name} REFRESH"))
                    .unwrap_or_else(|e| panic!("refresh {round} failed for {q}: {e}"));
                validated_refreshes += 1;
            }
        }
        dts_checked += names.len() as u64;
    }
    println!("DVS validation: {dts_checked} random DTs, {validated_refreshes} refreshes");
    println!("every refresh upheld: DT contents == defining query at the data timestamp");
    println!("0 discrepancies");
}
