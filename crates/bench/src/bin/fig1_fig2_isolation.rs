//! Figures 1 and 2: the §4 worked isolation histories, regenerated.
//!
//! Figure 1 (persisted table semantics): refresh transactions mask the
//! conflict — the DSG is serializable despite visible read skew.
//! Figure 2 (delayed view semantics): refreshes become derivations and the
//! read skew appears as a G-single cycle T5 ⇄ T2.
//!
//! This binary also demonstrates the same contrast *live* on the engine:
//! the same schedule of DML, refreshes, and reads run under both version
//! semantics.
//!
//! Run with: `cargo run -p dt-bench --bin fig1_fig2_isolation`

use dt_core::{DbConfig, Engine, VersionSemantics};
use dt_isolation::{analyze, History};

fn theory() {
    // --- Figure 1 ---
    let mut h1 = History::new();
    h1.write(1, "x", 1).commit(1);
    h1.read(3, "x", 1).write(3, "y", 3).commit(3);
    h1.write(2, "x", 2).commit(2);
    h1.read(4, "x", 2).write(4, "y", 4).commit(4);
    h1.read(5, "y", 3).read(5, "x", 2).commit(5);
    let r1 = analyze(&h1);

    // --- Figure 2 ---
    let mut h2 = History::new();
    h2.write(1, "x", 1).commit(1);
    h2.derive(3, ("y", 3), &[("x", 1)]).commit(3);
    h2.write(2, "x", 2).commit(2);
    h2.derive(4, ("y", 4), &[("x", 2)]).commit(4);
    h2.read(5, "y", 3).read(5, "x", 2).commit(5);
    let r2 = analyze(&h2);

    println!("# Figure 1 — persisted table semantics");
    println!("  edges: {}", r1.dsg.edges.len());
    println!("  phenomena: {:?}", r1.phenomena.iter().map(|p| p.tag()).collect::<Vec<_>>());
    println!("  level: {}  (paper: serializable, read skew invisible)", r1.level);
    println!();
    println!("# Figure 2 — delayed view semantics (derivations)");
    println!("  edges: {}", r2.dsg.edges.len());
    println!(
        "  phenomena: {:?} (G-single: {})",
        r2.phenomena.iter().map(|p| p.tag()).collect::<Vec<_>>(),
        r2.phenomena.iter().any(|p| p.is_g_single())
    );
    println!("  level: {}  (paper: G2/G-single cycle reveals the skew)", r2.level);
    assert_eq!(format!("{}", r1.level), "PL-3 (Serializable)");
    assert!(r2.phenomena.iter().any(|p| p.is_g_single()));
}

/// The same application schedule on the live engine under both semantics:
/// a balance table with an audit DT; T5 reads the (stale) audit and the
/// (fresh) base table.
fn live(semantics: VersionSemantics) -> (Vec<dt_common::Row>, Vec<dt_common::Row>) {
    let cfg = DbConfig { semantics, ..DbConfig::default() };
    let engine = Engine::new(cfg);
    engine.create_warehouse("wh", 2).unwrap();
    let db = engine.session();
    db.execute("CREATE TABLE bt (x INT)").unwrap();
    db.execute("INSERT INTO bt VALUES (1)").unwrap(); // T1: x := 1
    db.execute(
        "CREATE DYNAMIC TABLE dt TARGET_LAG = '1 hour' WAREHOUSE = wh \
         AS SELECT x * 100 y FROM bt",
    )
    .unwrap(); // refresh: y3 derived from x1
    db.execute("UPDATE bt SET x = 2").unwrap(); // T2: x := 2
    // T5: reads dt (stale) and bt (fresh) — the read-skew observation.
    let y = db.query("SELECT y FROM dt").unwrap().into_rows();
    let x = db.query("SELECT x FROM bt").unwrap().into_rows();
    (y, x)
}

fn main() {
    theory();
    println!();
    println!("# live engine, same schedule under both semantics:");
    for semantics in [VersionSemantics::Dvs, VersionSemantics::Persisted] {
        let (y, x) = live(semantics);
        println!(
            "  {semantics:?}: T5 observes y = {:?}, x = {:?}  (skew: y != 100*x)",
            y[0].get(0),
            x[0].get(0)
        );
    }
    println!();
    println!("# Both semantics expose the same *values* to T5 here; the paper's");
    println!("# point is about the model: only DVS (derivations) lets the DSG");
    println!("# name the anomaly, so applications can reason about it (§4).");
}
