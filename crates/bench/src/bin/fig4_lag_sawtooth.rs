//! Figure 4: the lag sawtooth.
//!
//! One DT with a 5-minute target lag, continuous update traffic. We print
//! the (time, lag) series of peaks and troughs and decompose each cycle
//! into `p + w + d < t` per §5.2.
//!
//! Run with: `cargo run -p dt-bench --bin fig4_lag_sawtooth`

use dt_bench::create_base_tables;
use dt_common::{Duration, Timestamp};
use dt_core::{DbConfig, Engine};

fn main() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 2).unwrap();
    let db = engine.session();
    create_base_tables(&db).unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE sawtooth TARGET_LAG = '5 minutes' WAREHOUSE = wh \
         AS SELECT k, count(*) n, sum(v) s FROM events GROUP BY k",
    )
    .unwrap();

    // 30 minutes of traffic: DML every 30 simulated seconds so every
    // refresh has data.
    let end = Timestamp::from_secs(1800);
    let mut t = Timestamp::EPOCH;
    let mut i = 0i64;
    while t < end {
        t = t.add(Duration::from_secs(30));
        engine.run_scheduler_until(t).unwrap();
        i += 1;
        db.execute(&format!("INSERT INTO events VALUES ({}, {i}, 'w')", i % 8))
            .unwrap();
    }

    let (st, period) = engine.inspect(|s| {
        let id = s.catalog().resolve("sawtooth").unwrap().id;
        (
            s.scheduler().state(id).unwrap().clone(),
            s.scheduler().period_of(id).unwrap(),
        )
    });

    println!("# Figure 4 — lag over time (sawtooth)");
    println!("# target lag t = 5m; chosen canonical period p = {period}");
    println!("#");
    println!("# The lag rises at 1 s/s between refresh commits (peaks) and");
    println!("# drops to the trough when a refresh commits.");
    println!("#");
    println!("{:>12} {:>14} {:>8}", "time", "lag_seconds", "kind");
    for s in &st.lag_samples {
        println!(
            "{:>12} {:>14.2} {:>8}",
            s.at.to_string(),
            s.lag.as_secs_f64(),
            if s.peak { "peak" } else { "trough" }
        );
    }

    // Decompose consecutive cycles into p, w+d (we fold w and d together:
    // the wait is zero for a single un-contended DT) and check p+w+d < t.
    println!("\n# cycle decomposition: p + (w+d) < t = 300s");
    let troughs: Vec<_> = st.lag_samples.iter().filter(|s| !s.peak).collect();
    for pair in troughs.windows(2) {
        let p = period.as_secs_f64();
        let wd = pair[1].lag.as_secs_f64();
        println!(
            "  p = {:>6.1}s   w+d = {:>5.2}s   p+w+d = {:>7.2}s  {}",
            p,
            wd,
            p + wd,
            if p + wd < 300.0 { "< t ✓" } else { "EXCEEDS t ✗" }
        );
    }
    let max_peak = st
        .lag_samples
        .iter()
        .filter(|s| s.peak)
        .map(|s| s.lag)
        .max()
        .unwrap();
    println!("\nmax peak lag observed: {max_peak} (target 5m) — within target: {}",
        max_peak <= Duration::from_mins(5));
}
