//! Figure 5: distribution of the target lags of active DTs.
//!
//! Builds a synthetic fleet (the stand-in for Snowflake's million-table
//! production population, see DESIGN.md) and measures the distribution the
//! way the paper does: a census over the live catalog.
//!
//! Paper's reported shape: >25% of DTs at or above 16 hours (batch),
//! ~20% under 5 minutes (streaming), ~55% in between.
//!
//! Run with: `cargo run -p dt-bench --bin fig5_lag_distribution`

use std::collections::BTreeMap;

use dt_bench::{bar, build_fleet, create_base_tables, lag_bucket, LAG_BUCKETS};
use dt_catalog::TargetLagSpec;
use dt_core::{DbConfig, Engine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 8).unwrap();
    let db = engine.session();
    create_base_tables(&db).unwrap();
    let n = 600;
    build_fleet(&db, &mut rng, n).unwrap();

    // Census over the live catalog (the measurement, not the generator).
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    engine.inspect(|s| {
        for id in s.catalog().dynamic_tables() {
            let meta = s.catalog().get(id).unwrap().as_dt().unwrap();
            let lag = match meta.target_lag {
                TargetLagSpec::Duration(d) => d,
                TargetLagSpec::Downstream => continue,
            };
            *counts.entry(lag_bucket(lag)).or_insert(0) += 1;
        }
    });
    let total: usize = counts.values().sum();

    println!("# Figure 5 — distribution of target lags of active DTs (n = {total})");
    println!("{:>8} {:>8} {:>7}  chart", "bucket", "count", "share");
    for (label, _, _) in LAG_BUCKETS {
        let c = counts.get(label).copied().unwrap_or(0);
        let frac = c as f64 / total as f64;
        println!("{label:>8} {c:>8} {:>6.1}%  {}", frac * 100.0, bar(frac, 40));
    }

    let under_5m: usize = ["<1m", "1m-5m"]
        .iter()
        .map(|l| counts.get(l).copied().unwrap_or(0))
        .sum();
    let over_16h = counts.get(">=16h").copied().unwrap_or(0);
    let middle = total - under_5m - over_16h;
    println!("\n# paper-vs-measured:");
    println!(
        "  <5m (streaming):  paper ~20%   measured {:.1}%",
        under_5m as f64 / total as f64 * 100.0
    );
    println!(
        "  >=16h (batch):    paper >25%   measured {:.1}%",
        over_16h as f64 / total as f64 * 100.0
    );
    println!(
        "  in between:       paper ~55%   measured {:.1}%",
        middle as f64 / total as f64 * 100.0
    );
}
