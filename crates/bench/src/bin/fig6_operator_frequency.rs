//! Figure 6: frequency of each operator in the definitions of incremental
//! DTs ("joins, aggregates, and window functions are common").
//!
//! Builds a synthetic fleet and runs the census over the *bound plans* of
//! every DT in incremental refresh mode.
//!
//! Run with: `cargo run -p dt-bench --bin fig6_operator_frequency`

use std::collections::BTreeMap;

use dt_bench::{bar, build_fleet, create_base_tables};
use dt_catalog::RefreshMode;
use dt_core::{DbConfig, Engine};
use dt_plan::{operator_census, OperatorKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 8).unwrap();
    let db = engine.session();
    create_base_tables(&db).unwrap();
    let names = build_fleet(&db, &mut rng, 600).unwrap();

    // Census: fraction of incremental DT definitions containing each
    // operator at least once.
    let mut containing: BTreeMap<OperatorKind, usize> = BTreeMap::new();
    let mut incremental = 0usize;
    for name in &names {
        let meta_mode = engine.inspect(|s| {
            s.catalog().resolve(name).unwrap().as_dt().unwrap().refresh_mode
        });
        if meta_mode != RefreshMode::Incremental {
            continue;
        }
        incremental += 1;
        let plan = engine.dt_plan(name).unwrap();
        for (kind, _count) in operator_census(&plan) {
            *containing.entry(kind).or_insert(0) += 1;
        }
    }

    println!(
        "# Figure 6 — operator frequency in incremental DT definitions (n = {incremental})"
    );
    println!("{:>16} {:>7}  chart", "operator", "share");
    let mut rows: Vec<(OperatorKind, usize)> = containing.into_iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    for (kind, c) in rows {
        let frac = c as f64 / incremental as f64;
        println!("{:>16} {:>6.1}%  {}", kind.name(), frac * 100.0, bar(frac, 40));
    }
    println!("\n# paper's qualitative claim: projections/filters ubiquitous;");
    println!("# joins, aggregates, and window functions common — compare above.");
}
