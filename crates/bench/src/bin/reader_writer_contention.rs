//! Reader/writer contention: does a heavy refresh workload stall readers?
//!
//! The MVCC read path (PR 3) pins a [`dt_core::ReadSnapshot`] under a
//! brief engine read lock and then binds, plans, and executes with no lock
//! at all, so readers are no longer serialized behind in-flight refreshes.
//! This harness measures that claim with wall-clock latency. A **writer**
//! thread hammers the engine: batched DML plus a FULL refresh of an
//! aggregate DT per iteration, then a deterministic dwell *inside the
//! write lock* after each refresh — modeling the paper's picture, where a
//! refresh occupies its DT for the whole warehouse execution (§3.3.3,
//! §5.3) — so the write-lock hold time is stable even on single-core CI
//! machines. **Reader** threads run `SELECT * FROM agg` in a loop and
//! record per-query latency under three read paths:
//!
//! * `serialized` — the pre-MVCC behaviour, emulated by holding the engine
//!   read lock for the entire bind+plan+execute (`Engine::inspect`). Every
//!   read waits out in-flight refreshes *and* stalls the next refresh for
//!   as long as it executes.
//! * `per-query` — the current `Session::query` path: a brief snapshot
//!   capture under the read lock (this still queues behind an in-flight
//!   refresh), then lock-free execution.
//! * `pinned` — the long-reader scenario: one [`dt_core::ReadSnapshot`]
//!   captured up front and queried repeatedly, touching no engine lock at
//!   all while refreshes land.
//!
//! The report prints reader p50/p99/max latency and query counts per
//! path. Expected shape: `serialized` tracks the refresh hold time,
//! `per-query` pays it only at capture, and `pinned` stays at its own
//! execution cost — readers are no longer serialized behind writers.
//!
//! Run with: `cargo run --release -p dt-bench --bin reader_writer_contention`
//! Optional args: `[seconds-per-phase] [reader-threads] [refresh-hold-ms]`
//! (defaults 2, 4, and 15).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration as WallDuration, Instant};

use dt_core::{DbConfig, Engine, EngineState, Session};

/// Rows inserted per writer iteration.
const WRITE_BATCH: usize = 20;
/// Distinct keys in the base table = groups in the DT.
const KEYS: usize = 200;
/// Seed rows (every FULL refresh recomputes the aggregate over them).
const SEED_ROWS: usize = 2_000;

#[derive(Clone, Copy, PartialEq)]
enum ReadPath {
    Serialized,
    PerQuery,
    Pinned,
}

impl ReadPath {
    fn label(self) -> &'static str {
        match self {
            ReadPath::Serialized => "serialized",
            ReadPath::PerQuery => "per-query",
            ReadPath::Pinned => "pinned",
        }
    }
}

fn setup() -> Engine {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let db = engine.session();
    db.execute("CREATE TABLE src (k INT, v INT)").unwrap();
    let mut seed = Vec::with_capacity(SEED_ROWS);
    for i in 0..SEED_ROWS {
        seed.push(format!("({}, {})", i % KEYS, i));
    }
    for chunk in seed.chunks(2500) {
        db.execute(&format!("INSERT INTO src VALUES {}", chunk.join(", ")))
            .unwrap();
    }
    db.execute(
        "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' REFRESH_MODE = FULL \
         WAREHOUSE = wh AS SELECT k, count(*) n, sum(v) s FROM src GROUP BY k",
    )
    .unwrap();
    engine
}

/// One writer iteration: a DML batch, then a manual FULL refresh followed
/// by a deterministic dwell, both inside the engine write lock.
fn writer_step(engine: &Engine, db: &Session, round: usize, hold: WallDuration) {
    let mut values = Vec::with_capacity(WRITE_BATCH);
    for i in 0..WRITE_BATCH {
        values.push(format!("({}, {})", (round * 7 + i) % KEYS, i));
    }
    db.execute(&format!("INSERT INTO src VALUES {}", values.join(", ")))
        .unwrap();
    engine.inspect_mut(|state: &mut EngineState| {
        state.manual_refresh("agg", "sysadmin").unwrap();
        // A refresh occupies its DT for the full warehouse execution; the
        // dwell makes that duration deterministic across machines.
        std::thread::sleep(hold);
    });
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct PhaseReport {
    path: ReadPath,
    queries: usize,
    p50: u64,
    p99: u64,
    max: u64,
    refreshes: u64,
}

/// Run `secs` of readers-vs-writer and collect reader latencies (µs).
fn run_phase(
    engine: &Engine,
    path: ReadPath,
    secs: f64,
    readers: usize,
    hold: WallDuration,
) -> PhaseReport {
    let stop = AtomicBool::new(false);
    let refreshes = AtomicU64::new(0);
    let mut all_lat: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let db = engine.session();
            let mut round = 0usize;
            while !stop.load(Ordering::Relaxed) {
                writer_step(engine, &db, round, hold);
                refreshes.fetch_add(1, Ordering::Relaxed);
                round += 1;
            }
        });
        let mut handles = Vec::new();
        for _ in 0..readers {
            handles.push(scope.spawn(|| {
                let db = engine.session();
                // The long reader pins its snapshot once, up front.
                let pinned = (path == ReadPath::Pinned).then(|| db.snapshot());
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let rows = match (path, &pinned) {
                        (ReadPath::Serialized, _) => {
                            // Pre-MVCC emulation: the engine read lock is
                            // held for the entire bind+plan+execute.
                            engine.inspect(|state: &EngineState| {
                                state
                                    .read_statement(
                                        &dt_sql::parse("SELECT * FROM agg").unwrap(),
                                        &[],
                                    )
                                    .unwrap()
                                    .try_rows()
                                    .unwrap()
                                    .len()
                            })
                        }
                        (ReadPath::Pinned, Some(snap)) => {
                            snap.query("SELECT * FROM agg").unwrap().len()
                        }
                        _ => db.query("SELECT * FROM agg").unwrap().len(),
                    };
                    assert!(rows <= KEYS);
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat
            }));
        }
        std::thread::sleep(WallDuration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            all_lat.extend(h.join().unwrap());
        }
    });
    all_lat.sort_unstable();
    PhaseReport {
        path,
        queries: all_lat.len(),
        p50: percentile(&all_lat, 0.50),
        p99: percentile(&all_lat, 0.99),
        max: all_lat.last().copied().unwrap_or(0),
        refreshes: refreshes.load(Ordering::Relaxed),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let readers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let hold_ms: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);
    let hold = WallDuration::from_millis(hold_ms);

    println!("# Reader latency under a continuous refresh workload");
    println!(
        "# ({readers} reader threads x {secs}s per phase; writer: \
         {WRITE_BATCH}-row DML + FULL refresh over {SEED_ROWS}+ rows, \
         {hold_ms}ms in-lock per refresh)"
    );
    println!(
        "{:<12} {:>9} {:>11} {:>11} {:>11} {:>10}",
        "read path", "queries", "p50 (µs)", "p99 (µs)", "max (µs)", "refreshes"
    );
    let mut reports = Vec::new();
    for path in [ReadPath::Serialized, ReadPath::PerQuery, ReadPath::Pinned] {
        // Fresh engine per phase so version chains start equal.
        let engine = setup();
        let report = run_phase(&engine, path, secs, readers, hold);
        println!(
            "{:<12} {:>9} {:>11} {:>11} {:>11} {:>10}",
            report.path.label(),
            report.queries,
            report.p50,
            report.p99,
            report.max,
            report.refreshes
        );
        reports.push(report);
    }
    let serialized = &reports[0];
    let pinned = &reports[2];
    if pinned.p99 > 0 {
        println!(
            "\np99 serialized/pinned: {:.1}x, p50 serialized/pinned: {:.1}x",
            serialized.p99 as f64 / pinned.p99 as f64,
            serialized.p50.max(1) as f64 / pinned.p50.max(1) as f64
        );
    }
    // The acceptance check: a reader holding a pinned snapshot must not be
    // serialized behind the writer. Serialized readers wait out whole
    // refreshes, so their p99 carries at least one in-lock dwell (15ms by
    // default); a pinned reader's *median* is just its own execution cost
    // (tens to hundreds of µs). Comparing pinned p50 against serialized
    // p99 with a 10x margin keeps the check meaningful while staying
    // robust to scheduler noise on small shared CI runners (tail samples
    // there reflect descheduling, not locks).
    assert!(
        pinned.p50.max(1) * 10 <= serialized.p99,
        "pinned snapshot readers look serialized behind the writer: \
         pinned p50 {}µs vs serialized p99 {}µs",
        pinned.p50,
        serialized.p99
    );
    println!("ok: snapshot readers are not serialized behind the writer");
}
