//! Scan throughput: what do columnar batches, zone-map pushdown, and
//! morsel-parallel partition scans each buy on a selective read?
//!
//! One table, `rows` sequential-key rows committed in `partitions` equal
//! chunks so every storage partition carries a tight, disjoint `k` range
//! in its zone maps. The measured query selects a ~5% key band, and four
//! arms execute the identical bound plan:
//!
//! * `row` — the legacy row-at-a-time interpreter
//!   (`dt_exec::execute_rows`) with no pushdown: every partition is
//!   materialized to rows and the filter runs per row at the top.
//! * `columnar` — the batch pipeline (`dt_exec::execute`) without
//!   pushdown: scans still read everything, but the predicate runs as a
//!   vectorized selection mask and the projection is zero-copy.
//! * `columnar+pushdown` — the batch pipeline over
//!   `dt_plan::push_down_filters`: the `k` conjuncts travel to the scan,
//!   zone maps prune the ~95% of partitions whose ranges cannot match,
//!   and pruned partitions are never read at all.
//! * `parallel` — `columnar+pushdown` with the snapshot's morsel scan
//!   fanned out over all available cores (a shared atomic partition
//!   cursor; reassembled in partition order, so results stay identical).
//!
//! Report: per-query p50/p99/max latency (µs) and scan throughput in
//! source rows per second (table size ÷ latency — the work the scan is
//! responsible for, whatever the filter keeps). Every arm's result rows
//! are asserted equal to the `row` arm's before anything is timed.
//!
//! Gates (asserted, with one re-measure to absorb scheduler noise):
//! `columnar+pushdown` must beat `row` by ≥5x — pruning alone removes
//! ~95% of the data motion, so this holds on any host — and on hosts
//! with ≥2 cores `parallel` must additionally be no slower than ~0.7x
//! `columnar+pushdown` (parallelism may not help a pruned scan this
//! small, but it must not wreck it; on 1-core hosts the arm still runs,
//! exercising the cursor, and the gate is skipped).
//!
//! Run with: `cargo run --release -p dt-bench --bin scan_throughput`
//! Optional args: `[rows] [partitions] [iters] [--json PATH]`.
//! `--json` writes a `BENCH_scan.json`-style artifact for the perf
//! trajectory.

use std::time::Instant;

use dt_core::{DbConfig, Engine, ReadSnapshot};
use dt_plan::LogicalPlan;

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Row,
    Columnar,
    Pushdown,
    Parallel,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::Row => "row",
            Arm::Columnar => "columnar",
            Arm::Pushdown => "columnar+pushdown",
            Arm::Parallel => "parallel",
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct ArmReport {
    arm: Arm,
    threads: usize,
    result_rows: usize,
    p50: u64,
    p99: u64,
    max: u64,
    rows_per_s: f64,
}

/// Build the engine: `rows` sequential keys in `partitions` separate
/// commits, so partition *i* holds keys `[i*chunk, (i+1)*chunk)` and its
/// zone map says so.
fn setup(rows: usize, partitions: usize) -> Engine {
    let engine = Engine::new(DbConfig::default());
    let session = engine.session();
    session
        .execute("CREATE TABLE scan_bench (k INT, v INT)")
        .unwrap();
    let chunk = rows / partitions;
    for p in 0..partitions {
        let values: Vec<String> = (0..chunk)
            .map(|i| {
                let k = p * chunk + i;
                format!("({k}, {})", k % 97)
            })
            .collect();
        session
            .execute(&format!("INSERT INTO scan_bench VALUES {}", values.join(", ")))
            .unwrap();
    }
    engine
}

/// Time one arm: `iters` executions of the prepared plan, per-query
/// latency distribution plus source-rows-per-second throughput.
fn run_arm(
    arm: Arm,
    snap: &mut ReadSnapshot,
    plan: &LogicalPlan,
    pushed: &LogicalPlan,
    table_rows: usize,
    iters: usize,
    cores: usize,
) -> ArmReport {
    let threads = match arm {
        Arm::Parallel => cores,
        _ => 1,
    };
    snap.set_scan_threads(threads);
    let exec = |snap: &ReadSnapshot| match arm {
        Arm::Row => dt_exec::execute_rows(plan, snap).unwrap(),
        Arm::Columnar => dt_exec::execute(plan, snap).unwrap(),
        Arm::Pushdown | Arm::Parallel => dt_exec::execute(pushed, snap).unwrap(),
    };
    let result_rows = exec(snap).len();
    let mut lat = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = exec(snap);
        lat.push(t0.elapsed().as_micros() as u64);
        assert_eq!(out.len(), result_rows, "unstable result for {}", arm.label());
    }
    lat.sort_unstable();
    let mean_us = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
    ArmReport {
        arm,
        threads,
        result_rows,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        max: lat.last().copied().unwrap_or(0),
        rows_per_s: table_rows as f64 / (mean_us / 1_000_000.0),
    }
}

fn json_line(r: &ArmReport) -> String {
    format!(
        "    {{\"arm\": \"{}\", \"threads\": {}, \"result_rows\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
         \"rows_per_s\": {:.0}}}",
        r.arm.label(),
        r.threads,
        r.result_rows,
        r.p50,
        r.p99,
        r.max,
        r.rows_per_s,
    )
}

fn main() {
    let mut rows: usize = 200_000;
    let mut partitions: usize = 40;
    let mut iters: usize = 30;
    let mut json_path: Option<String> = None;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
            continue;
        }
        let v: usize = a.parse().unwrap_or_else(|_| panic!("bad argument {a}"));
        match positional {
            0 => rows = v,
            1 => partitions = v,
            2 => iters = v,
            _ => panic!("too many arguments"),
        }
        positional += 1;
    }
    assert!(rows >= partitions && partitions > 1, "need rows >= partitions > 1");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // The measured query: a ~5% key band in the middle of the table, so
    // pushdown prunes all but ~2 of the partitions.
    let lo = rows / 2;
    let hi = lo + rows / 20;
    let sql = format!("SELECT k, v FROM scan_bench WHERE k >= {lo} AND k < {hi}");

    println!("# Scan throughput: row vs columnar vs pushdown vs parallel");
    println!(
        "# {rows} rows x {partitions} partitions, ~5% selective band \
         [{lo}, {hi}), {iters} iters/arm, {cores} core(s)\n"
    );

    let engine = setup(rows, partitions);
    let session = engine.session();
    let mut snap = session.snapshot();
    let query = match dt_sql::parse(&sql).unwrap() {
        dt_sql::ast::Statement::Query(q) => q,
        _ => unreachable!(),
    };
    let plan = snap.bind_query(&query).unwrap().plan;
    let pushed = dt_plan::push_down_filters(&plan);

    // Correctness before speed: all four arms must return the same rows.
    let baseline = dt_exec::execute_rows(&plan, &snap).unwrap();
    assert_eq!(baseline.len(), hi - lo, "fixture selectivity is off");
    assert_eq!(dt_exec::execute(&plan, &snap).unwrap(), baseline);
    assert_eq!(dt_exec::execute(&pushed, &snap).unwrap(), baseline);
    snap.set_scan_threads(cores.max(2));
    assert_eq!(dt_exec::execute(&pushed, &snap).unwrap(), baseline);

    println!(
        "{:<19} {:>8} {:>12} {:>9} {:>9} {:>9} {:>14}",
        "arm", "threads", "result-rows", "p50-µs", "p99-µs", "max-µs", "src-rows/s"
    );
    let arms = [Arm::Row, Arm::Columnar, Arm::Pushdown, Arm::Parallel];
    let mut measure = |iters: usize| -> Vec<ArmReport> {
        arms.iter()
            .map(|&arm| run_arm(arm, &mut snap, &plan, &pushed, rows, iters, cores))
            .collect()
    };
    let mut reports = measure(iters);
    for r in &reports {
        println!(
            "{:<19} {:>8} {:>12} {:>9} {:>9} {:>9} {:>14.0}",
            r.arm.label(),
            r.threads,
            r.result_rows,
            r.p50,
            r.p99,
            r.max,
            r.rows_per_s,
        );
    }

    if let Some(path) = &json_path {
        let body: Vec<String> = reports.iter().map(json_line).collect();
        let json = format!(
            "{{\n  \"bench\": \"scan_throughput\",\n  \"rows\": {rows},\n  \
             \"partitions\": {partitions},\n  \"selectivity\": {:.3},\n  \
             \"iters\": {iters},\n  \"cores\": {cores},\n  \"arms\": [\n{}\n  ]\n}}\n",
            (hi - lo) as f64 / rows as f64,
            body.join(",\n")
        );
        std::fs::write(path, json).unwrap();
        println!("\nwrote {path}");
    }

    // Gates, with one re-measure so a single preempted quantum cannot
    // fail CI. The 5x pushdown gate is structural: ~95% of partitions are
    // never read, so even a 1-core host clears it with margin.
    let tput = |rs: &[ArmReport], arm: Arm| {
        rs.iter().find(|r| r.arm == arm).map(|r| r.rows_per_s).unwrap()
    };
    let pushdown_ok =
        |rs: &[ArmReport]| tput(rs, Arm::Pushdown) >= 5.0 * tput(rs, Arm::Row);
    let parallel_ok = |rs: &[ArmReport]| {
        cores < 2 || tput(rs, Arm::Parallel) >= 0.7 * tput(rs, Arm::Pushdown)
    };
    if !pushdown_ok(&reports) || !parallel_ok(&reports) {
        println!("\nnote: re-measuring gates once (first pass missed a bound)");
        reports = measure(iters);
    }
    assert!(
        pushdown_ok(&reports),
        "columnar+pushdown ({:.0} rows/s) is not 5x the row path ({:.0} rows/s)",
        tput(&reports, Arm::Pushdown),
        tput(&reports, Arm::Row),
    );
    assert!(
        parallel_ok(&reports),
        "parallel ({:.0} rows/s) fell below 0.7x columnar+pushdown ({:.0} rows/s) on {cores} cores",
        tput(&reports, Arm::Parallel),
        tput(&reports, Arm::Pushdown),
    );

    if cores < 2 {
        println!(
            "\nok: all arms agree; columnar+pushdown ≥5x row \
             (parallel gate skipped — 1 core)"
        );
    } else {
        println!(
            "\nok: all arms agree; columnar+pushdown ≥5x row; \
             parallel within bounds on {cores} cores"
        );
    }
}
