//! Wire-protocol server throughput: what does the framed TCP front end
//! cost per request, and does it actually sustain concurrent
//! connections?
//!
//! One in-process `dt-server` on an ephemeral loopback port; N client
//! threads each hold one connection and run a mixed workload against a
//! shared table — per request: 70% point SELECTs through a prepared
//! statement, 30% single-row transactional transfers (BEGIN → two
//! UPDATEs → COMMIT, retried on conflict). Every request is timed
//! individually at the client, so the numbers include framing, both
//! socket hops, and engine execution.
//!
//! Report per connection count: request p50/p99/max latency (µs),
//! aggregate req/s, conflict retries, and protocol errors (which must
//! be zero — the harness asserts it, along with balance conservation
//! across all transfers).
//!
//! Run with: `cargo run --release -p dt-bench --bin server_throughput`
//! Optional args: `[connections] [requests-per-connection] [--json PATH]`.
//! With no `connections` argument the harness sweeps 1/2/4/8
//! connections; `--json` writes a `BENCH_server.json`-style artifact
//! for the perf trajectory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use dt_client::Client;
use dt_common::Value;
use dt_core::{DbConfig, Engine};
use dt_server::{Server, ServerConfig};

const ACCOUNTS: i64 = 64;
const SEED_BALANCE: i64 = 100;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunReport {
    connections: usize,
    requests: u64,
    retries: u64,
    p50: u64,
    p99: u64,
    max: u64,
    wall_ms: u128,
    throughput: f64,
}

fn setup() -> (Engine, Server) {
    let engine = Engine::new(DbConfig::default());
    let server = Server::bind(
        engine.clone(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 128,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let session = engine.session();
    session
        .execute("CREATE TABLE accounts (id INT, balance INT)")
        .unwrap();
    let rows: Vec<String> = (0..ACCOUNTS)
        .map(|i| format!("({i}, {SEED_BALANCE})"))
        .collect();
    session
        .execute(&format!("INSERT INTO accounts VALUES {}", rows.join(", ")))
        .unwrap();
    (engine, server)
}

/// A tiny deterministic PRNG (xorshift*) so the mixed workload needs no
/// RNG crate and runs identically everywhere.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn run(connections: usize, requests: usize) -> RunReport {
    let (engine, server) = setup();
    let addr = server.local_addr();
    let retries = AtomicU64::new(0);
    let barrier = Barrier::new(connections);
    let mut all_lat: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..connections {
            let (retries, barrier) = (&retries, &barrier);
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let point = client
                    .prepare("SELECT balance FROM accounts WHERE id = ?")
                    .unwrap();
                let mut rng = Prng(0x9e3779b97f4a7c15 ^ (w as u64 + 1));
                let mut lat = Vec::with_capacity(requests);
                barrier.wait();
                for _ in 0..requests {
                    let roll = rng.next();
                    let a = (rng.next() % ACCOUNTS as u64) as i64;
                    let b = (a + 1 + (rng.next() % (ACCOUNTS as u64 - 1)) as i64) % ACCOUNTS;
                    let start = Instant::now();
                    if roll % 10 < 7 {
                        // Point read through the prepared statement.
                        let rows = client.query_prepared(point, &[Value::Int(a)]).unwrap();
                        assert_eq!(rows.len(), 1);
                    } else {
                        // Transactional transfer between two accounts,
                        // retried on optimistic conflict.
                        let mut attempts = 0u64;
                        client
                            .run_txn(128, |c| {
                                attempts += 1;
                                c.execute(&format!(
                                    "UPDATE accounts SET balance = balance - 1 WHERE id = {a}"
                                ))?;
                                c.execute(&format!(
                                    "UPDATE accounts SET balance = balance + 1 WHERE id = {b}"
                                ))?;
                                Ok(())
                            })
                            .unwrap();
                        retries.fetch_add(attempts - 1, Ordering::Relaxed);
                    }
                    lat.push(start.elapsed().as_micros() as u64);
                }
                client.close().unwrap();
                lat
            }));
        }
        for h in handles {
            all_lat.extend(h.join().unwrap());
        }
    });
    let wall_ms = t0.elapsed().as_millis();

    // Correctness gates: transfers conserved the total balance, and the
    // protocol layer saw zero errors (every request above unwrapped).
    let session = engine.session();
    let total = session
        .query("SELECT sum(balance) FROM accounts")
        .unwrap()
        .rows()[0]
        .get(0)
        .expect_int()
        .unwrap();
    assert_eq!(total, ACCOUNTS * SEED_BALANCE, "transfers lost money");
    server.shutdown();

    all_lat.sort_unstable();
    let total_requests = (connections * requests) as u64;
    RunReport {
        connections,
        requests: total_requests,
        retries: retries.load(Ordering::Relaxed),
        p50: percentile(&all_lat, 0.50),
        p99: percentile(&all_lat, 0.99),
        max: all_lat.last().copied().unwrap_or(0),
        wall_ms,
        throughput: total_requests as f64 / (wall_ms.max(1) as f64 / 1000.0),
    }
}

fn to_json(r: &RunReport) -> String {
    format!(
        "    {{\"connections\": {}, \"requests\": {}, \"conflict_retries\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"wall_ms\": {}, \
         \"requests_per_s\": {:.1}, \"protocol_errors\": 0}}",
        r.connections, r.requests, r.retries, r.p50, r.p99, r.max, r.wall_ms, r.throughput,
    )
}

fn main() {
    let mut connections_arg: Option<usize> = None;
    let mut requests: usize = 300;
    let mut json_path: Option<String> = None;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
            continue;
        }
        let v: usize = a.parse().unwrap_or_else(|_| panic!("bad argument {a}"));
        match positional {
            0 => connections_arg = Some(v),
            1 => requests = v,
            _ => panic!("too many arguments"),
        }
        positional += 1;
    }
    let connection_counts: Vec<usize> = match connections_arg {
        Some(c) => vec![c],
        None => vec![1, 2, 4, 8],
    };

    println!("# Wire-protocol server throughput (mixed 70% read / 30% transfer)");
    println!("# {requests} requests per connection; latencies in µs per request\n");
    println!(
        "{:<12} {:>9} {:>8} {:>7} {:>7} {:>8} {:>8} {:>10}",
        "connections", "requests", "retries", "p50", "p99", "max", "wall-ms", "req/s"
    );

    let mut reports = Vec::new();
    for &connections in &connection_counts {
        let r = run(connections, requests);
        println!(
            "{:<12} {:>9} {:>8} {:>7} {:>7} {:>8} {:>8} {:>10.0}",
            r.connections, r.requests, r.retries, r.p50, r.p99, r.max, r.wall_ms, r.throughput
        );
        reports.push(r);
    }

    if let Some(path) = json_path {
        let body: Vec<String> = reports.iter().map(to_json).collect();
        let json = format!(
            "{{\n  \"bench\": \"server_throughput\",\n  \
             \"requests_per_connection\": {requests},\n  \"runs\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write(&path, json).unwrap();
        println!("\nwrote {path}");
    }

    // Acceptance: the server sustained the highest configured connection
    // count with zero protocol errors (any protocol error would have
    // panicked a worker above) and every run conserved the balance.
    let peak = reports.iter().map(|r| r.connections).max().unwrap_or(0);
    assert!(
        peak >= 4 || connections_arg.is_some(),
        "sweep must exercise at least 4 concurrent connections"
    );
    println!(
        "\nok: sustained {peak} concurrent connections, zero protocol errors, \
         balances conserved"
    );
}
