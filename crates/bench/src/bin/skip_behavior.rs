//! §3.3.3: skips let a DT gracefully increase its rate of progress as it
//! falls behind.
//!
//! An under-provisioned warehouse (1 node) runs a DT whose refreshes take
//! longer than its refresh period. The scheduler skips the grid points that
//! pass while a refresh is still running; each following refresh folds the
//! skipped interval into its change interval, so DVS is never violated and
//! total work *drops* (the fixed costs of skipped refreshes are saved).
//!
//! Run with: `cargo run -p dt-bench --bin skip_behavior`

use dt_common::{Duration, Timestamp};
use dt_core::{DbConfig, Engine};
use dt_scheduler::CostModel;

fn run(node_count: u32) -> (u64, u64, f64, bool) {
    let cfg = DbConfig {
        validate_dvs: true, // prove skips never compromise DVS
        cost_model: CostModel {
            fixed_units: 60_000.0, // 60 s of one node per refresh: heavy
            unit_per_row: 1.0,
        },
        ..DbConfig::default()
    };
    let engine = Engine::new(cfg);
    engine.create_warehouse("wh", node_count).unwrap();
    let db = engine.session();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) s FROM t GROUP BY k",
    )
    .unwrap();
    // 20 minutes of continuous traffic.
    let end = Timestamp::from_secs(1200);
    let mut t = Timestamp::EPOCH;
    let mut i = 0;
    while t < end {
        t = t.add(Duration::from_secs(24));
        engine.run_scheduler_until(t).unwrap();
        i += 1;
        db.execute(&format!("INSERT INTO t VALUES ({}, {i})", i % 4)).unwrap();
    }
    engine.run_scheduler_until(end).unwrap();
    let (refreshes, skipped) = engine.inspect(|s| {
        let id = s.catalog().resolve("d").unwrap().id;
        let st = s.scheduler().state(id).unwrap();
        (st.action_counts.values().sum::<u64>(), st.skipped_total)
    });
    // Final catch-up: the DT still reconciles exactly (validate_dvs has
    // been checking every refresh along the way).
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    let ok = db.query("SELECT * FROM d").is_ok();
    let credits = engine.inspect(|s| s.warehouses().total_credits());
    (refreshes, skipped, credits, ok)
}

fn main() {
    println!("# Skip behaviour under resource pressure (48s period, ~60s refreshes)");
    println!(
        "{:>8} {:>10} {:>8} {:>12} {:>8}",
        "nodes", "refreshes", "skips", "credits", "DVS ok"
    );
    for nodes in [1u32, 2, 4, 8] {
        let (refreshes, skips, credits, ok) = run(nodes);
        println!("{nodes:>8} {refreshes:>10} {skips:>8} {credits:>12.0} {ok:>8}");
    }
    println!("\n# expected shape: fewer nodes → refreshes overrun the period →");
    println!("# grid points are skipped, refresh count drops, and each refresh");
    println!("# covers a longer interval — yet DVS holds throughout (§3.3.3).");
}
