//! Transaction commit contention: do writers on disjoint tables really
//! commit concurrently, and what does writer group-commit buy on top?
//!
//! N writer threads each run a fixed number of transactions (a small DML
//! batch, then commit) over either **disjoint** table sets (writer *i*
//! owns table *i*) or **overlapping** ones (every writer hits the same
//! table). Three commit paths are compared:
//!
//! * `engine-lock` — the pre-transaction behaviour: the whole statement
//!   (bind + evaluate + storage commit) executes under the engine write
//!   lock via `EngineState::execute_parsed`, so all writers serialize no
//!   matter which tables they touch, and no commit can ever abort.
//! * `per-table` — explicit [`dt_core::Transaction`]s finished with
//!   `commit_unbatched()`: DML is planned lock-free against the pinned
//!   snapshot, commit takes per-table `TxnManager` locks, and each
//!   committer acquires the engine write lock itself for the O(metadata)
//!   validate+install (the PR-4 pipeline).
//! * `group-commit` — the same transactions finished with `commit()`:
//!   committers enqueue into the engine's commit queue, one leader drains
//!   and installs a whole batch per engine-write-lock acquisition, and
//!   followers are woken with their individual outcomes. The
//!   `locks/commit` column reports acquisitions ÷ commits — below 1.0
//!   means batching actually happened.
//!
//! Report: commit p50/p99/max latency (µs), throughput (commits/s), and
//! abort rate per (writers, path, mode). Expected shape:
//! `group-commit/disjoint` holds commit p99 at or below `per-table` from
//! 4 writers up (one lock acquisition amortizes across the batch), and
//! `overlapping` shows a non-zero abort rate for both optimistic paths —
//! the price of first-committer-wins.
//!
//! Known tradeoff the overlapping columns make visible: group commit
//! holds a committer's per-table admission locks across its queue wait,
//! so on a *hot shared table* the lock-hold window grows from the bare
//! install to a leader/follower handoff — other writers conflict against
//! it more often, inflating the abort (retry) rate and cutting hot-table
//! throughput versus `per-table`. Batching cannot help that workload
//! anyway (batch-mates are disjoint by admission); the fix for hot
//! tables is the **locking dimension** below.
//!
//! On top of the commit paths, the `per-table` path runs under three
//! admission-locking arms:
//!
//! * `optimistic` — tables pinned `SET LOCKING OPTIMISTIC`: pure
//!   first-committer-wins, the historical series.
//! * `pessimistic` — tables pinned `SET LOCKING PESSIMISTIC`: contended
//!   committers park on the lock manager's FIFO wait-queue instead of
//!   abort-retrying; pure-insert write sets rebase onto the version the
//!   wait exposed, so a wait replaces a whole replan-retry cycle.
//! * `adaptive` — tables left on `AUTO`: the engine's abort-rate window
//!   flips hot tables to pessimistic mid-run (the `flips` column shows
//!   it happening).
//!
//! The locking gates (8 writers, re-measured on failure like the p99
//! gate): `pessimistic/overlapping` must beat `optimistic/overlapping`
//! on **both** aborts and throughput, and the pessimistic and adaptive
//! disjoint arms must stay within 10% of optimistic disjoint throughput
//! — wait-queues must not tax writers that never contend.
//!
//! Run with: `cargo run --release -p dt-bench --bin txn_commit_contention`
//! Optional args: `[writers] [txns-per-writer] [rows-per-txn]
//! [--json PATH]`. With no `writers` argument the harness sweeps
//! 2/4/8 writer threads; `--json` additionally writes every run as a
//! `BENCH_txn_commit.json`-style artifact for the perf trajectory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use dt_core::{is_serialization_conflict, DbConfig, Engine, EngineState};

#[derive(Clone, Copy, PartialEq)]
enum CommitPath {
    EngineLock,
    PerTable,
    GroupCommit,
}

impl CommitPath {
    fn label(self) -> &'static str {
        match self {
            CommitPath::EngineLock => "engine-lock",
            CommitPath::PerTable => "per-table",
            CommitPath::GroupCommit => "group-commit",
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum TableMode {
    Disjoint,
    Overlapping,
}

impl TableMode {
    fn label(self) -> &'static str {
        match self {
            TableMode::Disjoint => "disjoint",
            TableMode::Overlapping => "overlapping",
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Locking {
    Optimistic,
    Pessimistic,
    Adaptive,
}

impl Locking {
    fn label(self) -> &'static str {
        match self {
            Locking::Optimistic => "optimistic",
            Locking::Pessimistic => "pessimistic",
            Locking::Adaptive => "adaptive",
        }
    }
}

fn setup(writers: usize, locking: Locking) -> Engine {
    let engine = Engine::new(DbConfig::default());
    let db = engine.session();
    for t in 0..writers {
        db.execute(&format!("CREATE TABLE t{t} (k INT, v INT)")).unwrap();
        db.execute(&format!("INSERT INTO t{t} VALUES (0, 0)")).unwrap();
        // Pin the mode for the optimistic/pessimistic arms so the series
        // measures one admission strategy, not whatever the adaptive
        // policy drifts into; the adaptive arm leaves tables on AUTO.
        match locking {
            Locking::Optimistic => {
                db.execute(&format!("ALTER TABLE t{t} SET LOCKING OPTIMISTIC")).unwrap();
            }
            Locking::Pessimistic => {
                db.execute(&format!("ALTER TABLE t{t} SET LOCKING PESSIMISTIC")).unwrap();
            }
            Locking::Adaptive => {}
        }
    }
    engine
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunReport {
    writers: usize,
    path: CommitPath,
    mode: TableMode,
    locking: Locking,
    commits: u64,
    aborts: u64,
    p50: u64,
    p99: u64,
    max: u64,
    wall_ms: u128,
    throughput: f64,
    lock_acquisitions: u64,
    max_batch: u64,
    lock_waits: u64,
    lock_timeouts: u64,
    adaptive_flips: u64,
}

fn insert_sql(table: usize, writer: usize, txn: usize, rows: usize) -> String {
    let mut values = Vec::with_capacity(rows);
    for r in 0..rows {
        values.push(format!("({}, {})", writer * 1_000_000 + txn * 100 + r, r));
    }
    format!("INSERT INTO t{table} VALUES {}", values.join(", "))
}

/// Run one (writers, path, mode) workload and collect per-commit
/// latencies (µs).
fn run(
    path: CommitPath,
    mode: TableMode,
    locking: Locking,
    writers: usize,
    txns: usize,
    rows: usize,
) -> RunReport {
    let engine = setup(writers, locking);
    let baseline = engine.commit_stats();
    let commits = AtomicU64::new(0);
    let aborts = AtomicU64::new(0);
    let barrier = Barrier::new(writers);
    let mut all_lat: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..writers {
            let engine = engine.clone();
            let (commits, aborts, barrier) = (&commits, &aborts, &barrier);
            handles.push(scope.spawn(move || {
                let session = engine.session();
                let table = match mode {
                    TableMode::Disjoint => w,
                    TableMode::Overlapping => 0,
                };
                let mut lat = Vec::with_capacity(txns);
                barrier.wait();
                for i in 0..txns {
                    let sql = insert_sql(table, w, i, rows);
                    let start = Instant::now();
                    match path {
                        CommitPath::EngineLock => {
                            // The legacy path: everything under the engine
                            // write lock; cannot abort.
                            engine.inspect_mut(|state: &mut EngineState| {
                                state
                                    .execute_parsed(
                                        dt_sql::parse(&sql).unwrap(),
                                        &sql,
                                        "sysadmin",
                                        &[],
                                    )
                                    .unwrap();
                            });
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                        CommitPath::PerTable | CommitPath::GroupCommit => loop {
                            let mut txn = session.begin();
                            txn.execute(&sql).unwrap();
                            let outcome = if path == CommitPath::GroupCommit {
                                txn.commit()
                            } else {
                                txn.commit_unbatched()
                            };
                            match outcome {
                                Ok(_) => {
                                    commits.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(e) if is_serialization_conflict(&e) => {
                                    aborts.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("commit failed: {e}"),
                            }
                        },
                    }
                    lat.push(start.elapsed().as_micros() as u64);
                }
                lat
            }));
        }
        for h in handles {
            all_lat.extend(h.join().unwrap());
        }
    });
    let wall_ms = t0.elapsed().as_millis();

    // Sanity: every transaction eventually committed, and the data proves
    // it — each table holds its seed row plus every committed batch.
    let session = engine.session();
    let expected: usize = writers * txns * rows + writers;
    let mut total = 0usize;
    for t in 0..writers {
        total += session.query(&format!("SELECT * FROM t{t}")).unwrap().len();
    }
    assert_eq!(total, expected, "lost or duplicated committed rows");
    assert_eq!(commits.load(Ordering::Relaxed) as usize, writers * txns);

    let stats = engine.commit_stats();
    let lock = engine.lock_stats();
    all_lat.sort_unstable();
    let committed = commits.load(Ordering::Relaxed);
    RunReport {
        writers,
        path,
        mode,
        locking,
        commits: committed,
        aborts: aborts.load(Ordering::Relaxed),
        p50: percentile(&all_lat, 0.50),
        p99: percentile(&all_lat, 0.99),
        max: all_lat.last().copied().unwrap_or(0),
        wall_ms,
        throughput: committed as f64 / (wall_ms.max(1) as f64 / 1000.0),
        lock_acquisitions: stats.install_lock_acquisitions - baseline.install_lock_acquisitions,
        max_batch: stats.max_batch,
        lock_waits: lock.waits,
        lock_timeouts: lock.timeouts,
        adaptive_flips: lock.adaptive_flips,
    }
}

fn json_escape_free(r: &RunReport) -> String {
    format!(
        "    {{\"writers\": {}, \"path\": \"{}\", \"tables\": \"{}\", \
         \"locking\": \"{}\", \
         \"commits\": {}, \"aborts\": {}, \"p50_us\": {}, \"p99_us\": {}, \
         \"max_us\": {}, \"wall_ms\": {}, \"throughput_per_s\": {:.1}, \
         \"install_lock_acquisitions\": {}, \"max_batch\": {}, \
         \"lock_waits\": {}, \"lock_timeouts\": {}, \"adaptive_flips\": {}}}",
        r.writers,
        r.path.label(),
        r.mode.label(),
        r.locking.label(),
        r.commits,
        r.aborts,
        r.p50,
        r.p99,
        r.max,
        r.wall_ms,
        r.throughput,
        r.lock_acquisitions,
        r.max_batch,
        r.lock_waits,
        r.lock_timeouts,
        r.adaptive_flips,
    )
}

fn main() {
    let mut writers_arg: Option<usize> = None;
    let mut txns: usize = 200;
    let mut rows: usize = 8;
    let mut json_path: Option<String> = None;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
            continue;
        }
        let v: usize = a.parse().unwrap_or_else(|_| panic!("bad argument {a}"));
        match positional {
            0 => writers_arg = Some(v),
            1 => txns = v,
            2 => rows = v,
            _ => panic!("too many arguments"),
        }
        positional += 1;
    }
    let writer_counts: Vec<usize> = match writers_arg {
        Some(w) => vec![w],
        None => vec![2, 4, 8],
    };

    println!("# Transaction commit latency under write contention");
    println!(
        "# writers x {txns} txns x {rows} rows/txn \
         (latencies in µs per committed txn incl. retries)\n"
    );
    println!(
        "{:<8} {:<13} {:<12} {:<12} {:>8} {:>7} {:>10} {:>7} {:>7} {:>7} {:>8} {:>10} {:>12} {:>7} {:>9} {:>6}",
        "writers",
        "path",
        "tables",
        "locking",
        "commits",
        "aborts",
        "abort-rate",
        "p50",
        "p99",
        "max",
        "wall-ms",
        "commits/s",
        "locks/commit",
        "waits",
        "timeouts",
        "flips"
    );

    let print_report = |r: &RunReport| {
        println!(
            "{:<8} {:<13} {:<12} {:<12} {:>8} {:>7} {:>9.1}% {:>7} {:>7} {:>7} {:>8} {:>10.0} {:>12.2} {:>7} {:>9} {:>6}",
            r.writers,
            r.path.label(),
            r.mode.label(),
            r.locking.label(),
            r.commits,
            r.aborts,
            100.0 * r.aborts as f64 / (r.commits + r.aborts).max(1) as f64,
            r.p50,
            r.p99,
            r.max,
            r.wall_ms,
            r.throughput,
            r.lock_acquisitions as f64 / r.commits.max(1) as f64,
            r.lock_waits,
            r.lock_timeouts,
            r.adaptive_flips,
        );
    };

    let mut reports = Vec::new();
    for &writers in &writer_counts {
        for mode in [TableMode::Disjoint, TableMode::Overlapping] {
            // The historical three-path series, pure optimistic.
            for path in [CommitPath::EngineLock, CommitPath::PerTable, CommitPath::GroupCommit] {
                let r = run(path, mode, Locking::Optimistic, writers, txns, rows);
                print_report(&r);
                reports.push(r);
            }
            // The locking dimension, on the per-table path (one engine
            // write-lock acquisition per commit — the cleanest view of
            // what admission alone changes).
            for locking in [Locking::Pessimistic, Locking::Adaptive] {
                let r = run(CommitPath::PerTable, mode, locking, writers, txns, rows);
                print_report(&r);
                reports.push(r);
            }
        }
    }

    // Invariants the harness asserts (kept loose enough for 1-core CI):
    // the engine-lock path never aborts, and no path aborts on disjoint
    // tables — conflicts and waits alike require a shared table.
    for r in &reports {
        if r.path == CommitPath::EngineLock || r.mode == TableMode::Disjoint {
            assert_eq!(
                r.aborts,
                0,
                "{}/{}/{} must not abort",
                r.path.label(),
                r.mode.label(),
                r.locking.label()
            );
        }
        if r.mode == TableMode::Disjoint {
            assert_eq!(
                r.lock_waits,
                0,
                "disjoint writers must never park ({}/{})",
                r.path.label(),
                r.locking.label()
            );
        }
    }

    // The trajectory artifact records every raw number regardless of how
    // the gates below fare.
    if let Some(path) = json_path {
        let body: Vec<String> = reports.iter().map(json_escape_free).collect();
        let json = format!(
            "{{\n  \"bench\": \"txn_commit_contention\",\n  \"txns_per_writer\": {txns},\n  \
             \"rows_per_txn\": {rows},\n  \"runs\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write(&path, json).unwrap();
        println!("\nwrote {path}");
    }

    // The group-commit acceptance check: at 4+ writers the batched path's
    // commit p99 must be no worse than the per-table path's (1.25x slack
    // plus a 100µs cushion absorb measurement noise). Asserted on disjoint
    // tables — group-commit's home turf; overlapping runs are dominated by
    // first-committer-wins retry churn, whose wild tails are reported but
    // not gated. Past 4 writers the gate also requires real parallelism:
    // at >2x core oversubscription the batched path's leader/follower
    // condvar handoff pays whole scheduler quanta, which measures the
    // host's scheduler, not the commit pipeline. The remaining gated
    // counts re-measure on failure (a transient scheduler hiccup vanishes
    // on retry; a genuine regression fails all three attempts), keeping
    // the bound tight without turning CI red over one preempted quantum.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut gated = 0usize;
    for &writers in &writer_counts {
        if writers < 4 {
            continue;
        }
        if cores < 2 || (writers > 4 && writers > cores * 2) {
            println!(
                "note: skipping p99 gate at {writers} writers — only {cores} \
                 core(s) available, oversubscription would gate the scheduler"
            );
            continue;
        }
        gated += 1;
        let p99_of = |path: CommitPath| {
            reports
                .iter()
                .find(|r| {
                    r.writers == writers
                        && r.mode == TableMode::Disjoint
                        && r.path == path
                        && r.locking == Locking::Optimistic
                })
                .map(|r| r.p99)
                .unwrap()
        };
        let holds = |per_table: u64, grouped: u64| {
            grouped as f64 <= per_table as f64 * 1.25 + 100.0
        };
        let mut per_table = p99_of(CommitPath::PerTable);
        let mut grouped = p99_of(CommitPath::GroupCommit);
        let mut attempts = 1;
        while !holds(per_table, grouped) && attempts < 3 {
            println!(
                "note: re-measuring p99 gate at {writers} writers (attempt \
                 {attempts} saw group {grouped}µs vs per-table {per_table}µs)"
            );
            per_table =
                run(CommitPath::PerTable, TableMode::Disjoint, Locking::Optimistic, writers, txns, rows)
                    .p99;
            grouped =
                run(CommitPath::GroupCommit, TableMode::Disjoint, Locking::Optimistic, writers, txns, rows)
                    .p99;
            attempts += 1;
        }
        assert!(
            holds(per_table, grouped),
            "group-commit p99 ({grouped}µs) worse than per-table \
             ({per_table}µs) at {writers} writers / disjoint after \
             {attempts} attempts"
        );
    }

    // The locking gates, asserted at the highest gated writer count with
    // ≥ 2 cores (a single core serializes everything and measures the
    // scheduler, not admission):
    //
    // 1. Hot table: `pessimistic/overlapping` beats
    //    `optimistic/overlapping` (per-table path) on BOTH aborts and
    //    throughput — parking must outperform abort-retry churn where it
    //    matters.
    // 2. Disjoint fast path: the pessimistic and adaptive arms stay
    //    within 10% of optimistic disjoint throughput (plus a small
    //    absolute cushion for sub-millisecond runs).
    let lock_gate_writers = writer_counts.iter().copied().filter(|&w| w >= 4).max();
    if let (Some(writers), true) = (lock_gate_writers, cores >= 2) {
        let find = |mode: TableMode, locking: Locking| {
            reports
                .iter()
                .find(|r| {
                    r.writers == writers
                        && r.mode == mode
                        && r.path == CommitPath::PerTable
                        && r.locking == locking
                })
                .map(|r| (r.aborts, r.throughput))
                .unwrap()
        };
        let beats = |(opt_aborts, opt_tput): (u64, f64), (pess_aborts, pess_tput): (u64, f64)| {
            pess_aborts < opt_aborts && pess_tput > opt_tput
        };
        let mut optimistic = find(TableMode::Overlapping, Locking::Optimistic);
        let mut pessimistic = find(TableMode::Overlapping, Locking::Pessimistic);
        let mut attempts = 1;
        while !beats(optimistic, pessimistic) && attempts < 3 {
            println!(
                "note: re-measuring locking gate at {writers} writers (attempt \
                 {attempts} saw pessimistic {}/{:.0} vs optimistic {}/{:.0})",
                pessimistic.0, pessimistic.1, optimistic.0, optimistic.1
            );
            let o = run(CommitPath::PerTable, TableMode::Overlapping, Locking::Optimistic, writers, txns, rows);
            let p = run(CommitPath::PerTable, TableMode::Overlapping, Locking::Pessimistic, writers, txns, rows);
            optimistic = (o.aborts, o.throughput);
            pessimistic = (p.aborts, p.throughput);
            attempts += 1;
        }
        assert!(
            beats(optimistic, pessimistic),
            "pessimistic/overlapping ({} aborts, {:.0} commits/s) must beat \
             optimistic/overlapping ({} aborts, {:.0} commits/s) on both \
             axes at {writers} writers after {attempts} attempts",
            pessimistic.0,
            pessimistic.1,
            optimistic.0,
            optimistic.1
        );

        let disjoint_holds = |opt: f64, other: f64| other >= opt * 0.9 - 500.0;
        for locking in [Locking::Pessimistic, Locking::Adaptive] {
            let opt = find(TableMode::Disjoint, Locking::Optimistic).1;
            let mut other = find(TableMode::Disjoint, locking).1;
            let mut attempts = 1;
            while !disjoint_holds(opt, other) && attempts < 3 {
                println!(
                    "note: re-measuring disjoint {} arm at {writers} writers \
                     (attempt {attempts} saw {other:.0} vs optimistic {opt:.0})",
                    locking.label()
                );
                other = run(CommitPath::PerTable, TableMode::Disjoint, locking, writers, txns, rows)
                    .throughput;
                attempts += 1;
            }
            assert!(
                disjoint_holds(opt, other),
                "{}/disjoint throughput ({other:.0}/s) regressed more than \
                 10% below optimistic ({opt:.0}/s) at {writers} writers \
                 after {attempts} attempts",
                locking.label()
            );
        }
        println!(
            "\nok: locking gates held at {writers} writers — pessimistic \
             beats optimistic on the hot table on both aborts and \
             throughput; disjoint arms within 10%"
        );
    } else {
        println!("\nnote: locking gates skipped — not enough cores or writers");
    }

    if gated > 0 {
        println!(
            "\nok: all workloads committed every transaction; conflicts only \
             on overlapping tables; group-commit p99 no worse than per-table \
             at 4+ writers"
        );
    } else {
        println!(
            "\nok: all workloads committed every transaction; conflicts only \
             on overlapping tables (p99 gate skipped — not enough cores)"
        );
    }
}
