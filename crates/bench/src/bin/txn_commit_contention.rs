//! Transaction commit contention: do writers on disjoint tables really
//! commit concurrently, and what do overlapping writers pay?
//!
//! N writer threads each run a fixed number of transactions (a small DML
//! batch, then commit) over either **disjoint** table sets (writer *i*
//! owns table *i*) or **overlapping** ones (every writer hits the same
//! table). Two commit paths are compared:
//!
//! * `engine-lock` — the pre-transaction behaviour: the whole statement
//!   (bind + evaluate + storage commit) executes under the engine write
//!   lock via `EngineState::execute_parsed`, so all writers serialize no
//!   matter which tables they touch, and no commit can ever abort.
//! * `per-table` — explicit [`dt_core::Transaction`]s: DML is planned
//!   lock-free against the pinned snapshot, commit takes per-table
//!   `TxnManager` locks and holds the engine write lock only for the
//!   O(metadata) version install. Disjoint writers overlap for the whole
//!   plan/prepare phase; overlapping writers conflict (first committer
//!   wins) and retry, which the abort-rate column reports.
//!
//! Report: commit p50/p99/max latency (µs), throughput, and abort rate
//! per (path, mode). Expected shape: `per-table/disjoint` beats
//! `engine-lock/disjoint` on p99 (no serialization on the engine lock
//! beyond the install), while `overlapping` shows a non-zero abort rate —
//! the price of optimism under contention.
//!
//! Run with: `cargo run --release -p dt-bench --bin txn_commit_contention`
//! Optional args: `[writers] [txns-per-writer] [rows-per-txn]`
//! (defaults 4, 200, and 8).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use dt_core::{is_serialization_conflict, DbConfig, Engine, EngineState};

#[derive(Clone, Copy, PartialEq)]
enum CommitPath {
    EngineLock,
    PerTable,
}

impl CommitPath {
    fn label(self) -> &'static str {
        match self {
            CommitPath::EngineLock => "engine-lock",
            CommitPath::PerTable => "per-table",
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum TableMode {
    Disjoint,
    Overlapping,
}

impl TableMode {
    fn label(self) -> &'static str {
        match self {
            TableMode::Disjoint => "disjoint",
            TableMode::Overlapping => "overlapping",
        }
    }
}

fn setup(writers: usize) -> Engine {
    let engine = Engine::new(DbConfig::default());
    let db = engine.session();
    for t in 0..writers {
        db.execute(&format!("CREATE TABLE t{t} (k INT, v INT)")).unwrap();
        db.execute(&format!("INSERT INTO t{t} VALUES (0, 0)")).unwrap();
    }
    engine
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunReport {
    path: CommitPath,
    mode: TableMode,
    commits: u64,
    aborts: u64,
    p50: u64,
    p99: u64,
    max: u64,
    wall_ms: u128,
}

fn insert_sql(table: usize, writer: usize, txn: usize, rows: usize) -> String {
    let mut values = Vec::with_capacity(rows);
    for r in 0..rows {
        values.push(format!("({}, {})", writer * 1_000_000 + txn * 100 + r, r));
    }
    format!("INSERT INTO t{table} VALUES {}", values.join(", "))
}

/// Run one (path, mode) workload and collect per-commit latencies (µs).
fn run(
    path: CommitPath,
    mode: TableMode,
    writers: usize,
    txns: usize,
    rows: usize,
) -> RunReport {
    let engine = setup(writers);
    let commits = AtomicU64::new(0);
    let aborts = AtomicU64::new(0);
    let barrier = Barrier::new(writers);
    let mut all_lat: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..writers {
            let engine = engine.clone();
            let (commits, aborts, barrier) = (&commits, &aborts, &barrier);
            handles.push(scope.spawn(move || {
                let session = engine.session();
                let table = match mode {
                    TableMode::Disjoint => w,
                    TableMode::Overlapping => 0,
                };
                let mut lat = Vec::with_capacity(txns);
                barrier.wait();
                for i in 0..txns {
                    let sql = insert_sql(table, w, i, rows);
                    let start = Instant::now();
                    match path {
                        CommitPath::EngineLock => {
                            // The legacy path: everything under the engine
                            // write lock; cannot abort.
                            engine.inspect_mut(|state: &mut EngineState| {
                                state
                                    .execute_parsed(
                                        dt_sql::parse(&sql).unwrap(),
                                        &sql,
                                        "sysadmin",
                                        &[],
                                    )
                                    .unwrap();
                            });
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                        CommitPath::PerTable => loop {
                            let mut txn = session.begin();
                            txn.execute(&sql).unwrap();
                            match txn.commit() {
                                Ok(_) => {
                                    commits.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(e) if is_serialization_conflict(&e) => {
                                    aborts.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("commit failed: {e}"),
                            }
                        },
                    }
                    lat.push(start.elapsed().as_micros() as u64);
                }
                lat
            }));
        }
        for h in handles {
            all_lat.extend(h.join().unwrap());
        }
    });
    let wall_ms = t0.elapsed().as_millis();

    // Sanity: every transaction eventually committed, and the data proves
    // it — each table holds its seed row plus every committed batch.
    let session = engine.session();
    let expected: usize = writers * txns * rows + writers;
    let mut total = 0usize;
    for t in 0..writers {
        total += session.query(&format!("SELECT * FROM t{t}")).unwrap().len();
    }
    assert_eq!(total, expected, "lost or duplicated committed rows");
    assert_eq!(commits.load(Ordering::Relaxed) as usize, writers * txns);

    all_lat.sort_unstable();
    RunReport {
        path,
        mode,
        commits: commits.load(Ordering::Relaxed),
        aborts: aborts.load(Ordering::Relaxed),
        p50: percentile(&all_lat, 0.50),
        p99: percentile(&all_lat, 0.99),
        max: all_lat.last().copied().unwrap_or(0),
        wall_ms,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let writers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let txns: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("# Transaction commit latency under write contention");
    println!(
        "# {writers} writers x {txns} txns x {rows} rows/txn \
         (latencies in µs per committed txn incl. retries)\n"
    );
    println!(
        "{:<12} {:<12} {:>8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "path", "tables", "commits", "aborts", "abort-rate", "p50", "p99", "max", "wall-ms"
    );

    let mut reports = Vec::new();
    for mode in [TableMode::Disjoint, TableMode::Overlapping] {
        for path in [CommitPath::EngineLock, CommitPath::PerTable] {
            let r = run(path, mode, writers, txns, rows);
            println!(
                "{:<12} {:<12} {:>8} {:>8} {:>9.1}% {:>8} {:>8} {:>8} {:>9}",
                r.path.label(),
                r.mode.label(),
                r.commits,
                r.aborts,
                100.0 * r.aborts as f64 / (r.commits + r.aborts).max(1) as f64,
                r.p50,
                r.p99,
                r.max,
                r.wall_ms,
            );
            reports.push(r);
        }
    }

    // Invariants the harness asserts (kept loose enough for 1-core CI):
    // the engine-lock path never aborts, and the per-table path never
    // aborts on disjoint tables — conflicts require a shared table.
    for r in &reports {
        if r.path == CommitPath::EngineLock || r.mode == TableMode::Disjoint {
            assert_eq!(
                r.aborts, 0,
                "{}/{} must not abort",
                r.path.label(),
                r.mode.label()
            );
        }
    }
    println!("\nok: all workloads committed every transaction; conflicts only on overlapping tables");
}
