//! What does durability cost at the group-commit batch point?
//!
//! N writer threads each run a fixed number of transactions (a small
//! disjoint-table DML batch, then `commit()` through the group-commit
//! queue) against two engines: **in-memory** (`DurabilityMode::None`, the
//! PR-5 baseline) and **durable** (`DurabilityMode::wal`, where the batch
//! leader appends every follower's WAL record and issues ONE fsync before
//! the O(metadata) installs publish). The whole point of logging at the
//! leader is that the fsync amortizes across the batch, so the durable
//! path should stay within a small factor of the in-memory one instead of
//! paying a disk flush per transaction.
//!
//! Report per (writers, mode): commits/s, commit p50/p99 (µs), WAL
//! batches, fsyncs, and fsyncs/commit. Gates (3-attempt re-measure, like
//! the txn_commit_contention gates, to keep one preempted quantum from
//! turning CI red):
//!
//! * fsyncs ≤ WAL batches over the measured window — at most one fsync
//!   per group-commit batch, the amortization the design promises;
//! * at 4+ writers the durable path sustains ≥ 0.5x the in-memory
//!   throughput.
//!
//! The default transaction is a 128-row insert. That calibration matters
//! for what the throughput gate can prove: a commodity-disk flush costs
//! ~half a millisecond at commit cadence, so a handful-of-rows
//! micro-transaction (tens of µs of engine work) pits one flush against
//! work it can never amortize at 4 writers — the N-way batch recoups at
//! most Nx, and the remainder measures the disk, not the design. At 128
//! rows the per-transaction work is on the order of the flush, which is
//! exactly the regime the leader's single-fsync batch is built for;
//! smaller and larger sizes remain a CLI knob for exploring the cliff.
//!
//! Run with: `cargo run --release -p dt-bench --bin wal_commit`
//! Optional args: `[writers] [txns-per-writer] [rows-per-txn]
//! [--json PATH]`. With no `writers` argument the harness sweeps 2/4/8
//! writer threads. The WAL lives in a scratch directory under the system
//! temp dir, removed afterwards.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use dt_core::{is_serialization_conflict, DbConfig, DurabilityMode, Engine};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    InMemory,
    Durable,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::InMemory => "in-memory",
            Mode::Durable => "durable",
        }
    }
}

struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("dt-bench-wal-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        ScratchDir { path }
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunReport {
    writers: usize,
    mode: Mode,
    commits: u64,
    p50: u64,
    p99: u64,
    wall_ms: u128,
    throughput: f64,
    wal_batches: u64,
    wal_fsyncs: u64,
}

fn insert_sql_into(table: &str, writer: usize, txn: usize, rows: usize) -> String {
    let mut values = Vec::with_capacity(rows);
    for r in 0..rows {
        values.push(format!("({}, {})", writer * 1_000_000 + txn * 100 + r, r));
    }
    format!("INSERT INTO {table} VALUES {}", values.join(", "))
}

fn insert_sql(table: usize, writer: usize, txn: usize, rows: usize) -> String {
    insert_sql_into(&format!("t{table}"), writer, txn, rows)
}

/// Run one (writers, mode) workload and collect per-commit latencies (µs).
fn run(mode: Mode, writers: usize, txns: usize, rows: usize) -> RunReport {
    let scratch;
    let config = match mode {
        Mode::InMemory => DbConfig::default(),
        Mode::Durable => {
            scratch = ScratchDir::new("run");
            DbConfig {
                durability: DurabilityMode::wal(&scratch.path),
                ..DbConfig::default()
            }
        }
    };
    let engine = Engine::open_with_config(config).unwrap();
    let db = engine.session();
    for t in 0..writers {
        db.execute(&format!("CREATE TABLE t{t} (k INT, v INT)")).unwrap();
    }
    // Warm the path before the clock starts — allocator arenas, page
    // tables, the WAL segment — on a throwaway table so the row-count
    // sanity check below stays exact. Cold-start transients otherwise
    // land entirely inside whichever mode runs first and skew the
    // throughput ratio the gate compares.
    db.execute("CREATE TABLE warmup (k INT, v INT)").unwrap();
    for i in 0..25 {
        let mut txn = db.begin();
        txn.execute(&insert_sql_into("warmup", 0, i, rows)).unwrap();
        txn.commit().unwrap();
    }
    // Measure the steady-state commit window only: setup appends (table
    // creation catalog records, warmup, segment headers) are excluded by
    // deltas.
    let wal_before = engine.wal_stats();
    let commits = AtomicU64::new(0);
    let barrier = Barrier::new(writers);
    let mut all_lat: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..writers {
            let engine = engine.clone();
            let (commits, barrier) = (&commits, &barrier);
            handles.push(scope.spawn(move || {
                let session = engine.session();
                let mut lat = Vec::with_capacity(txns);
                barrier.wait();
                for i in 0..txns {
                    let sql = insert_sql(w, w, i, rows);
                    let start = Instant::now();
                    loop {
                        let mut txn = session.begin();
                        txn.execute(&sql).unwrap();
                        match txn.commit() {
                            Ok(_) => {
                                commits.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) if is_serialization_conflict(&e) => {}
                            Err(e) => panic!("commit failed: {e}"),
                        }
                    }
                    lat.push(start.elapsed().as_micros() as u64);
                }
                lat
            }));
        }
        for h in handles {
            all_lat.extend(h.join().unwrap());
        }
    });
    let wall_ms = t0.elapsed().as_millis();

    // Sanity: every committed row is really there.
    let session = engine.session();
    let mut total = 0usize;
    for t in 0..writers {
        total += session.query(&format!("SELECT * FROM t{t}")).unwrap().len();
    }
    assert_eq!(total, writers * txns * rows, "lost or duplicated committed rows");

    let wal = engine.wal_stats();
    all_lat.sort_unstable();
    let committed = commits.load(Ordering::Relaxed);
    RunReport {
        writers,
        mode,
        commits: committed,
        p50: percentile(&all_lat, 0.50),
        p99: percentile(&all_lat, 0.99),
        wall_ms,
        throughput: committed as f64 / (wall_ms.max(1) as f64 / 1000.0),
        wal_batches: wal.batches - wal_before.batches,
        wal_fsyncs: wal.fsyncs - wal_before.fsyncs,
    }
}

fn json_line(r: &RunReport) -> String {
    format!(
        "    {{\"writers\": {}, \"mode\": \"{}\", \"commits\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"wall_ms\": {}, \
         \"throughput_per_s\": {:.1}, \"wal_batches\": {}, \
         \"wal_fsyncs\": {}, \"fsyncs_per_commit\": {:.3}}}",
        r.writers,
        r.mode.label(),
        r.commits,
        r.p50,
        r.p99,
        r.wall_ms,
        r.throughput,
        r.wal_batches,
        r.wal_fsyncs,
        r.wal_fsyncs as f64 / r.commits.max(1) as f64,
    )
}

fn main() {
    let mut writers_arg: Option<usize> = None;
    let mut txns: usize = 200;
    let mut rows: usize = 128;
    let mut json_path: Option<String> = None;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
            continue;
        }
        let v: usize = a.parse().unwrap_or_else(|_| panic!("bad argument {a}"));
        match positional {
            0 => writers_arg = Some(v),
            1 => txns = v,
            2 => rows = v,
            _ => panic!("too many arguments"),
        }
        positional += 1;
    }
    let writer_counts: Vec<usize> = match writers_arg {
        Some(w) => vec![w],
        None => vec![2, 4, 8],
    };

    println!("# Durable vs in-memory group-commit");
    println!(
        "# writers x {txns} txns x {rows} rows/txn \
         (latencies in µs per committed txn incl. retries)\n"
    );
    println!(
        "{:<8} {:<11} {:>8} {:>7} {:>7} {:>8} {:>10} {:>9} {:>8} {:>14}",
        "writers",
        "mode",
        "commits",
        "p50",
        "p99",
        "wall-ms",
        "commits/s",
        "batches",
        "fsyncs",
        "fsyncs/commit"
    );

    let mut reports = Vec::new();
    for &writers in &writer_counts {
        for mode in [Mode::InMemory, Mode::Durable] {
            let r = run(mode, writers, txns, rows);
            println!(
                "{:<8} {:<11} {:>8} {:>7} {:>7} {:>8} {:>10.0} {:>9} {:>8} {:>14.3}",
                r.writers,
                r.mode.label(),
                r.commits,
                r.p50,
                r.p99,
                r.wall_ms,
                r.throughput,
                r.wal_batches,
                r.wal_fsyncs,
                r.wal_fsyncs as f64 / r.commits.max(1) as f64,
            );
            reports.push(r);
        }
    }

    // Gate 1: at most one fsync per group-commit batch over the measured
    // commit window, on every durable run. This is structural — a failure
    // means the leader is flushing more than once per batch — so no
    // re-measurement is warranted.
    for r in &reports {
        match r.mode {
            Mode::Durable => assert!(
                r.wal_fsyncs <= r.wal_batches,
                "{} fsyncs for {} WAL batches at {} writers — more than one \
                 fsync per group-commit batch",
                r.wal_fsyncs,
                r.wal_batches,
                r.writers
            ),
            Mode::InMemory => assert_eq!(
                r.wal_batches, 0,
                "in-memory run touched the WAL ({} batches)",
                r.wal_batches
            ),
        }
    }

    // The trajectory artifact records every raw number regardless of how
    // the throughput gate fares.
    if let Some(path) = json_path {
        let body: Vec<String> = reports.iter().map(json_line).collect();
        let json = format!(
            "{{\n  \"bench\": \"wal_commit\",\n  \"txns_per_writer\": {txns},\n  \
             \"rows_per_txn\": {rows},\n  \"runs\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write(&path, json).unwrap();
        println!("\nwrote {path}");
    }

    // Gate 2: durable throughput ≥ 0.5x in-memory at 4+ writers. The
    // batch leader's single fsync amortizes across followers, so the
    // durable path must stay within 2x — anything worse means commits are
    // serializing on the disk instead of batching. Re-measured up to 3
    // attempts; a transient scheduler or disk hiccup vanishes on retry, a
    // genuine regression fails all three.
    let mut gated = 0usize;
    for &writers in &writer_counts {
        if writers < 4 {
            continue;
        }
        gated += 1;
        let tp = |mode: Mode, rs: &[RunReport]| {
            rs.iter()
                .find(|r| r.writers == writers && r.mode == mode)
                .map(|r| r.throughput)
                .unwrap()
        };
        let mut memory = tp(Mode::InMemory, &reports);
        let mut durable = tp(Mode::Durable, &reports);
        let mut attempts = 1;
        while durable < memory * 0.5 && attempts < 3 {
            println!(
                "note: re-measuring throughput gate at {writers} writers \
                 (attempt {attempts} saw durable {durable:.0}/s vs in-memory \
                 {memory:.0}/s)"
            );
            memory = run(Mode::InMemory, writers, txns, rows).throughput;
            durable = run(Mode::Durable, writers, txns, rows).throughput;
            attempts += 1;
        }
        assert!(
            durable >= memory * 0.5,
            "durable group-commit ({durable:.0} commits/s) below 0.5x \
             in-memory ({memory:.0} commits/s) at {writers} writers after \
             {attempts} attempts"
        );
    }

    if gated > 0 {
        println!(
            "\nok: ≤1 fsync per group-commit batch; durable throughput \
             within 0.5x of in-memory at 4+ writers"
        );
    } else {
        println!("\nok: ≤1 fsync per group-commit batch (throughput gate needs 4+ writers)");
    }
}
