//! Workload generation for the paper's evaluation figures.
//!
//! The paper's §6.3 measurements come from Snowflake's production fleet,
//! which we cannot have. The substitution (documented in DESIGN.md): a
//! **synthetic fleet generator** that creates a population of Dynamic
//! Tables inside our engine — with target lags drawn from a distribution
//! shaped like the paper reports, definitions drawn from weighted query
//! templates, and update traffic applied to base tables — and a harness
//! that then *measures* the live system the same way the paper measures
//! production (catalog census, refresh logs, scheduler telemetry).

use dt_common::{DtResult, Duration};
use dt_core::Session;
use rand::rngs::StdRng;
use rand::Rng;

/// Target-lag buckets matching Figure 5's x-axis.
pub const LAG_BUCKETS: &[(&str, i64, i64)] = &[
    // (label, min seconds inclusive, max seconds exclusive)
    ("<1m", 0, 60),
    ("1m-5m", 60, 300),
    ("5m-30m", 300, 1800),
    ("30m-2h", 1800, 7200),
    ("2h-8h", 7200, 28800),
    ("8h-16h", 28800, 57600),
    (">=16h", 57600, i64::MAX),
];

/// Sample a target lag from the synthetic fleet distribution. The weights
/// are the stand-in for production (§6.3: ~20% under 5 minutes, >25% at or
/// above 16 hours, the rest in between — "the middle ground between
/// classic batch and streaming is underserved" and yet the majority).
pub fn sample_target_lag(rng: &mut StdRng) -> Duration {
    let r: f64 = rng.gen();
    let secs = if r < 0.08 {
        // sub-minute (the paper's minimum GA lag is 1 minute; lower values
        // "in early testing" — we sample at exactly 1 minute)
        60
    } else if r < 0.20 {
        rng.gen_range(60..300)
    } else if r < 0.45 {
        rng.gen_range(300..1800)
    } else if r < 0.62 {
        rng.gen_range(1800..7200)
    } else if r < 0.74 {
        rng.gen_range(7200..57600)
    } else {
        rng.gen_range(57600..172_800)
    };
    Duration::from_secs(secs)
}

/// Bucket a lag for the Figure 5 histogram.
pub fn lag_bucket(lag: Duration) -> &'static str {
    let s = lag.as_secs();
    for (label, lo, hi) in LAG_BUCKETS {
        if s >= *lo && s < *hi {
            return label;
        }
    }
    ">=16h"
}

/// The base schema every synthetic fleet runs over.
/// Number of distinct keys in the synthetic base tables. Large enough that
/// single-key updates change well under 1% of a keyed DT (the §6.3 ratio
/// measurement needs realistic DT sizes).
pub const BASE_KEYS: i64 = 400;

/// Seed rows per key: keyed DTs start at BASE_KEYS×ROWS_PER_KEY rows, so a
/// single-key update changes ≈ (2·rows_per_key)/(total) ≪ 1% of the DT.
pub const ROWS_PER_KEY: i64 = 5;

pub fn create_base_tables(db: &Session) -> DtResult<()> {
    db.execute("CREATE TABLE events (k INT, v INT, kind STRING)")?;
    db.execute("CREATE TABLE dims (k INT, region STRING)")?;
    db.execute("CREATE TABLE facts (k INT, amount INT)")?;
    // Seed data: batched inserts, BASE_KEYS distinct keys.
    let mut events = Vec::new();
    let mut dims = Vec::new();
    let mut facts = Vec::new();
    for k in 0..BASE_KEYS {
        dims.push(format!("({k}, '{}')", if k % 2 == 0 { "emea" } else { "amer" }));
        for j in 0..ROWS_PER_KEY {
            events.push(format!("({k}, {}, 'x')", (k * 10 + j * 13) % 97));
        }
        facts.push(format!("({k}, {})", k * 7 % 89));
    }
    db.execute(&format!("INSERT INTO dims VALUES {}", dims.join(", ")))?;
    db.execute(&format!("INSERT INTO events VALUES {}", events.join(", ")))?;
    db.execute(&format!("INSERT INTO facts VALUES {}", facts.join(", ")))?;
    Ok(())
}

/// Generate a random DT defining query. Template weights are tuned so the
/// resulting operator census has the *shape* of Figure 6: projections and
/// filters ubiquitous; joins and aggregates common; window functions,
/// outer joins, distinct, and union-all present but rarer.
pub fn sample_query(rng: &mut StdRng) -> String {
    let r: f64 = rng.gen();
    if r < 0.16 {
        // filter + project
        format!("SELECT k, v + {} d FROM events WHERE v > {}", rng.gen_range(1..5), rng.gen_range(0..50))
    } else if r < 0.30 {
        // inner join + aggregate (the workhorse)
        "SELECT e.k, count(*) n, sum(e.v) tv \
         FROM events e JOIN dims d ON e.k = d.k GROUP BY e.k"
            .to_string()
    } else if r < 0.44 {
        // plain grouped aggregate
        format!(
            "SELECT k, count(*) c, sum(v) s, max(v) mx FROM events WHERE v >= {} GROUP BY k",
            rng.gen_range(0..30)
        )
    } else if r < 0.52 {
        // two-way join, no aggregate
        "SELECT e.k, e.v, f.amount FROM events e JOIN facts f ON e.k = f.k".to_string()
    } else if r < 0.58 {
        // outer join
        "SELECT e.k, e.v, d.region FROM events e LEFT JOIN dims d ON e.k = d.k".to_string()
    } else if r < 0.64 {
        // window function
        "SELECT k, v, sum(v) OVER (PARTITION BY k ORDER BY v) run FROM events".to_string()
    } else if r < 0.68 {
        // distinct
        "SELECT DISTINCT kind, k FROM events".to_string()
    } else if r < 0.72 {
        // union all
        "SELECT k FROM events UNION ALL SELECT k FROM facts".to_string()
    } else {
        // non-differentiable → FULL refresh mode (the ~30% of the fleet,
        // matching the paper's "almost 70% incremental")
        format!("SELECT k, v FROM events ORDER BY v DESC LIMIT {}", rng.gen_range(2..10))
    }
}

/// Build a synthetic fleet of `n` DTs. Returns their names.
pub fn build_fleet(db: &Session, rng: &mut StdRng, n: usize) -> DtResult<Vec<String>> {
    let mut names = Vec::with_capacity(n);
    for i in 0..n {
        let lag = sample_target_lag(rng);
        let query = sample_query(rng);
        let name = format!("fleet_dt_{i}");
        db.execute(&format!(
            "CREATE DYNAMIC TABLE {name} TARGET_LAG = '{} seconds' WAREHOUSE = wh AS {query}",
            lag.as_secs()
        ))?;
        names.push(name);
    }
    Ok(names)
}

/// Apply one round of random update traffic to the base tables.
pub fn apply_traffic(db: &Session, rng: &mut StdRng, intensity: usize) -> DtResult<()> {
    for _ in 0..intensity {
        let k = rng.gen_range(0..BASE_KEYS);
        match rng.gen_range(0..10) {
            0..=6 => db.execute(&format!(
                "INSERT INTO events VALUES ({k}, {}, 'y')",
                rng.gen_range(0..100)
            ))?,
            7 => db.execute(&format!("INSERT INTO facts VALUES ({k}, {})", rng.gen_range(0..100)))?,
            8 => db.execute(&format!("DELETE FROM events WHERE k = {k} AND v > 90"))?,
            _ => db.execute(&format!("UPDATE facts SET amount = amount + 1 WHERE k = {k}"))?,
        };
    }
    Ok(())
}

/// A bulk change touching a broad key range — the occasional "dimension
/// update" that changes >10% of downstream DTs (§6.3's 21% bucket).
pub fn apply_bulk_change(db: &Session, rng: &mut StdRng) -> DtResult<()> {
    let lo = rng.gen_range(0..BASE_KEYS / 2);
    let hi = lo + BASE_KEYS / 3;
    db.execute(&format!(
        "UPDATE events SET v = v + 1 WHERE k >= {lo} AND k < {hi}"
    ))?;
    Ok(())
}

/// Render an ASCII bar chart line.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampled_lags_cover_the_spectrum() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buckets = std::collections::BTreeMap::new();
        for _ in 0..2000 {
            let lag = sample_target_lag(&mut rng);
            *buckets.entry(lag_bucket(lag)).or_insert(0usize) += 1;
        }
        // The shape constraints the paper reports.
        let frac = |label: &str| *buckets.get(label).unwrap_or(&0) as f64 / 2000.0;
        let under_5m = frac("<1m") + frac("1m-5m");
        let over_16h = frac(">=16h");
        assert!(under_5m > 0.12 && under_5m < 0.30, "under 5m: {under_5m}");
        assert!(over_16h > 0.18, "over 16h: {over_16h}");
        let middle = 1.0 - under_5m - over_16h;
        assert!(middle > 0.45, "middle: {middle}");
    }

    #[test]
    fn sampled_queries_bind_and_build_fleet() {
        let mut rng = StdRng::seed_from_u64(11);
        let engine = dt_core::Engine::new(dt_core::DbConfig::default());
        engine.create_warehouse("wh", 4).unwrap();
        let db = engine.session();
        create_base_tables(&db).unwrap();
        let names = build_fleet(&db, &mut rng, 40).unwrap();
        assert_eq!(names.len(), 40);
        // Most of the fleet is incremental (paper: ~70%).
        let incremental = engine.inspect(|s| {
            names
                .iter()
                .filter(|n| {
                    s.catalog().resolve(n).unwrap().as_dt().unwrap().refresh_mode
                        == dt_catalog::RefreshMode::Incremental
                })
                .count()
        });
        assert!(incremental as f64 / 40.0 > 0.6);
    }
}
