//! The catalog proper.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use dt_common::{DtError, DtResult, EntityId, Schema, Timestamp};

use crate::ddl_log::{DdlLog, DdlOp};
use crate::entity::{DtState, DynamicTableMeta, Entity, EntityKind};
use crate::privilege::{Privilege, PrivilegeSet};
use crate::snapshot::CatalogSnapshot;

/// The account-wide catalog. Single-writer (the engine serializes DDL
/// through it); readers capture immutable [`CatalogSnapshot`]s via
/// [`Catalog::snapshot`] and never block behind writers.
pub struct Catalog {
    entities: HashMap<EntityId, Entity>,
    /// Live name → id.
    by_name: HashMap<String, EntityId>,
    /// Dropped entities by name, most recent last (for UNDROP).
    dropped_by_name: HashMap<String, Vec<EntityId>>,
    next_id: u64,
    ddl: DdlLog,
    privileges: PrivilegeSet,
    /// Mutation generation: bumped by *every* catalog mutation (DDL, DT
    /// state flips, error counters, grants) — unlike the DDL log's
    /// binding generation, which tracks only binding-relevant changes.
    generation: u64,
    /// The snapshot built at `generation`, handed out until the next
    /// mutation. Interior-mutable so `snapshot(&self)` can fill it lazily.
    snapshot_cache: Mutex<Option<Arc<CatalogSnapshot>>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog {
            entities: HashMap::new(),
            by_name: HashMap::new(),
            dropped_by_name: HashMap::new(),
            next_id: 1,
            ddl: DdlLog::new(),
            privileges: PrivilegeSet::new(),
            generation: 0,
            snapshot_cache: Mutex::new(None),
        }
    }

    fn mint(&mut self) -> EntityId {
        let id = EntityId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Record a mutation: bump the generation and invalidate the cached
    /// snapshot. Every `&mut self` entry point calls this.
    fn touch(&mut self) {
        self.generation += 1;
        *self.snapshot_cache.lock() = None;
    }

    /// The mutation generation (bumped by every catalog change, including
    /// state flips and grants that the binding generation ignores).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Capture an immutable snapshot of the catalog. O(1) between
    /// mutations: the snapshot is rebuilt lazily after a change and the
    /// same `Arc` is handed to every caller until the next change.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        let mut cache = self.snapshot_cache.lock();
        if let Some(snap) = &*cache {
            return Arc::clone(snap);
        }
        let snap = Arc::new(CatalogSnapshot::new(
            self.generation,
            self.ddl.binding_generation(),
            self.entities.clone(),
            self.by_name.clone(),
            self.privileges.clone(),
        ));
        *cache = Some(Arc::clone(&snap));
        snap
    }

    /// Fingerprint of a DT definition against its bound upstream entities:
    /// upstream ids + their schemas (for tables). Any difference at refresh
    /// time means the definition's meaning may have changed → REINITIALIZE.
    pub fn fingerprint(&self, upstream: &[EntityId]) -> u64 {
        let mut h = DefaultHasher::new();
        for id in upstream {
            id.raw().hash(&mut h);
            if let Some(e) = self.entities.get(id) {
                match &e.kind {
                    EntityKind::Table { schema } => {
                        for c in schema.columns() {
                            c.name.hash(&mut h);
                            format!("{}", c.ty).hash(&mut h);
                        }
                    }
                    EntityKind::View { sql } => sql.hash(&mut h),
                    EntityKind::DynamicTable(m) => m.definition_sql.hash(&mut h),
                }
            }
        }
        h.finish()
    }

    fn install(
        &mut self,
        name: &str,
        kind: EntityKind,
        now: Timestamp,
        owner: &str,
        or_replace: bool,
    ) -> DtResult<EntityId> {
        let lname = name.to_ascii_lowercase();
        let replaced = match self.by_name.get(&lname) {
            Some(prev) if or_replace => Some(*prev),
            Some(_) => {
                return Err(DtError::Catalog(format!("entity '{lname}' already exists")))
            }
            None => None,
        };
        // Validation passed: everything below mutates.
        self.touch();
        if let Some(prev) = replaced {
            // Replace = drop previous + create new id under the same name.
            // The id change is visible to downstream DTs as a replaced
            // dependency and forces their reinitialization (§3.3.2).
            if let Some(e) = self.entities.get_mut(&prev) {
                e.dropped_at = Some(now);
            }
            self.dropped_by_name.entry(lname.clone()).or_default().push(prev);
        }
        let id = self.mint();
        self.entities.insert(
            id,
            Entity {
                id,
                name: lname.clone(),
                kind,
                created_at: now,
                dropped_at: None,
                owner: owner.to_string(),
            },
        );
        self.by_name.insert(lname.clone(), id);
        self.privileges.grant(owner, id, Privilege::Ownership);
        let op = match replaced {
            Some(previous) => DdlOp::Replace { previous },
            None => DdlOp::Create,
        };
        self.ddl.append(now, id, lname, op);
        Ok(id)
    }

    /// Create a base table.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        now: Timestamp,
        owner: &str,
        or_replace: bool,
    ) -> DtResult<EntityId> {
        self.install(name, EntityKind::Table { schema }, now, owner, or_replace)
    }

    /// Create a view.
    pub fn create_view(
        &mut self,
        name: &str,
        sql: &str,
        now: Timestamp,
        owner: &str,
        or_replace: bool,
    ) -> DtResult<EntityId> {
        self.install(
            name,
            EntityKind::View {
                sql: sql.to_string(),
            },
            now,
            owner,
            or_replace,
        )
    }

    /// Create a dynamic table. `meta.upstream` must already be bound by the
    /// planner; this method validates acyclicity (§3.1.1: cycles are not
    /// allowed).
    pub fn create_dynamic_table(
        &mut self,
        name: &str,
        mut meta: DynamicTableMeta,
        now: Timestamp,
        owner: &str,
        or_replace: bool,
    ) -> DtResult<EntityId> {
        // Acyclicity: none of the upstream entities may (transitively)
        // depend on an entity with this name. Since the new DT doesn't
        // exist yet, a cycle can only arise through OR REPLACE.
        if or_replace {
            if let Some(prev) = self.by_name.get(&name.to_ascii_lowercase()).copied() {
                let mut stack = meta.upstream.clone();
                let mut seen = BTreeSet::new();
                while let Some(u) = stack.pop() {
                    if u == prev {
                        return Err(DtError::Catalog(format!(
                            "cycle detected: '{name}' would depend on itself"
                        )));
                    }
                    if !seen.insert(u) {
                        continue;
                    }
                    if let Some(e) = self.entities.get(&u) {
                        if let EntityKind::DynamicTable(m) = &e.kind {
                            stack.extend(m.upstream.iter().copied());
                        }
                    }
                }
            }
        }
        meta.definition_fingerprint = self.fingerprint(&meta.upstream);
        meta.state = DtState::Initializing;
        self.install(
            name,
            EntityKind::DynamicTable(Box::new(meta)),
            now,
            owner,
            or_replace,
        )
    }

    /// Resolve a live entity by name.
    pub fn resolve(&self, name: &str) -> DtResult<&Entity> {
        let lname = name.to_ascii_lowercase();
        self.by_name
            .get(&lname)
            .and_then(|id| self.entities.get(id))
            .ok_or_else(|| DtError::Catalog(format!("unknown entity '{lname}'")))
    }

    /// Get any entity (live or dropped) by id.
    pub fn get(&self, id: EntityId) -> DtResult<&Entity> {
        self.entities
            .get(&id)
            .ok_or_else(|| DtError::Catalog(format!("unknown entity {id}")))
    }

    /// Mutable access by id. Counts as a mutation (the caller holds `&mut
    /// Entity`), but only when the lookup succeeds — a failed lookup must
    /// not invalidate the snapshot cache.
    pub fn get_mut(&mut self, id: EntityId) -> DtResult<&mut Entity> {
        if self.entities.contains_key(&id) {
            self.touch();
        }
        self.entities
            .get_mut(&id)
            .ok_or_else(|| DtError::Catalog(format!("unknown entity {id}")))
    }

    /// Drop an entity by name (retained for UNDROP).
    pub fn drop_entity(&mut self, name: &str, now: Timestamp) -> DtResult<EntityId> {
        let lname = name.to_ascii_lowercase();
        let id = *self
            .by_name
            .get(&lname)
            .ok_or_else(|| DtError::Catalog(format!("unknown entity '{lname}'")))?;
        self.touch();
        self.by_name.remove(&lname);
        if let Some(e) = self.entities.get_mut(&id) {
            e.dropped_at = Some(now);
        }
        self.dropped_by_name.entry(lname.clone()).or_default().push(id);
        self.ddl.append(now, id, lname, DdlOp::Drop);
        Ok(id)
    }

    /// Restore the most recently dropped entity with this name (§3.4: "if
    /// the table is UNDROPped, then refreshes should resume without issue").
    pub fn undrop(&mut self, name: &str, now: Timestamp) -> DtResult<EntityId> {
        let lname = name.to_ascii_lowercase();
        if self.by_name.contains_key(&lname) {
            return Err(DtError::Catalog(format!(
                "cannot UNDROP '{lname}': a live entity with that name exists"
            )));
        }
        let id = self
            .dropped_by_name
            .get_mut(&lname)
            .and_then(|v| v.pop())
            .ok_or_else(|| DtError::Catalog(format!("no dropped entity named '{lname}'")))?;
        self.touch();
        if let Some(e) = self.entities.get_mut(&id) {
            e.dropped_at = None;
        }
        self.by_name.insert(lname.clone(), id);
        self.ddl.append(now, id, lname, DdlOp::Undrop);
        Ok(id)
    }

    /// Set a DT's lifecycle state, logging suspend/resume transitions.
    pub fn set_dt_state(&mut self, id: EntityId, state: DtState, now: Timestamp) -> DtResult<()> {
        let name = self.get(id)?.name.clone();
        let meta = self
            .get_mut(id)?
            .as_dt_mut()
            .ok_or_else(|| DtError::Catalog(format!("'{name}' is not a dynamic table")))?;
        let old = meta.state;
        meta.state = state;
        if state == DtState::Active {
            meta.error_count = 0;
        }
        match (old, state) {
            (DtState::Active, DtState::Suspended | DtState::SuspendedOnErrors) => {
                self.ddl.append(now, id, name, DdlOp::Suspend);
            }
            (DtState::Suspended | DtState::SuspendedOnErrors, DtState::Active) => {
                self.ddl.append(now, id, name, DdlOp::Resume);
            }
            _ => {}
        }
        Ok(())
    }

    /// Record a refresh failure; returns the new consecutive-error count.
    pub fn record_dt_error(&mut self, id: EntityId) -> DtResult<u32> {
        let meta = self
            .get_mut(id)?
            .as_dt_mut()
            .ok_or_else(|| DtError::Catalog("not a dynamic table".into()))?;
        meta.error_count += 1;
        Ok(meta.error_count)
    }

    /// Record a refresh success (resets the consecutive-error counter).
    pub fn record_dt_success(&mut self, id: EntityId) -> DtResult<()> {
        let meta = self
            .get_mut(id)?
            .as_dt_mut()
            .ok_or_else(|| DtError::Catalog("not a dynamic table".into()))?;
        meta.error_count = 0;
        Ok(())
    }

    /// Live DTs, in id order.
    pub fn dynamic_tables(&self) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = self
            .entities
            .values()
            .filter(|e| e.is_live() && matches!(e.kind, EntityKind::DynamicTable(_)))
            .map(|e| e.id)
            .collect();
        ids.sort();
        ids
    }

    /// Direct upstream dependencies of a DT.
    pub fn upstream_of(&self, id: EntityId) -> Vec<EntityId> {
        self.entities
            .get(&id)
            .and_then(|e| e.as_dt())
            .map(|m| m.upstream.clone())
            .unwrap_or_default()
    }

    /// Live DTs whose upstream set contains `id`.
    pub fn downstream_of(&self, id: EntityId) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .entities
            .values()
            .filter(|e| e.is_live())
            .filter(|e| e.as_dt().map(|m| m.upstream.contains(&id)).unwrap_or(false))
            .map(|e| e.id)
            .collect();
        out.sort();
        out
    }

    /// Topological order (upstream before downstream) of the given DTs,
    /// considering only DT→DT edges.
    pub fn topo_order(&self, ids: &[EntityId]) -> Vec<EntityId> {
        let set: BTreeSet<EntityId> = ids.iter().copied().collect();
        let mut indeg: BTreeMap<EntityId, usize> = set.iter().map(|id| (*id, 0)).collect();
        for id in &set {
            for up in self.upstream_of(*id) {
                if set.contains(&up) {
                    *indeg.get_mut(id).unwrap() += 1;
                }
            }
        }
        let mut ready: Vec<EntityId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::with_capacity(set.len());
        while let Some(id) = ready.pop() {
            out.push(id);
            for down in self.downstream_of(id) {
                if let Some(d) = indeg.get_mut(&down) {
                    *d -= 1;
                    if *d == 0 {
                        ready.push(down);
                    }
                }
            }
        }
        out
    }

    /// The DDL log.
    pub fn ddl_log(&self) -> &DdlLog {
        &self.ddl
    }

    /// The grant table.
    pub fn privileges(&self) -> &PrivilegeSet {
        &self.privileges
    }

    /// Mutable grant table.
    pub fn privileges_mut(&mut self) -> &mut PrivilegeSet {
        self.touch();
        &mut self.privileges
    }

    /// Grant `privilege` on the live entity `name` to `role` (§3.4). The
    /// session layer calls this with the *granting session's* target role;
    /// subsequent privilege checks read whatever role the checking session
    /// carries.
    pub fn grant_on(
        &mut self,
        role: &str,
        name: &str,
        privilege: Privilege,
    ) -> DtResult<()> {
        let id = self.resolve(name)?.id;
        self.touch();
        self.privileges.grant(role, id, privilege);
        Ok(())
    }

    /// Check that `role` holds `privilege` on the live entity `name`.
    pub fn check_privilege(
        &self,
        role: &str,
        name: &str,
        privilege: Privilege,
    ) -> DtResult<()> {
        let e = self.resolve(name)?;
        self.privileges.check(role, e.id, &e.name, privilege)
    }

    /// Encode the complete catalog — entities live and dropped, the
    /// UNDROP stacks, the DDL log, and the grant table — with the
    /// `dt-wal` codec. Used both by checkpoints and by DDL WAL records
    /// (which snapshot the whole post-statement catalog; see
    /// [`crate::durable`]).
    pub fn encode(&self, w: &mut dt_wal::Writer) {
        w.put_u64(self.next_id);
        w.put_u64(self.generation);
        let mut entities: Vec<&Entity> = self.entities.values().collect();
        entities.sort_by_key(|e| e.id);
        w.put_len(entities.len());
        for e in entities {
            crate::durable::put_entity(w, e);
        }
        let mut dropped: Vec<(&String, &Vec<EntityId>)> = self.dropped_by_name.iter().collect();
        dropped.sort_by_key(|(name, _)| name.as_str());
        w.put_len(dropped.len());
        for (name, ids) in dropped {
            w.put_str(name);
            w.put_len(ids.len());
            for id in ids {
                w.put_u64(id.raw());
            }
        }
        let events = self.ddl.events_since(0);
        w.put_len(events.len());
        for e in events {
            crate::durable::put_ddl_event(w, e);
        }
        let grants = self.privileges.dump();
        w.put_len(grants.len());
        for (role, entity, privs) in grants {
            w.put_str(&role);
            w.put_u64(entity.raw());
            w.put_len(privs.len());
            for p in privs {
                crate::durable::put_privilege(w, p);
            }
        }
    }

    /// Encode the catalog as a standalone byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = dt_wal::Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode a catalog encoded by [`Catalog::encode`].
    pub fn decode(r: &mut dt_wal::Reader<'_>) -> DtResult<Catalog> {
        let next_id = r.get_u64()?;
        let generation = r.get_u64()?;
        let n = r.get_len(20)?;
        let mut entities = HashMap::with_capacity(n);
        let mut by_name = HashMap::new();
        for _ in 0..n {
            let e = crate::durable::get_entity(r)?;
            if e.id.raw() >= next_id {
                return Err(DtError::Corruption(format!(
                    "catalog image: entity {} not below next_id {next_id}",
                    e.id
                )));
            }
            if e.is_live() && by_name.insert(e.name.clone(), e.id).is_some() {
                return Err(DtError::Corruption(format!(
                    "catalog image: duplicate live name '{}'",
                    e.name
                )));
            }
            entities.insert(e.id, e);
        }
        let n = r.get_len(8)?;
        let mut dropped_by_name = HashMap::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            let ids_n = r.get_len(8)?;
            let mut ids = Vec::with_capacity(ids_n);
            for _ in 0..ids_n {
                let id = EntityId(r.get_u64()?);
                if !entities.contains_key(&id) {
                    return Err(DtError::Corruption(format!(
                        "catalog image: UNDROP stack references unknown entity {id}"
                    )));
                }
                ids.push(id);
            }
            dropped_by_name.insert(name, ids);
        }
        let n = r.get_len(22)?;
        let mut ddl = DdlLog::new();
        for _ in 0..n {
            let e = crate::durable::get_ddl_event(r)?;
            let seq = ddl.append(e.ts, e.entity, e.name, e.op);
            if seq != e.seq {
                return Err(DtError::Corruption(format!(
                    "catalog image: DDL event out of order (seq {} at position {seq})",
                    e.seq
                )));
            }
        }
        let n = r.get_len(16)?;
        let mut grants = Vec::with_capacity(n);
        for _ in 0..n {
            let role = r.get_str()?;
            let entity = EntityId(r.get_u64()?);
            let privs_n = r.get_len(1)?;
            let mut privs = Vec::with_capacity(privs_n);
            for _ in 0..privs_n {
                privs.push(crate::durable::get_privilege(r)?);
            }
            grants.push((role, entity, privs));
        }
        Ok(Catalog {
            entities,
            by_name,
            dropped_by_name,
            next_id,
            ddl,
            privileges: PrivilegeSet::restore(grants),
            generation,
            snapshot_cache: Mutex::new(None),
        })
    }

    /// Decode a catalog from a standalone byte blob (strict: trailing
    /// bytes are corruption).
    pub fn from_bytes(bytes: &[u8]) -> DtResult<Catalog> {
        let mut r = dt_wal::Reader::new(bytes);
        let c = Catalog::decode(&mut r)?;
        r.finish()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{RefreshMode, TargetLagSpec};
    use dt_common::{Column, DataType, Duration};

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn schema() -> Schema {
        Schema::new(vec![Column::new("x", DataType::Int)])
    }

    fn dt_meta(upstream: Vec<EntityId>) -> DynamicTableMeta {
        DynamicTableMeta {
            target_lag: TargetLagSpec::Duration(Duration::from_mins(1)),
            warehouse: "wh".into(),
            refresh_mode: RefreshMode::Incremental,
            definition_sql: "select * from t".into(),
            upstream,
            used_columns: BTreeMap::new(),
            state: DtState::Initializing,
            error_count: 0,
            definition_fingerprint: 0,
        }
    }

    #[test]
    fn create_resolve_duplicate() {
        let mut c = Catalog::new();
        let id = c.create_table("T", schema(), ts(1), "admin", false).unwrap();
        assert_eq!(c.resolve("t").unwrap().id, id);
        assert!(c.create_table("t", schema(), ts(2), "admin", false).is_err());
    }

    #[test]
    fn or_replace_mints_new_id_and_logs_replace() {
        let mut c = Catalog::new();
        let id1 = c.create_table("t", schema(), ts(1), "admin", false).unwrap();
        let id2 = c.create_table("t", schema(), ts(2), "admin", true).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(c.resolve("t").unwrap().id, id2);
        let last = c.ddl_log().events_since(0).last().unwrap().clone();
        assert_eq!(last.op, DdlOp::Replace { previous: id1 });
        // The old entity is retained (dropped) for inspection.
        assert!(!c.get(id1).unwrap().is_live());
    }

    #[test]
    fn drop_undrop_roundtrip() {
        let mut c = Catalog::new();
        let id = c.create_table("t", schema(), ts(1), "admin", false).unwrap();
        c.drop_entity("t", ts(2)).unwrap();
        assert!(c.resolve("t").is_err());
        let back = c.undrop("t", ts(3)).unwrap();
        assert_eq!(back, id);
        assert!(c.resolve("t").unwrap().is_live());
    }

    #[test]
    fn undrop_blocked_by_live_name() {
        let mut c = Catalog::new();
        c.create_table("t", schema(), ts(1), "admin", false).unwrap();
        c.drop_entity("t", ts(2)).unwrap();
        c.create_table("t", schema(), ts(3), "admin", false).unwrap();
        assert!(c.undrop("t", ts(4)).is_err());
    }

    #[test]
    fn dt_graph_topology() {
        let mut c = Catalog::new();
        let base = c.create_table("base", schema(), ts(1), "admin", false).unwrap();
        let dt1 = c
            .create_dynamic_table("dt1", dt_meta(vec![base]), ts(2), "admin", false)
            .unwrap();
        let dt2 = c
            .create_dynamic_table("dt2", dt_meta(vec![dt1]), ts(3), "admin", false)
            .unwrap();
        let dt3 = c
            .create_dynamic_table("dt3", dt_meta(vec![dt1, base]), ts(4), "admin", false)
            .unwrap();
        assert_eq!(c.downstream_of(dt1), vec![dt2, dt3]);
        assert_eq!(c.upstream_of(dt2), vec![dt1]);
        let order = c.topo_order(&[dt3, dt2, dt1]);
        let pos = |id| order.iter().position(|x| *x == id).unwrap();
        assert!(pos(dt1) < pos(dt2));
        assert!(pos(dt1) < pos(dt3));
    }

    #[test]
    fn replace_cycle_detection() {
        let mut c = Catalog::new();
        let base = c.create_table("base", schema(), ts(1), "admin", false).unwrap();
        let dt1 = c
            .create_dynamic_table("dt1", dt_meta(vec![base]), ts(2), "admin", false)
            .unwrap();
        let dt2 = c
            .create_dynamic_table("dt2", dt_meta(vec![dt1]), ts(3), "admin", false)
            .unwrap();
        // Replacing dt1 with a definition reading dt2 would create a cycle.
        let err = c
            .create_dynamic_table("dt1", dt_meta(vec![dt2]), ts(4), "admin", true)
            .unwrap_err();
        assert!(matches!(err, DtError::Catalog(_)));
    }

    #[test]
    fn error_counter_and_state() {
        let mut c = Catalog::new();
        let base = c.create_table("base", schema(), ts(1), "admin", false).unwrap();
        let dt = c
            .create_dynamic_table("dt", dt_meta(vec![base]), ts(2), "admin", false)
            .unwrap();
        c.set_dt_state(dt, DtState::Active, ts(3)).unwrap();
        assert_eq!(c.record_dt_error(dt).unwrap(), 1);
        assert_eq!(c.record_dt_error(dt).unwrap(), 2);
        c.record_dt_success(dt).unwrap();
        assert_eq!(c.get(dt).unwrap().as_dt().unwrap().error_count, 0);
        c.set_dt_state(dt, DtState::SuspendedOnErrors, ts(4)).unwrap();
        let last = c.ddl_log().events_since(0).last().unwrap().clone();
        assert_eq!(last.op, DdlOp::Suspend);
    }

    #[test]
    fn fingerprint_changes_when_upstream_replaced() {
        let mut c = Catalog::new();
        let base = c.create_table("base", schema(), ts(1), "admin", false).unwrap();
        let fp1 = c.fingerprint(&[base]);
        let base2 = c.create_table("base", schema(), ts(2), "admin", true).unwrap();
        let fp2 = c.fingerprint(&[base2]);
        assert_ne!(fp1, fp2);
    }

    #[test]
    fn owner_gets_ownership_privilege() {
        let mut c = Catalog::new();
        let id = c.create_table("t", schema(), ts(1), "alice", false).unwrap();
        assert!(c.privileges().has("alice", id, Privilege::Select));
        assert!(!c.privileges().has("bob", id, Privilege::Select));
    }

    #[test]
    fn encode_decode_round_trips_full_catalog() {
        let mut c = Catalog::new();
        let base = c.create_table("base", schema(), ts(1), "admin", false).unwrap();
        let dt = c
            .create_dynamic_table("dt", dt_meta(vec![base]), ts(2), "admin", false)
            .unwrap();
        c.set_dt_state(dt, DtState::Active, ts(3)).unwrap();
        c.record_dt_error(dt).unwrap();
        c.create_view("v", "select x from base", ts(4), "alice", false)
            .unwrap();
        c.create_table("gone", schema(), ts(5), "admin", false).unwrap();
        c.drop_entity("gone", ts(6)).unwrap();
        c.grant_on("analyst", "dt", Privilege::Monitor).unwrap();
        c.create_table("base", schema(), ts(7), "admin", true).unwrap();

        let bytes = c.to_bytes();
        let back = Catalog::from_bytes(&bytes).unwrap();

        assert_eq!(back.generation(), c.generation());
        assert_eq!(back.dynamic_tables(), c.dynamic_tables());
        assert_eq!(back.ddl_log().len(), c.ddl_log().len());
        assert_eq!(
            back.ddl_log().binding_generation(),
            c.ddl_log().binding_generation()
        );
        assert_eq!(back.resolve("dt").unwrap().id, dt);
        let m = back.get(dt).unwrap().as_dt().unwrap();
        assert_eq!(m.state, DtState::Active);
        assert_eq!(m.error_count, 1);
        assert_eq!(m.upstream, vec![base]);
        assert!(back.privileges().has("analyst", dt, Privilege::Monitor));
        assert!(back.privileges().has("alice", back.resolve("v").unwrap().id, Privilege::Select));
        // Dropped entities and their UNDROP stacks survive.
        assert!(back.resolve("gone").is_err());
        let mut back = back;
        let restored = back.undrop("gone", ts(8)).unwrap();
        assert_eq!(restored, c.resolve("base").map(|_| restored).unwrap());
        // The replaced old "base" is retained as dropped.
        assert!(!back.get(base).unwrap().is_live());
        // And new DDL keeps working with non-colliding ids.
        let fresh = back.create_table("fresh", schema(), ts(9), "admin", false).unwrap();
        assert!(c.get(fresh).is_err(), "id {fresh} was never minted in the original");
    }

    #[test]
    fn decode_rejects_corrupt_images() {
        let mut c = Catalog::new();
        c.create_table("t", schema(), ts(1), "admin", false).unwrap();
        let bytes = c.to_bytes();
        // Truncation at any point is corruption, never a panic.
        for cut in 0..bytes.len() {
            assert!(Catalog::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing bytes are rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Catalog::from_bytes(&extended).is_err());
    }
}
