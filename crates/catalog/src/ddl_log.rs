//! The DDL log.
//!
//! §5.1: "The catalog generates a timestamped, linearizable log of DDL
//! operations to all DTs and related entities. This DDL log is consumed by
//! a job in the scheduler that renders the dependency graph of DTs and
//! issues refresh commands." We reproduce that interface: every catalog
//! mutation appends an event; the scheduler polls `events_since`.

use dt_common::{EntityId, Timestamp};

/// Kinds of DDL operation recorded in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdlOp {
    /// Entity created.
    Create,
    /// Entity replaced (`CREATE OR REPLACE`): `previous` is the replaced id.
    Replace {
        /// The entity id this one replaced.
        previous: EntityId,
    },
    /// Entity dropped.
    Drop,
    /// Entity restored by UNDROP.
    Undrop,
    /// DT suspended (by user or error policy).
    Suspend,
    /// DT resumed.
    Resume,
}

/// One DDL log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdlEvent {
    /// Position in the log (dense, starting at 0) — the linearization order.
    pub seq: u64,
    /// When the operation happened.
    pub ts: Timestamp,
    /// The entity operated on.
    pub entity: EntityId,
    /// Entity name at the time of the operation.
    pub name: String,
    /// The operation.
    pub op: DdlOp,
}

/// Append-only DDL log.
#[derive(Debug, Default)]
pub struct DdlLog {
    events: Vec<DdlEvent>,
    /// Events that change what names bind to (Create/Replace/Drop/Undrop —
    /// not Suspend/Resume). Prepared-statement caches key on this.
    binding_ops: u64,
}

impl DdlLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; the log assigns the sequence number.
    pub fn append(&mut self, ts: Timestamp, entity: EntityId, name: String, op: DdlOp) -> u64 {
        let seq = self.events.len() as u64;
        if matches!(
            op,
            DdlOp::Create | DdlOp::Replace { .. } | DdlOp::Drop | DdlOp::Undrop
        ) {
            self.binding_ops += 1;
        }
        self.events.push(DdlEvent {
            seq,
            ts,
            entity,
            name,
            op,
        });
        seq
    }

    /// Count of binding-relevant events (Create/Replace/Drop/Undrop).
    /// Suspend/Resume don't change what a bound plan reads, so cached
    /// plans key their validity on this counter rather than [`DdlLog::len`].
    pub fn binding_generation(&self) -> u64 {
        self.binding_ops
    }

    /// Events with `seq >= from`, in order. The scheduler keeps a cursor
    /// and calls this to incrementally rebuild its view of the DT graph.
    pub fn events_since(&self, from: u64) -> &[DdlEvent] {
        let start = (from as usize).min(self.events.len());
        &self.events[start..]
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no DDL has happened yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_append_only_and_ordered() {
        let mut log = DdlLog::new();
        let s0 = log.append(Timestamp::from_secs(1), EntityId(1), "a".into(), DdlOp::Create);
        let s1 = log.append(Timestamp::from_secs(2), EntityId(1), "a".into(), DdlOp::Drop);
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(log.events_since(0).len(), 2);
        assert_eq!(log.events_since(1).len(), 1);
        assert_eq!(log.events_since(5).len(), 0);
        assert_eq!(log.events_since(1)[0].op, DdlOp::Drop);
    }
}
