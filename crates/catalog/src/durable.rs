//! Checkpoint codec for catalog state.
//!
//! The catalog is small (metadata only), so checkpoints carry it whole —
//! and so does every DDL WAL record: rather than defining a replay
//! operation per DDL statement, a DDL record snapshots the entire
//! post-statement catalog. Replay is then trivially idempotent and
//! total-order-faithful: install the newest snapshot, done. The encode
//! format is the `dt-wal` codec (explicit little-endian layout, strict
//! decoding that surfaces [`DtError::Corruption`]).
//!
//! This module encodes the public catalog pieces ([`Entity`],
//! [`DdlEvent`], [`Privilege`]); the [`crate::Catalog`] container itself
//! (private maps) implements `encode`/`decode` in `catalog.rs` on top of
//! these.

use std::collections::{BTreeMap, BTreeSet};

use dt_common::{DtError, DtResult, Duration, EntityId, Timestamp};
use dt_wal::codec::{get_schema, put_schema, Reader, Writer};

use crate::ddl_log::{DdlEvent, DdlOp};
use crate::entity::{DtState, DynamicTableMeta, Entity, EntityKind, RefreshMode, TargetLagSpec};
use crate::privilege::Privilege;

fn err<T>(msg: impl Into<String>) -> DtResult<T> {
    Err(DtError::Corruption(msg.into()))
}

fn put_entity_ids(w: &mut Writer, ids: &[EntityId]) {
    w.put_len(ids.len());
    for id in ids {
        w.put_u64(id.raw());
    }
}

fn get_entity_ids(r: &mut Reader<'_>) -> DtResult<Vec<EntityId>> {
    let n = r.get_len(8)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(EntityId(r.get_u64()?));
    }
    Ok(ids)
}

fn put_dt_meta(w: &mut Writer, m: &DynamicTableMeta) {
    match m.target_lag {
        TargetLagSpec::Duration(d) => {
            w.put_u8(0);
            w.put_i64(d.as_micros());
        }
        TargetLagSpec::Downstream => w.put_u8(1),
    }
    w.put_str(&m.warehouse);
    w.put_u8(match m.refresh_mode {
        RefreshMode::Full => 0,
        RefreshMode::Incremental => 1,
    });
    w.put_str(&m.definition_sql);
    put_entity_ids(w, &m.upstream);
    w.put_len(m.used_columns.len());
    for (id, cols) in &m.used_columns {
        w.put_u64(id.raw());
        w.put_len(cols.len());
        for c in cols {
            w.put_str(c);
        }
    }
    w.put_u8(match m.state {
        DtState::Initializing => 0,
        DtState::Active => 1,
        DtState::Suspended => 2,
        DtState::SuspendedOnErrors => 3,
    });
    w.put_u32(m.error_count);
    w.put_u64(m.definition_fingerprint);
}

fn get_dt_meta(r: &mut Reader<'_>) -> DtResult<DynamicTableMeta> {
    let target_lag = match r.get_u8()? {
        0 => TargetLagSpec::Duration(Duration::from_micros(r.get_i64()?)),
        1 => TargetLagSpec::Downstream,
        tag => return err(format!("unknown TargetLagSpec tag {tag:#04x}")),
    };
    let warehouse = r.get_str()?;
    let refresh_mode = match r.get_u8()? {
        0 => RefreshMode::Full,
        1 => RefreshMode::Incremental,
        tag => return err(format!("unknown RefreshMode tag {tag:#04x}")),
    };
    let definition_sql = r.get_str()?;
    let upstream = get_entity_ids(r)?;
    let n = r.get_len(12)?;
    let mut used_columns = BTreeMap::new();
    for _ in 0..n {
        let id = EntityId(r.get_u64()?);
        let cols_n = r.get_len(4)?;
        let mut cols = BTreeSet::new();
        for _ in 0..cols_n {
            cols.insert(r.get_str()?);
        }
        used_columns.insert(id, cols);
    }
    let state = match r.get_u8()? {
        0 => DtState::Initializing,
        1 => DtState::Active,
        2 => DtState::Suspended,
        3 => DtState::SuspendedOnErrors,
        tag => return err(format!("unknown DtState tag {tag:#04x}")),
    };
    let error_count = r.get_u32()?;
    let definition_fingerprint = r.get_u64()?;
    Ok(DynamicTableMeta {
        target_lag,
        warehouse,
        refresh_mode,
        definition_sql,
        upstream,
        used_columns,
        state,
        error_count,
        definition_fingerprint,
    })
}

/// Encode one catalog [`Entity`], live or dropped.
pub fn put_entity(w: &mut Writer, e: &Entity) {
    w.put_u64(e.id.raw());
    w.put_str(&e.name);
    match &e.kind {
        EntityKind::Table { schema } => {
            w.put_u8(0);
            put_schema(w, schema);
        }
        EntityKind::View { sql } => {
            w.put_u8(1);
            w.put_str(sql);
        }
        EntityKind::DynamicTable(m) => {
            w.put_u8(2);
            put_dt_meta(w, m);
        }
    }
    w.put_i64(e.created_at.as_micros());
    match e.dropped_at {
        Some(ts) => {
            w.put_bool(true);
            w.put_i64(ts.as_micros());
        }
        None => w.put_bool(false),
    }
    w.put_str(&e.owner);
}

/// Decode one catalog [`Entity`].
pub fn get_entity(r: &mut Reader<'_>) -> DtResult<Entity> {
    let id = EntityId(r.get_u64()?);
    let name = r.get_str()?;
    let kind = match r.get_u8()? {
        0 => EntityKind::Table {
            schema: get_schema(r)?,
        },
        1 => EntityKind::View { sql: r.get_str()? },
        2 => EntityKind::DynamicTable(Box::new(get_dt_meta(r)?)),
        tag => return err(format!("unknown EntityKind tag {tag:#04x}")),
    };
    let created_at = Timestamp::from_micros(r.get_i64()?);
    let dropped_at = if r.get_bool()? {
        Some(Timestamp::from_micros(r.get_i64()?))
    } else {
        None
    };
    let owner = r.get_str()?;
    Ok(Entity {
        id,
        name,
        kind,
        created_at,
        dropped_at,
        owner,
    })
}

/// Encode one [`DdlEvent`].
pub fn put_ddl_event(w: &mut Writer, e: &DdlEvent) {
    w.put_u64(e.seq);
    w.put_i64(e.ts.as_micros());
    w.put_u64(e.entity.raw());
    w.put_str(&e.name);
    match &e.op {
        DdlOp::Create => w.put_u8(0),
        DdlOp::Replace { previous } => {
            w.put_u8(1);
            w.put_u64(previous.raw());
        }
        DdlOp::Drop => w.put_u8(2),
        DdlOp::Undrop => w.put_u8(3),
        DdlOp::Suspend => w.put_u8(4),
        DdlOp::Resume => w.put_u8(5),
    }
}

/// Decode one [`DdlEvent`].
pub fn get_ddl_event(r: &mut Reader<'_>) -> DtResult<DdlEvent> {
    let seq = r.get_u64()?;
    let ts = Timestamp::from_micros(r.get_i64()?);
    let entity = EntityId(r.get_u64()?);
    let name = r.get_str()?;
    let op = match r.get_u8()? {
        0 => DdlOp::Create,
        1 => DdlOp::Replace {
            previous: EntityId(r.get_u64()?),
        },
        2 => DdlOp::Drop,
        3 => DdlOp::Undrop,
        4 => DdlOp::Suspend,
        5 => DdlOp::Resume,
        tag => return err(format!("unknown DdlOp tag {tag:#04x}")),
    };
    Ok(DdlEvent {
        seq,
        ts,
        entity,
        name,
        op,
    })
}

/// Encode a [`Privilege`] as a one-byte tag.
pub fn put_privilege(w: &mut Writer, p: Privilege) {
    w.put_u8(match p {
        Privilege::Select => 0,
        Privilege::Ownership => 1,
        Privilege::Monitor => 2,
        Privilege::Operate => 3,
    });
}

/// Decode a [`Privilege`].
pub fn get_privilege(r: &mut Reader<'_>) -> DtResult<Privilege> {
    Ok(match r.get_u8()? {
        0 => Privilege::Select,
        1 => Privilege::Ownership,
        2 => Privilege::Monitor,
        3 => Privilege::Operate,
        tag => return err(format!("unknown Privilege tag {tag:#04x}")),
    })
}
