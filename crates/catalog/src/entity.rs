//! Catalog entities.

use std::collections::{BTreeMap, BTreeSet};

use dt_common::{Duration, EntityId, Schema, Timestamp};

/// Target lag as stored in the catalog (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetLagSpec {
    /// Keep lag below this duration.
    Duration(Duration),
    /// Inherit the minimum target lag of downstream DTs.
    Downstream,
}

/// Refresh mode chosen for a DT (§3.3.2). `AUTO` is resolved to one of
/// these at creation time by the planner (incremental iff differentiable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Recompute the defining query from scratch every refresh.
    Full,
    /// Compute and apply changes since the last refresh.
    Incremental,
}

/// Lifecycle state of a DT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtState {
    /// Created, awaiting initialization.
    Initializing,
    /// Initialized; the scheduler refreshes it to meet its target lag.
    Active,
    /// Suspended by the user.
    Suspended,
    /// Suspended automatically after too many consecutive errors (§3.3.3).
    SuspendedOnErrors,
}

/// Metadata of one dynamic table.
#[derive(Debug, Clone)]
pub struct DynamicTableMeta {
    /// Target lag.
    pub target_lag: TargetLagSpec,
    /// Virtual warehouse used for refreshes.
    pub warehouse: String,
    /// Refresh mode (resolved, never AUTO).
    pub refresh_mode: RefreshMode,
    /// The defining query, as SQL text. (The planner re-binds it on every
    /// refresh, which is how upstream DDL is detected, §5.4.)
    pub definition_sql: String,
    /// Upstream entities read by the defining query.
    pub upstream: Vec<EntityId>,
    /// Columns used from each upstream entity (for query-evolution checks:
    /// a change to an unused column does not force reinitialization, §5.4).
    pub used_columns: BTreeMap<EntityId, BTreeSet<String>>,
    /// Lifecycle state.
    pub state: DtState,
    /// Consecutive refresh failures (§3.3.3). Reset on success or RESUME.
    pub error_count: u32,
    /// Fingerprint of the bound definition (upstream entity ids + schema
    /// hash). A mismatch at refresh time triggers REINITIALIZE (§5.4).
    pub definition_fingerprint: u64,
}

/// What kind of entity a catalog entry is.
#[derive(Debug, Clone)]
pub enum EntityKind {
    /// A base table with a fixed schema.
    Table {
        /// The table schema.
        schema: Schema,
    },
    /// A view: a named query, expanded inline at bind time.
    View {
        /// The defining query text.
        sql: String,
    },
    /// A dynamic table.
    DynamicTable(Box<DynamicTableMeta>),
}

impl EntityKind {
    /// Short label for logs and the DDL log.
    pub fn label(&self) -> &'static str {
        match self {
            EntityKind::Table { .. } => "table",
            EntityKind::View { .. } => "view",
            EntityKind::DynamicTable(_) => "dynamic table",
        }
    }
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Stable id. Replacing an entity (`CREATE OR REPLACE`) mints a new id
    /// under the same name — that id change is what downstream DTs detect
    /// as a replaced dependency (§3.3.2 REINITIALIZE).
    pub id: EntityId,
    /// Name (unique among live entities).
    pub name: String,
    /// What it is.
    pub kind: EntityKind,
    /// Creation time.
    pub created_at: Timestamp,
    /// Drop time, if dropped (retained for UNDROP).
    pub dropped_at: Option<Timestamp>,
    /// Owning role.
    pub owner: String,
}

impl Entity {
    /// True when the entity is live (not dropped).
    pub fn is_live(&self) -> bool {
        self.dropped_at.is_none()
    }

    /// Dynamic-table metadata, if this is a DT.
    pub fn as_dt(&self) -> Option<&DynamicTableMeta> {
        match &self.kind {
            EntityKind::DynamicTable(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable dynamic-table metadata, if this is a DT.
    pub fn as_dt_mut(&mut self) -> Option<&mut DynamicTableMeta> {
        match &mut self.kind {
            EntityKind::DynamicTable(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{Column, DataType};

    #[test]
    fn entity_accessors() {
        let e = Entity {
            id: EntityId(1),
            name: "t".into(),
            kind: EntityKind::Table {
                schema: Schema::new(vec![Column::new("x", DataType::Int)]),
            },
            created_at: Timestamp::EPOCH,
            dropped_at: None,
            owner: "admin".into(),
        };
        assert!(e.is_live());
        assert!(e.as_dt().is_none());
        assert_eq!(e.kind.label(), "table");
    }
}
