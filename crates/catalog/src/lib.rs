//! The catalog: named entities, the DDL log, dependencies, and privileges.
//!
//! Reproduces the catalog-side machinery of §5.1 and §3.4:
//!
//! * **Entities** — base tables, views, and dynamic tables, resolvable by
//!   name, with drop/undrop (dropped entities are retained so `UNDROP`
//!   restores them and downstream DTs recover automatically, §3.4).
//! * **DDL log** — a timestamped, linearizable log of every DDL operation;
//!   the scheduler consumes it to maintain the DT dependency graph (§5.1).
//! * **Dependencies** — each DT records the entities and the specific
//!   columns it reads (§5.4), used for query-evolution detection and for
//!   rendering the refresh DAG.
//! * **Privileges** — role-based access control with the DT-specific
//!   MONITOR and OPERATE privileges (§3.4).

pub mod catalog;
pub mod ddl_log;
pub mod durable;
pub mod entity;
pub mod privilege;
pub mod snapshot;

pub use catalog::Catalog;
pub use ddl_log::{DdlEvent, DdlOp};
pub use entity::{DtState, DynamicTableMeta, Entity, EntityKind, RefreshMode, TargetLagSpec};
pub use privilege::{Privilege, PrivilegeSet, Role};
pub use snapshot::CatalogSnapshot;
