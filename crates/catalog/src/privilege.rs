//! Role-based access control.
//!
//! §3.4: "In addition to SELECT and OWNERSHIP, DTs also provide MONITOR and
//! OPERATE privileges, which allow grantees to see the current status of
//! and invoke refreshes on a DT, respectively."

use std::collections::{HashMap, HashSet};

use dt_common::{DtError, DtResult, EntityId};

/// A role name.
pub type Role = String;

/// Privileges grantable on entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Query the entity.
    Select,
    /// Full control; implies every other privilege.
    Ownership,
    /// See the status of a DT (lag, state, refresh history).
    Monitor,
    /// Invoke manual refreshes / suspend / resume on a DT.
    Operate,
}

impl Privilege {
    /// Human-readable name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            Privilege::Select => "SELECT",
            Privilege::Ownership => "OWNERSHIP",
            Privilege::Monitor => "MONITOR",
            Privilege::Operate => "OPERATE",
        }
    }
}

/// The grant table.
#[derive(Debug, Default, Clone)]
pub struct PrivilegeSet {
    grants: HashMap<(Role, EntityId), HashSet<Privilege>>,
}

impl PrivilegeSet {
    /// Empty grant table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grant `p` on `entity` to `role`.
    pub fn grant(&mut self, role: &str, entity: EntityId, p: Privilege) {
        self.grants
            .entry((role.to_string(), entity))
            .or_default()
            .insert(p);
    }

    /// Revoke `p` on `entity` from `role`.
    pub fn revoke(&mut self, role: &str, entity: EntityId, p: Privilege) {
        if let Some(set) = self.grants.get_mut(&(role.to_string(), entity)) {
            set.remove(&p);
        }
    }

    /// True when `role` holds `p` on `entity` (OWNERSHIP implies all).
    pub fn has(&self, role: &str, entity: EntityId, p: Privilege) -> bool {
        self.grants
            .get(&(role.to_string(), entity))
            .map(|set| set.contains(&p) || set.contains(&Privilege::Ownership))
            .unwrap_or(false)
    }

    /// Dump every grant, deterministically ordered (for checkpoints).
    pub fn dump(&self) -> Vec<(Role, EntityId, Vec<Privilege>)> {
        let mut out: Vec<(Role, EntityId, Vec<Privilege>)> = self
            .grants
            .iter()
            .map(|((role, entity), set)| {
                let mut privs: Vec<Privilege> = set.iter().copied().collect();
                privs.sort_by_key(|p| p.name());
                (role.clone(), *entity, privs)
            })
            .collect();
        out.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        out
    }

    /// Rebuild a grant table from a [`PrivilegeSet::dump`].
    pub fn restore(grants: Vec<(Role, EntityId, Vec<Privilege>)>) -> Self {
        let mut ps = PrivilegeSet::new();
        for (role, entity, privs) in grants {
            for p in privs {
                ps.grant(&role, entity, p);
            }
        }
        ps
    }

    /// Check access, erroring with the paper's access-denied shape.
    pub fn check(&self, role: &str, entity: EntityId, entity_name: &str, p: Privilege) -> DtResult<()> {
        if self.has(role, entity, p) {
            Ok(())
        } else {
            Err(DtError::AccessDenied {
                privilege: p.name().to_string(),
                entity: entity_name.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_and_ownership_implication() {
        let mut ps = PrivilegeSet::new();
        let e = EntityId(1);
        ps.grant("analyst", e, Privilege::Select);
        assert!(ps.has("analyst", e, Privilege::Select));
        assert!(!ps.has("analyst", e, Privilege::Operate));
        ps.grant("admin", e, Privilege::Ownership);
        assert!(ps.has("admin", e, Privilege::Operate));
        assert!(ps.has("admin", e, Privilege::Monitor));
    }

    #[test]
    fn revoke_removes_access() {
        let mut ps = PrivilegeSet::new();
        let e = EntityId(1);
        ps.grant("r", e, Privilege::Monitor);
        ps.revoke("r", e, Privilege::Monitor);
        assert!(!ps.has("r", e, Privilege::Monitor));
        let err = ps.check("r", e, "my_dt", Privilege::Monitor).unwrap_err();
        assert!(matches!(err, DtError::AccessDenied { .. }));
    }
}
