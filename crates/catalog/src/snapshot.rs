//! Immutable catalog snapshots for lock-free reads.
//!
//! The engine's MVCC read path pins a [`CatalogSnapshot`] while it briefly
//! holds the engine lock, then binds, plans, and executes with no lock at
//! all. Snapshots are immutable and `Arc`-shared: the catalog rebuilds one
//! lazily after a mutation and then hands the same `Arc` to every reader
//! until the next mutation, so steady-state capture is one `Arc` clone.

use std::collections::HashMap;

use dt_common::{DtError, DtResult, EntityId};

use crate::entity::{Entity, EntityKind};
use crate::privilege::{Privilege, PrivilegeSet};

/// A frozen, point-in-time view of the catalog: entities (live and
/// dropped), name resolution, the privilege table, and the generation
/// counters the snapshot was taken at. All methods take `&self` and touch
/// no lock.
#[derive(Debug)]
pub struct CatalogSnapshot {
    /// The catalog mutation generation this snapshot reflects.
    generation: u64,
    /// The binding-relevant DDL generation (prepared statements rebind
    /// when this moves).
    binding_generation: u64,
    entities: HashMap<EntityId, Entity>,
    by_name: HashMap<String, EntityId>,
    privileges: PrivilegeSet,
    /// Live DTs, in id order (precomputed for SHOW DYNAMIC TABLES).
    dynamic_tables: Vec<EntityId>,
}

impl CatalogSnapshot {
    pub(crate) fn new(
        generation: u64,
        binding_generation: u64,
        entities: HashMap<EntityId, Entity>,
        by_name: HashMap<String, EntityId>,
        privileges: PrivilegeSet,
    ) -> Self {
        let mut dynamic_tables: Vec<EntityId> = entities
            .values()
            .filter(|e| e.is_live() && matches!(e.kind, EntityKind::DynamicTable(_)))
            .map(|e| e.id)
            .collect();
        dynamic_tables.sort();
        CatalogSnapshot {
            generation,
            binding_generation,
            entities,
            by_name,
            privileges,
            dynamic_tables,
        }
    }

    /// The catalog mutation generation this snapshot was captured at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The binding-relevant DDL generation at capture (see
    /// [`crate::ddl_log::DdlLog::binding_generation`]).
    pub fn binding_generation(&self) -> u64 {
        self.binding_generation
    }

    /// Resolve a live entity by name.
    pub fn resolve(&self, name: &str) -> DtResult<&Entity> {
        let lname = name.to_ascii_lowercase();
        self.by_name
            .get(&lname)
            .and_then(|id| self.entities.get(id))
            .ok_or_else(|| DtError::Catalog(format!("unknown entity '{lname}'")))
    }

    /// Get any entity (live or dropped) by id.
    pub fn get(&self, id: EntityId) -> DtResult<&Entity> {
        self.entities
            .get(&id)
            .ok_or_else(|| DtError::Catalog(format!("unknown entity {id}")))
    }

    /// True when `id` names a dynamic table in this snapshot.
    pub fn is_dt(&self, id: EntityId) -> bool {
        self.entities
            .get(&id)
            .map(|e| e.as_dt().is_some())
            .unwrap_or(false)
    }

    /// Live DTs at capture time, in id order.
    pub fn dynamic_tables(&self) -> &[EntityId] {
        &self.dynamic_tables
    }

    /// Direct upstream dependencies of a DT.
    pub fn upstream_of(&self, id: EntityId) -> &[EntityId] {
        self.entities
            .get(&id)
            .and_then(|e| e.as_dt())
            .map(|m| m.upstream.as_slice())
            .unwrap_or(&[])
    }

    /// The privilege table as of capture.
    pub fn privileges(&self) -> &PrivilegeSet {
        &self.privileges
    }

    /// Check that `role` held `privilege` on the live entity `name` as of
    /// capture.
    pub fn check_privilege(
        &self,
        role: &str,
        name: &str,
        privilege: Privilege,
    ) -> DtResult<()> {
        let e = self.resolve(name)?;
        self.privileges.check(role, e.id, &e.name, privilege)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::entity::DtState;
    use dt_common::{Column, DataType, Schema, Timestamp};
    use std::sync::Arc;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn schema() -> Schema {
        Schema::new(vec![Column::new("x", DataType::Int)])
    }

    #[test]
    fn snapshot_is_cached_until_a_mutation() {
        let mut c = Catalog::new();
        c.create_table("t", schema(), ts(1), "admin", false).unwrap();
        let a = c.snapshot();
        let b = c.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "unchanged catalog must reuse one Arc");
        c.drop_entity("t", ts(2)).unwrap();
        let d = c.snapshot();
        assert!(!Arc::ptr_eq(&a, &d));
        assert!(d.generation() > a.generation());
    }

    #[test]
    fn snapshot_is_immune_to_later_ddl() {
        let mut c = Catalog::new();
        let id = c.create_table("t", schema(), ts(1), "admin", false).unwrap();
        let snap = c.snapshot();
        c.drop_entity("t", ts(2)).unwrap();
        // The live catalog no longer resolves `t`, the snapshot still does.
        assert!(c.resolve("t").is_err());
        assert_eq!(snap.resolve("t").unwrap().id, id);
        assert!(snap.get(id).unwrap().is_live());
    }

    #[test]
    fn state_and_grant_mutations_invalidate_the_cache() {
        let mut c = Catalog::new();
        c.create_table("base", schema(), ts(1), "admin", false).unwrap();
        let meta = crate::entity::DynamicTableMeta {
            target_lag: crate::entity::TargetLagSpec::Downstream,
            warehouse: "wh".into(),
            refresh_mode: crate::entity::RefreshMode::Full,
            definition_sql: "select * from base".into(),
            upstream: vec![],
            used_columns: Default::default(),
            state: DtState::Initializing,
            error_count: 0,
            definition_fingerprint: 0,
        };
        let dt = c
            .create_dynamic_table("d", meta, ts(2), "admin", false)
            .unwrap();
        let before = c.snapshot();
        // Suspend/Resume and grants don't move the *binding* generation,
        // but they must still surface in fresh snapshots.
        c.set_dt_state(dt, DtState::Active, ts(3)).unwrap();
        let after_state = c.snapshot();
        assert!(!Arc::ptr_eq(&before, &after_state));
        assert_eq!(
            after_state.get(dt).unwrap().as_dt().unwrap().state,
            DtState::Active
        );
        assert_eq!(
            after_state.binding_generation(),
            before.binding_generation()
        );

        assert!(after_state.check_privilege("analyst", "d", Privilege::Operate).is_err());
        c.grant_on("analyst", "d", Privilege::Operate).unwrap();
        let after_grant = c.snapshot();
        assert!(after_grant.check_privilege("analyst", "d", Privilege::Operate).is_ok());
        // The pre-grant snapshot still answers from its frozen state.
        assert!(after_state.check_privilege("analyst", "d", Privilege::Operate).is_err());
    }

    #[test]
    fn snapshot_precomputes_live_dts() {
        let mut c = Catalog::new();
        c.create_table("base", schema(), ts(1), "admin", false).unwrap();
        assert!(c.snapshot().dynamic_tables().is_empty());
        assert!(!c.snapshot().is_dt(EntityId(99)));
    }
}
