//! Blocking client for the dt wire protocol.
//!
//! [`Client`] speaks the framed protocol defined in `dt-wire` over a
//! plain `std::net::TcpStream` — no async runtime, no engine
//! dependency. It is deliberately thin: one in-flight request at a
//! time, one response per request, errors surfaced as typed
//! [`ClientError`]s so callers can distinguish *retry the transaction*
//! ([`ClientError::is_conflict`]) from *retry the connection*
//! ([`ClientError::is_busy`]) from *give up*.
//!
//! ```no_run
//! use dt_client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:4443")?;
//! client.execute("CREATE TABLE t (x INT)")?;
//! client.execute("INSERT INTO t VALUES (1), (2)")?;
//! let rows = client.query("SELECT x FROM t ORDER BY x")?;
//! assert_eq!(rows.len(), 2);
//! # Ok::<(), dt_client::ClientError>(())
//! ```
//!
//! Transactions work exactly like local sessions — `begin`, do work,
//! `commit`, and on [`ClientError::is_conflict`] roll back and retry.
//! [`Client::run_txn`] packages that loop.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

use dt_common::{DtError, Timestamp, Value};
use dt_wire::{
    read_frame, write_frame, FrameError, Hello, RemoteRows, Request, Response, ServerStats,
    WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// The engine reported an error executing the request. Inspect the
    /// inner [`DtError`] — [`ClientError::is_conflict`] is the common
    /// dispatch for optimistic retry loops.
    Engine(DtError),
    /// The server is at its connection limit; back off and reconnect.
    Busy {
        /// Connections active when the server turned this one away.
        active: u32,
        /// The server's connection limit.
        limit: u32,
    },
    /// The server is shutting down; reconnect later.
    ShuttingDown,
    /// One side violated the wire protocol (bad frame, bad version,
    /// unexpected response kind). The connection is not reusable.
    Protocol(String),
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The server closed the connection where a response was expected.
    Closed,
}

impl ClientError {
    /// True when the failure is an optimistic-concurrency conflict: roll
    /// back and retry the transaction.
    pub fn is_conflict(&self) -> bool {
        matches!(self, ClientError::Engine(e) if e.is_conflict())
    }

    /// True when the server refused the connection for capacity reasons.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy { .. })
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Engine(e) => write!(f, "engine error: {e}"),
            ClientError::Busy { active, limit } => {
                write!(f, "server busy: {active}/{limit} connections")
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Closed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::TooLarge { len, max } => {
                ClientError::Protocol(format!("frame length {len} exceeds cap {max}"))
            }
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Engine(e) => ClientError::Engine(e),
            WireError::ServerBusy { active, limit } => ClientError::Busy { active, limit },
            WireError::Protocol(msg) => ClientError::Protocol(msg),
            WireError::ShuttingDown => ClientError::ShuttingDown,
        }
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = Result<T, ClientError>;

/// Outcome of a statement that is not a row-returning query — mirrors
/// the engine's `ExecResult` across the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The statement returned rows.
    Rows(RemoteRows),
    /// The statement succeeded with a status message (DDL, BEGIN, ...).
    Ok(String),
    /// The statement affected this many rows (DML).
    Count(u64),
}

impl Outcome {
    /// Affected-row count, or 0 for non-DML outcomes.
    pub fn count(&self) -> u64 {
        match self {
            Outcome::Count(n) => *n,
            _ => 0,
        }
    }
}

/// A statement prepared on the server, addressable by id for the
/// lifetime of the connection that prepared it.
#[derive(Debug, Clone, Copy)]
pub struct Prepared {
    id: u64,
    params: u16,
}

impl Prepared {
    /// The server-assigned statement id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of `?` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.params as usize
    }
}

/// A blocking connection to a dt server: one request in flight at a
/// time, typed responses, typed errors.
pub struct Client {
    stream: TcpStream,
    max_frame_len: u32,
}

impl Client {
    /// Connect and perform the protocol handshake. Fails with
    /// [`ClientError::Busy`] when the server is at its connection limit
    /// and [`ClientError::Protocol`] on a version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Client::connect_with_frame_cap(addr, DEFAULT_MAX_FRAME_LEN)
    }

    /// [`Client::connect`] with an explicit cap on response frame size.
    pub fn connect_with_frame_cap(
        addr: impl ToSocketAddrs,
        max_frame_len: u32,
    ) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            max_frame_len,
        };
        let hello = Hello {
            version: PROTOCOL_VERSION,
        };
        // If the server already turned us away (e.g. ServerBusy), our
        // hello write can fail with a broken pipe while its answer sits
        // in the receive buffer — so read first, report the write
        // failure only when there was no answer to prefer.
        let wrote = write_frame(&mut client.stream, &hello.encode())
            .and_then(|()| client.stream.flush());
        let response = match client.read_response() {
            Ok(response) => response,
            Err(read_err) => {
                wrote?;
                return Err(read_err);
            }
        };
        match response {
            Response::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::Hello { version } => Err(ClientError::Protocol(format!(
                "server speaks protocol version {version}, client speaks {PROTOCOL_VERSION}"
            ))),
            Response::Err(e) => Err(e.into()),
            other => Err(ClientError::Protocol(format!(
                "unexpected handshake response: {other:?}"
            ))),
        }
    }

    fn read_response(&mut self) -> ClientResult<Response> {
        let payload =
            read_frame(&mut self.stream, self.max_frame_len)?.ok_or(ClientError::Closed)?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Send one request, read one response. `Response::Err` frames are
    /// converted to typed [`ClientError`]s here, so every public method
    /// only ever sees success-shaped responses.
    fn round_trip(&mut self, request: &Request) -> ClientResult<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        self.stream.flush()?;
        match self.read_response()? {
            Response::Err(e) => Err(e.into()),
            response => Ok(response),
        }
    }

    fn expect_outcome(response: Response) -> ClientResult<Outcome> {
        match response {
            Response::Rows(rows) => Ok(Outcome::Rows(rows)),
            Response::Ok(msg) => Ok(Outcome::Ok(msg)),
            Response::Count(n) => Ok(Outcome::Count(n)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    fn expect_rows(response: Response) -> ClientResult<RemoteRows> {
        match Self::expect_outcome(response)? {
            Outcome::Rows(rows) => Ok(rows),
            other => Err(ClientError::Protocol(format!(
                "statement did not return rows: {other:?}"
            ))),
        }
    }

    /// Run a row-returning statement and collect its rows.
    pub fn query(&mut self, sql: &str) -> ClientResult<RemoteRows> {
        let response = self.round_trip(&Request::Query { sql: sql.into() })?;
        Self::expect_rows(response)
    }

    /// Run a query against the database as of `at` (time travel).
    pub fn query_at(&mut self, sql: &str, at: Timestamp) -> ClientResult<RemoteRows> {
        let response = self.round_trip(&Request::QueryAt {
            sql: sql.into(),
            at,
        })?;
        Self::expect_rows(response)
    }

    /// Run any statement; DDL and DML return their status / row count.
    pub fn execute(&mut self, sql: &str) -> ClientResult<Outcome> {
        let response = self.round_trip(&Request::Query { sql: sql.into() })?;
        Self::expect_outcome(response)
    }

    /// Prepare a statement with `?` placeholders on the server.
    pub fn prepare(&mut self, sql: &str) -> ClientResult<Prepared> {
        match self.round_trip(&Request::Prepare { sql: sql.into() })? {
            Response::Prepared { id, params } => Ok(Prepared { id, params }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to prepare: {other:?}"
            ))),
        }
    }

    /// Execute a prepared statement with bound parameter values.
    pub fn execute_prepared(&mut self, stmt: Prepared, params: &[Value]) -> ClientResult<Outcome> {
        let response = self.round_trip(&Request::ExecutePrepared {
            id: stmt.id,
            params: params.to_vec(),
        })?;
        Self::expect_outcome(response)
    }

    /// Execute a prepared query and collect its rows.
    pub fn query_prepared(
        &mut self,
        stmt: Prepared,
        params: &[Value],
    ) -> ClientResult<RemoteRows> {
        let response = self.round_trip(&Request::ExecutePrepared {
            id: stmt.id,
            params: params.to_vec(),
        })?;
        Self::expect_rows(response)
    }

    /// Open an explicit transaction on this connection's session.
    pub fn begin(&mut self) -> ClientResult<()> {
        let response = self.round_trip(&Request::Begin)?;
        Self::expect_outcome(response).map(|_| ())
    }

    /// Commit the open transaction. A [`ClientError::is_conflict`] error
    /// means first-committer-wins validation failed: roll back and retry.
    pub fn commit(&mut self) -> ClientResult<()> {
        let response = self.round_trip(&Request::Commit)?;
        Self::expect_outcome(response).map(|_| ())
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> ClientResult<()> {
        let response = self.round_trip(&Request::Rollback)?;
        Self::expect_outcome(response).map(|_| ())
    }

    /// Run `body` inside a transaction, retrying the whole transaction on
    /// commit/statement conflicts up to `max_attempts` times — the remote
    /// mirror of the engine's optimistic-retry idiom.
    ///
    /// `body` gets the client back and must stay on this connection. A
    /// non-conflict error aborts immediately (after a best-effort
    /// rollback). Returns the body's value from the attempt that
    /// committed.
    pub fn run_txn<T>(
        &mut self,
        max_attempts: usize,
        mut body: impl FnMut(&mut Client) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let mut last_conflict: Option<ClientError> = None;
        for _ in 0..max_attempts {
            self.begin()?;
            match body(self).and_then(|value| self.commit().map(|_| value)) {
                Ok(value) => return Ok(value),
                Err(e) if e.is_conflict() => {
                    // The engine aborts the conflicting txn itself, but a
                    // mid-body conflict may leave the session txn open.
                    self.rollback().ok();
                    last_conflict = Some(e);
                }
                Err(e) => {
                    self.rollback().ok();
                    return Err(e);
                }
            }
        }
        Err(last_conflict.unwrap_or_else(|| {
            ClientError::Protocol("run_txn called with max_attempts = 0".into())
        }))
    }

    /// Fetch the server's telemetry snapshot (connections, requests,
    /// commit pipeline, zone-map pruning).
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Politely end the session: the server answers `Goodbye`, rolls back
    /// any open transaction, and closes the connection.
    pub fn close(mut self) -> ClientResult<()> {
        match self.round_trip(&Request::Close)? {
            Response::Goodbye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to close: {other:?}"
            ))),
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}
