//! Columnar batches: column vectors, selection bitmaps, zone maps, and
//! pushable predicate sets.
//!
//! These types are the vocabulary of the vectorized read path. They live in
//! `dt-common` because three crates that cannot depend on each other all
//! speak them: `dt-storage` shreds partitions into [`ColumnVec`]s and keeps
//! a [`ZoneMap`] per partition column, `dt-plan` extracts [`PredicateSet`]s
//! from filters, and `dt-exec` runs its operators over [`Batch`]es.
//!
//! Two comparison orders exist in the engine: `Value`'s total `Ord` (exact,
//! used for sorting/grouping) and `Value::sql_cmp` (numeric pairs widen to
//! f64 — what predicates observe). The two can disagree for integers beyond
//! 2^53, so zone-map *construction* uses the exact order while pruning
//! *checks* use `sql_cmp`: an exact minimum is also a minimum under the sql
//! projection (i64 → f64 is monotone), which keeps pruning conservative.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::row::Row;
use crate::value::Value;

/// One column of a batch or partition: a typed vector with an optional
/// validity mask, falling back to a generic `Value` vector for mixed or
/// non-numeric columns. The typed variants exist so scans of int/float
/// columns move machine words, not enum-tagged `Value`s.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// All values are `Int` (or NULL where the validity bit is false).
    Int {
        /// The payloads; dead slots (NULLs) hold 0.
        data: Vec<i64>,
        /// `None` means every slot is valid; otherwise `validity[i]` is
        /// true iff slot `i` is non-NULL.
        validity: Option<Vec<bool>>,
    },
    /// All values are `Float` (or NULL where the validity bit is false).
    Float {
        /// The payloads; dead slots (NULLs) hold 0.0.
        data: Vec<f64>,
        /// As for [`ColumnVec::Int`].
        validity: Option<Vec<bool>>,
    },
    /// Anything else: strings, bools, timestamps, mixed types.
    Generic(Vec<Value>),
}

impl ColumnVec {
    /// Build from values, choosing the typed representation when the
    /// column is homogeneously Int or homogeneously Float (NULLs allowed).
    /// Mixed Int/Float columns stay generic so values round-trip exactly.
    pub fn from_values(values: Vec<Value>) -> ColumnVec {
        let mut all_int = true;
        let mut all_float = true;
        let mut any_null = false;
        let mut any_value = false;
        for v in &values {
            match v {
                Value::Null => any_null = true,
                Value::Int(_) => {
                    any_value = true;
                    all_float = false;
                }
                Value::Float(_) => {
                    any_value = true;
                    all_int = false;
                }
                _ => {
                    all_int = false;
                    all_float = false;
                }
            }
            if !all_int && !all_float {
                break;
            }
        }
        if !any_value || (!all_int && !all_float) {
            return ColumnVec::Generic(values);
        }
        let validity = any_null.then(|| values.iter().map(|v| !v.is_null()).collect());
        if all_int {
            let data = values
                .iter()
                .map(|v| match v {
                    Value::Int(i) => *i,
                    _ => 0,
                })
                .collect();
            ColumnVec::Int { data, validity }
        } else {
            let data = values
                .iter()
                .map(|v| match v {
                    Value::Float(f) => *f,
                    _ => 0.0,
                })
                .collect();
            ColumnVec::Float { data, validity }
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { data, .. } => data.len(),
            ColumnVec::Float { data, .. } => data.len(),
            ColumnVec::Generic(v) => v.len(),
        }
    }

    /// True when the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff slot `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int { validity, .. } | ColumnVec::Float { validity, .. } => {
                validity.as_ref().is_some_and(|v| !v[i])
            }
            ColumnVec::Generic(v) => v[i].is_null(),
        }
    }

    /// Materialize slot `i` as a `Value`.
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { data, validity } => match validity {
                Some(v) if !v[i] => Value::Null,
                _ => Value::Int(data[i]),
            },
            ColumnVec::Float { data, validity } => match validity {
                Some(v) if !v[i] => Value::Null,
                _ => Value::Float(data[i]),
            },
            ColumnVec::Generic(v) => v[i].clone(),
        }
    }

    /// Gather the given slots into a new column (preserves typing).
    pub fn gather(&self, indices: &[usize]) -> ColumnVec {
        match self {
            ColumnVec::Int { data, validity } => ColumnVec::Int {
                data: indices.iter().map(|&i| data[i]).collect(),
                validity: validity
                    .as_ref()
                    .map(|v| indices.iter().map(|&i| v[i]).collect()),
            },
            ColumnVec::Float { data, validity } => ColumnVec::Float {
                data: indices.iter().map(|&i| data[i]).collect(),
                validity: validity
                    .as_ref()
                    .map(|v| indices.iter().map(|&i| v[i]).collect()),
            },
            ColumnVec::Generic(v) => {
                ColumnVec::Generic(indices.iter().map(|&i| v[i].clone()).collect())
            }
        }
    }

    /// Compute this column's [`ZoneMap`] (min/max over non-NULL values
    /// under the exact total order, plus null accounting).
    pub fn zone_map(&self) -> ZoneMap {
        let mut null_count = 0usize;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        match self {
            ColumnVec::Int { data, validity } => {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                let mut any = false;
                for (i, &x) in data.iter().enumerate() {
                    if validity.as_ref().is_some_and(|v| !v[i]) {
                        null_count += 1;
                        continue;
                    }
                    any = true;
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                if any {
                    min = Some(Value::Int(lo));
                    max = Some(Value::Int(hi));
                }
            }
            ColumnVec::Float { data, validity } => {
                let mut best: Option<(f64, f64)> = None;
                for (i, &x) in data.iter().enumerate() {
                    if validity.as_ref().is_some_and(|v| !v[i]) {
                        null_count += 1;
                        continue;
                    }
                    best = Some(match best {
                        None => (x, x),
                        Some((lo, hi)) => (
                            if x.total_cmp(&lo) == Ordering::Less { x } else { lo },
                            if x.total_cmp(&hi) == Ordering::Greater { x } else { hi },
                        ),
                    });
                }
                if let Some((lo, hi)) = best {
                    min = Some(Value::Float(lo));
                    max = Some(Value::Float(hi));
                }
            }
            ColumnVec::Generic(values) => {
                for v in values {
                    if v.is_null() {
                        null_count += 1;
                        continue;
                    }
                    match &mut min {
                        None => min = Some(v.clone()),
                        Some(m) if v < m => *m = v.clone(),
                        _ => {}
                    }
                    match &mut max {
                        None => max = Some(v.clone()),
                        Some(m) if v > m => *m = v.clone(),
                        _ => {}
                    }
                }
            }
        }
        ZoneMap {
            min,
            max,
            null_count,
            row_count: self.len(),
        }
    }
}

/// Per-partition per-column min/max statistics, computed once at commit
/// time. `min`/`max` are `None` when the column holds no non-NULL value
/// (empty or all-NULL partition) — in that case no comparison predicate can
/// ever match, so the partition prunes for free.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Smallest non-NULL value (exact total order), if any.
    pub min: Option<Value>,
    /// Largest non-NULL value (exact total order), if any.
    pub max: Option<Value>,
    /// Number of NULL slots.
    pub null_count: usize,
    /// Total slots covered.
    pub row_count: usize,
}

impl ZoneMap {
    /// Conservative check: could *any* value covered by this zone map
    /// satisfy `v OP lit`? `false` means the partition can be skipped
    /// without scanning it. Comparisons are three-valued: NULL never
    /// satisfies one, so NULLs are invisible here, and a NULL literal
    /// matches nothing. All checks use `sql_cmp` to agree with what the
    /// predicate evaluation itself would observe.
    pub fn may_match(&self, op: CmpOp, lit: &Value) -> bool {
        if lit.is_null() {
            return false;
        }
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // No non-NULL values: no comparison can ever be true.
            return false;
        };
        // sql_cmp on non-null values always returns Some.
        let min_lit = min.sql_cmp(lit).expect("non-null cmp");
        let max_lit = max.sql_cmp(lit).expect("non-null cmp");
        match op {
            CmpOp::Lt => min_lit == Ordering::Less,
            CmpOp::LtEq => min_lit != Ordering::Greater,
            CmpOp::Gt => max_lit == Ordering::Greater,
            CmpOp::GtEq => max_lit != Ordering::Less,
            CmpOp::Eq => min_lit != Ordering::Greater && max_lit != Ordering::Less,
            // Prune only when every value equals the literal.
            CmpOp::NotEq => !(min_lit == Ordering::Equal && max_lit == Ordering::Equal),
        }
    }
}

/// Comparison operators a scan can apply (the pushable subset of `BinOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// The operator with its operands swapped (`lit OP col` → `col OP' lit`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }

    /// Does an operand ordering of `o` (left vs right) satisfy the
    /// comparison? (`Lt` accepts `Less`, `LtEq` accepts `Less|Equal`, …)
    pub fn accepts(self, o: Ordering) -> bool {
        match self {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::NotEq => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::LtEq => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::GtEq => o != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        })
    }
}

/// One pushable predicate: `column OP literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Input column index.
    pub column: usize,
    /// The comparison.
    pub op: CmpOp,
    /// The constant side.
    pub literal: Value,
}

impl ColumnPredicate {
    /// Does `v` satisfy the predicate? Three-valued logic collapsed for
    /// filtering: NULL (either side) is "not true".
    pub fn matches(&self, v: &Value) -> bool {
        match v.sql_cmp(&self.literal) {
            None => false,
            Some(o) => self.op.accepts(o),
        }
    }

    /// AND this predicate into `keep` over all slots of `col` (vectorized;
    /// typed fast paths for int/float columns with numeric literals). The
    /// predicate's `column` index is ignored — `col` is the column.
    pub fn and_mask(&self, col: &ColumnVec, keep: &mut [bool]) {
        self.and_into(col, keep);
    }

    fn and_into(&self, col: &ColumnVec, keep: &mut [bool]) {
        match (col, &self.literal) {
            (ColumnVec::Int { data, validity }, Value::Int(l)) => {
                let lit = *l as f64;
                for (i, k) in keep.iter_mut().enumerate() {
                    if !*k {
                        continue;
                    }
                    if validity.as_ref().is_some_and(|v| !v[i]) {
                        *k = false;
                        continue;
                    }
                    // sql_cmp widens Int/Int to f64; mirror it exactly.
                    *k = self.op.accepts((data[i] as f64).total_cmp(&lit));
                }
            }
            (ColumnVec::Int { data, validity }, Value::Float(l)) => {
                for (i, k) in keep.iter_mut().enumerate() {
                    if !*k {
                        continue;
                    }
                    if validity.as_ref().is_some_and(|v| !v[i]) {
                        *k = false;
                        continue;
                    }
                    *k = self.op.accepts((data[i] as f64).total_cmp(l));
                }
            }
            (ColumnVec::Float { data, validity }, Value::Int(l)) => {
                let lit = *l as f64;
                for (i, k) in keep.iter_mut().enumerate() {
                    if !*k {
                        continue;
                    }
                    if validity.as_ref().is_some_and(|v| !v[i]) {
                        *k = false;
                        continue;
                    }
                    *k = self.op.accepts(data[i].total_cmp(&lit));
                }
            }
            (ColumnVec::Float { data, validity }, Value::Float(l)) => {
                for (i, k) in keep.iter_mut().enumerate() {
                    if !*k {
                        continue;
                    }
                    if validity.as_ref().is_some_and(|v| !v[i]) {
                        *k = false;
                        continue;
                    }
                    *k = self.op.accepts(data[i].total_cmp(l));
                }
            }
            _ => {
                for (i, k) in keep.iter_mut().enumerate() {
                    if *k {
                        *k = self.matches(&col.get(i));
                    }
                }
            }
        }
    }
}

impl fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {}", self.column, self.op, self.literal)
    }
}

/// A conjunction of pushable predicates, attached to a scan. Storage
/// evaluates it vectorized (and prunes whole partitions via zone maps);
/// providers without columnar storage apply it row-at-a-time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PredicateSet {
    /// The conjuncts. Empty means "keep everything".
    pub preds: Vec<ColumnPredicate>,
}

impl PredicateSet {
    /// An empty (always-true) set.
    pub fn new(preds: Vec<ColumnPredicate>) -> PredicateSet {
        PredicateSet { preds }
    }

    /// True when there is nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Row-at-a-time evaluation (fallback providers, residual checks).
    pub fn matches_row(&self, row: &Row) -> bool {
        self.preds.iter().all(|p| {
            row.values()
                .get(p.column)
                .is_some_and(|v| p.matches(v))
        })
    }

    /// Shift every column index by `offset` (DT storage carries a leading
    /// `$ROW_ID` column the plan never sees).
    pub fn shift_columns(&self, offset: usize) -> PredicateSet {
        PredicateSet {
            preds: self
                .preds
                .iter()
                .map(|p| ColumnPredicate {
                    column: p.column + offset,
                    op: p.op,
                    literal: p.literal.clone(),
                })
                .collect(),
        }
    }

    /// Can a partition with these per-column zone maps be skipped entirely?
    /// Conservative: returns true only when some conjunct provably matches
    /// no value in the partition.
    pub fn prunes(&self, zone_maps: &[ZoneMap]) -> bool {
        self.preds.iter().any(|p| {
            zone_maps
                .get(p.column)
                .is_some_and(|z| !z.may_match(p.op, &p.literal))
        })
    }

    /// Narrow `batch`'s selection to rows satisfying every conjunct.
    pub fn apply(&self, batch: &mut Batch) {
        if self.preds.is_empty() || batch.is_empty() {
            return;
        }
        let mut keep = match batch.sel.take() {
            Some(sel) => sel,
            None => vec![true; batch.len()],
        };
        for p in &self.preds {
            match batch.columns.get(p.column) {
                Some(col) => p.and_into(col, &mut keep),
                // Out-of-range column matches nothing (mirrors
                // `matches_row` on a short row).
                None => keep.iter_mut().for_each(|k| *k = false),
            }
        }
        batch.sel = Some(keep);
    }
}

impl fmt::Display for PredicateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// A batch of rows in columnar form: shared column vectors plus a
/// selection bitmap. The bitmap lets filters "delete" rows without
/// copying column data; operators that need dense output compact first.
/// Columns are `Arc`'d so a batch sliced straight out of an immutable
/// storage partition is zero-copy.
#[derive(Debug, Clone)]
pub struct Batch {
    len: usize,
    columns: Vec<Arc<ColumnVec>>,
    /// `None` = all rows live; otherwise `sel[i]` is true iff row `i` is
    /// still in the result.
    sel: Option<Vec<bool>>,
}

impl Batch {
    /// Build from shared columns (all must have `len` slots).
    pub fn new(columns: Vec<Arc<ColumnVec>>, len: usize) -> Batch {
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Batch {
            len,
            columns,
            sel: None,
        }
    }

    /// A batch of `len` zero-column rows (FROM-less SELECT).
    pub fn zero_width(len: usize) -> Batch {
        Batch {
            len,
            columns: Vec::new(),
            sel: None,
        }
    }

    /// Shred rows (all of the same arity) into a columnar batch.
    pub fn from_rows(arity: usize, rows: &[Row]) -> Batch {
        let mut cols = Vec::with_capacity(arity);
        for c in 0..arity {
            let values = rows
                .iter()
                .map(|r| r.values().get(c).cloned().unwrap_or(Value::Null))
                .collect();
            cols.push(Arc::new(ColumnVec::from_values(values)));
        }
        Batch {
            len: rows.len(),
            columns: cols,
            sel: None,
        }
    }

    /// Number of physical slots (including deselected rows).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has no physical slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column vectors.
    pub fn columns(&self) -> &[Arc<ColumnVec>] {
        &self.columns
    }

    /// Column `c`.
    pub fn column(&self, c: usize) -> &Arc<ColumnVec> {
        &self.columns[c]
    }

    /// The selection bitmap (`None` = everything selected).
    pub fn selection(&self) -> Option<&[bool]> {
        self.sel.as_deref()
    }

    /// Replace the selection bitmap wholesale.
    pub fn set_selection(&mut self, sel: Option<Vec<bool>>) {
        debug_assert!(sel.as_ref().is_none_or(|s| s.len() == self.len));
        self.sel = sel;
    }

    /// True iff physical row `i` is selected.
    pub fn is_selected(&self, i: usize) -> bool {
        self.sel.as_ref().is_none_or(|s| s[i])
    }

    /// Number of selected rows.
    pub fn live_count(&self) -> usize {
        match &self.sel {
            None => self.len,
            Some(s) => s.iter().filter(|k| **k).count(),
        }
    }

    /// Physical indices of selected rows, in order.
    pub fn live_indices(&self) -> Vec<usize> {
        match &self.sel {
            None => (0..self.len).collect(),
            Some(s) => s
                .iter()
                .enumerate()
                .filter_map(|(i, k)| k.then_some(i))
                .collect(),
        }
    }

    /// Intersect the selection with `keep` (physical indexing).
    pub fn retain(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        match &mut self.sel {
            None => self.sel = Some(keep.to_vec()),
            Some(sel) => {
                for (s, k) in sel.iter_mut().zip(keep) {
                    *s = *s && *k;
                }
            }
        }
    }

    /// Materialize physical row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Materialize the selected rows, in order.
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.live_count());
        for i in 0..self.len {
            if self.is_selected(i) {
                out.push(self.row(i));
            }
        }
        out
    }

    /// Densify: gather selected rows into fresh columns with no selection
    /// bitmap. A no-op (cheap Arc clones) when everything is selected.
    pub fn compact(&self) -> Batch {
        if self.sel.is_none() {
            return self.clone();
        }
        let idx = self.live_indices();
        Batch {
            len: idx.len(),
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.gather(&idx)))
                .collect(),
            sel: None,
        }
    }

    /// Drop the leading column (strips DT storage's `$ROW_ID`).
    pub fn drop_first_column(mut self) -> Batch {
        if !self.columns.is_empty() {
            self.columns.remove(0);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn typed_fast_path_round_trips() {
        let c = ColumnVec::from_values(vec![Value::Int(3), Value::Null, Value::Int(-1)]);
        assert!(matches!(c, ColumnVec::Int { .. }));
        assert_eq!(c.get(0), Value::Int(3));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(-1));
        let f = ColumnVec::from_values(vec![Value::Float(0.5)]);
        assert!(matches!(f, ColumnVec::Float { .. }));
        // Mixed Int/Float must stay generic so variants round-trip exactly.
        let m = ColumnVec::from_values(vec![Value::Int(1), Value::Float(1.0)]);
        assert!(matches!(m, ColumnVec::Generic(_)));
        assert_eq!(m.get(0), Value::Int(1));
        assert_eq!(m.get(1), Value::Float(1.0));
    }

    #[test]
    fn batch_from_rows_to_rows_identity() {
        let rows = vec![row!(1i64, "a"), row!(2i64, "b")];
        let b = Batch::from_rows(2, &rows);
        assert_eq!(b.to_rows(), rows);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.live_count(), 2);
    }

    #[test]
    fn selection_and_compact() {
        let rows = vec![row!(1i64), row!(2i64), row!(3i64)];
        let mut b = Batch::from_rows(1, &rows);
        b.retain(&[true, false, true]);
        assert_eq!(b.live_count(), 2);
        assert_eq!(b.to_rows(), vec![row!(1i64), row!(3i64)]);
        let dense = b.compact();
        assert_eq!(dense.len(), 2);
        assert!(dense.selection().is_none());
        assert_eq!(dense.to_rows(), vec![row!(1i64), row!(3i64)]);
        // retain intersects with the existing selection.
        b.retain(&[true, true, false]);
        assert_eq!(b.to_rows(), vec![row!(1i64)]);
    }

    #[test]
    fn predicate_masks_match_row_semantics() {
        let rows = vec![
            row!(1i64),
            Row::new(vec![Value::Null]),
            row!(5i64),
            row!(3i64),
        ];
        let mut b = Batch::from_rows(1, &rows);
        let ps = PredicateSet::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::GtEq,
            literal: Value::Int(3),
        }]);
        ps.apply(&mut b);
        assert_eq!(b.to_rows(), vec![row!(5i64), row!(3i64)]);
        // Same verdicts row-at-a-time (NULL never matches).
        let kept: Vec<Row> = rows.iter().filter(|r| ps.matches_row(r)).cloned().collect();
        assert_eq!(b.to_rows(), kept);
    }

    #[test]
    fn zone_map_bounds_and_may_match() {
        let c = ColumnVec::from_values(vec![Value::Int(10), Value::Null, Value::Int(20)]);
        let z = c.zone_map();
        assert_eq!(z.min, Some(Value::Int(10)));
        assert_eq!(z.max, Some(Value::Int(20)));
        assert_eq!(z.null_count, 1);
        assert!(z.may_match(CmpOp::Eq, &Value::Int(15)));
        assert!(!z.may_match(CmpOp::Eq, &Value::Int(25)));
        assert!(!z.may_match(CmpOp::Gt, &Value::Int(20)));
        assert!(z.may_match(CmpOp::GtEq, &Value::Int(20)));
        assert!(!z.may_match(CmpOp::Lt, &Value::Int(10)));
        assert!(z.may_match(CmpOp::NotEq, &Value::Int(10)));
        // NULL literal can never match.
        assert!(!z.may_match(CmpOp::Eq, &Value::Null));
    }

    #[test]
    fn zone_map_of_all_null_or_empty_prunes_everything() {
        for c in [
            ColumnVec::from_values(vec![Value::Null, Value::Null]),
            ColumnVec::from_values(vec![]),
        ] {
            let z = c.zone_map();
            assert_eq!(z.min, None);
            for op in [CmpOp::Eq, CmpOp::NotEq, CmpOp::Lt, CmpOp::GtEq] {
                assert!(!z.may_match(op, &Value::Int(0)));
            }
        }
    }

    #[test]
    fn not_eq_prunes_only_constant_partitions() {
        let constant = ColumnVec::from_values(vec![Value::Int(7), Value::Int(7)]).zone_map();
        assert!(!constant.may_match(CmpOp::NotEq, &Value::Int(7)));
        assert!(constant.may_match(CmpOp::NotEq, &Value::Int(8)));
    }

    #[test]
    fn predicate_set_prunes_via_zone_maps() {
        let zs = vec![
            ColumnVec::from_values(vec![Value::Int(1), Value::Int(5)]).zone_map(),
            ColumnVec::from_values(vec![Value::Str("a".into())]).zone_map(),
        ];
        let hit = PredicateSet::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            literal: Value::Int(4),
        }]);
        assert!(!hit.prunes(&zs));
        let miss = PredicateSet::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            literal: Value::Int(5),
        }]);
        assert!(miss.prunes(&zs));
        // Unknown column index cannot prune.
        let unknown = PredicateSet::new(vec![ColumnPredicate {
            column: 9,
            op: CmpOp::Eq,
            literal: Value::Int(1),
        }]);
        assert!(!unknown.prunes(&zs));
    }

    #[test]
    fn shift_columns_offsets_indices() {
        let ps = PredicateSet::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Eq,
            literal: Value::Int(1),
        }]);
        let shifted = ps.shift_columns(1);
        assert_eq!(shifted.preds[0].column, 1);
        assert!(shifted.matches_row(&row!("rowid", 1i64)));
    }

    #[test]
    fn mixed_type_zone_maps_stay_sound() {
        // A column mixing ints and strings: Ord ranks Int < Str, so
        // min=Int, max=Str. A string comparison must still be matchable.
        let c = ColumnVec::from_values(vec![Value::Int(5), Value::Str("x".into())]);
        let z = c.zone_map();
        assert!(z.may_match(CmpOp::Eq, &Value::Int(5)));
        assert!(z.may_match(CmpOp::Eq, &Value::Str("x".into())));
        assert!(z.may_match(CmpOp::GtEq, &Value::Str("a".into())));
        // And the vectorized filter agrees with row semantics.
        let mut b = Batch::new(vec![Arc::new(c)], 2);
        let ps = PredicateSet::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Eq,
            literal: Value::Str("x".into()),
        }]);
        ps.apply(&mut b);
        assert_eq!(b.to_rows(), vec![row!("x")]);
    }
}
