//! Durability configuration.
//!
//! The engine runs either entirely in memory (the default, preserving the
//! semantics every pre-durability test and bench was written against) or
//! with a write-ahead log + checkpoint directory that makes it
//! restartable. The mode is carried in the engine config so every layer
//! (storage, txn, core) can branch without new plumbing.

use std::path::PathBuf;

/// Where (and whether) the engine persists its state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Pure in-memory operation: no WAL, no checkpoints, nothing survives
    /// a restart. This is the default so existing callers are unchanged.
    #[default]
    None,
    /// Write-ahead logging plus checkpoints rooted at `dir`. The
    /// directory holds `wal-*.seg` segments and a `checkpoint.dtck`
    /// snapshot; `Engine::open` recovers from it.
    Wal {
        /// Root directory for WAL segments and checkpoint files.
        dir: PathBuf,
    },
}

impl DurabilityMode {
    /// Convenience constructor for WAL mode.
    pub fn wal(dir: impl Into<PathBuf>) -> Self {
        DurabilityMode::Wal { dir: dir.into() }
    }

    /// True when the engine persists state.
    pub fn is_durable(&self) -> bool {
        matches!(self, DurabilityMode::Wal { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_in_memory() {
        assert_eq!(DurabilityMode::default(), DurabilityMode::None);
        assert!(!DurabilityMode::default().is_durable());
    }

    #[test]
    fn wal_mode_carries_dir() {
        let m = DurabilityMode::wal("/tmp/dt");
        assert!(m.is_durable());
        match m {
            DurabilityMode::Wal { dir } => assert_eq!(dir, PathBuf::from("/tmp/dt")),
            DurabilityMode::None => unreachable!(),
        }
    }
}
