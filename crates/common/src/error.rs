//! Workspace-wide error type.
//!
//! Every layer of the system (storage, transactions, SQL, planning,
//! execution, IVM, scheduling) reports failures through [`DtError`], so the
//! public API surfaces one coherent error enum, in the spirit of the paper's
//! "user error vs system error" distinction (§3.3.3): user errors (bad SQL,
//! division by zero, unknown identifiers) fail a single refresh and count
//! against the DT's error counter, while internal invariant violations are
//! bugs and surface as `Internal`.

use std::fmt;

/// Result alias used across the workspace.
pub type DtResult<T> = Result<T, DtError>;

/// The error type shared by every crate in the reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtError {
    /// A SQL string could not be tokenized.
    Lex { pos: usize, message: String },
    /// A token stream could not be parsed.
    Parse { pos: usize, message: String },
    /// Name resolution / binding failed (unknown table, column, ambiguity).
    Binding(String),
    /// A query or DDL statement is well-formed but not supported.
    Unsupported(String),
    /// Type error during planning or evaluation.
    Type(String),
    /// Runtime evaluation error attributable to the user's query or data
    /// (e.g. division by zero). Mirrors §3.3.3's "user error" class: the
    /// refresh fails, is not retried, and increments the DT's error counter.
    Evaluation(String),
    /// Catalog errors: duplicate names, missing entities, dependency cycles.
    Catalog(String),
    /// Access control failure (RBAC, §3.4).
    AccessDenied { privilege: String, entity: String },
    /// Storage-level failure (missing version, missing partition).
    Storage(String),
    /// Transaction lifecycle errors that are *not* conflicts: unknown or
    /// already-terminated transactions, stray `COMMIT`/`ROLLBACK`, nested
    /// `BEGIN`.
    Txn(String),
    /// A serialization conflict: another transaction holds a touched
    /// table's write lock, or committed a touched table first
    /// (first-committer-wins, §5.3). Conflicts are retryable — the caller
    /// can re-run its logic against fresh data — which is why they are a
    /// typed variant rather than a `Txn` message: callers classify them
    /// with [`DtError::is_conflict`] instead of substring matching.
    Conflict(String),
    /// A deadlock between transactions waiting on pessimistic table locks.
    /// Commit-time acquisition orders tables canonically, so queued writers
    /// cannot deadlock among themselves; cycles only arise on mixed-mode
    /// edges (e.g. `SELECT ... FOR UPDATE` locks taken mid-transaction in
    /// an order that crosses a later commit's canonical order). The victim
    /// is aborted and may retry, so deadlocks classify as serialization
    /// conflicts for retry loops while staying a distinct typed variant.
    Deadlock(String),
    /// The entity is a Dynamic Table in a state that forbids the operation
    /// (e.g. querying before initialization — §3.1).
    NotInitialized(String),
    /// The DT was automatically suspended after consecutive errors (§3.3.3).
    Suspended(String),
    /// Snapshot-isolation violation guard: the exact upstream version for a
    /// refresh timestamp could not be found (§6.1, production validation #1).
    VersionNotFound { entity: String, refresh_ts: i64 },
    /// IVM invariant violation (§6.1 validations #2 and #3): duplicate
    /// ($ROW_ID, $ACTION) pair or delete of a nonexistent row. These abort
    /// the refresh to shield the table from corruption.
    IvmInvariant(String),
    /// An internal bug: invariants of the implementation itself failed.
    Internal(String),
    /// An operating-system I/O failure while reading or writing durable
    /// state (WAL segments, checkpoint files). Not a user error and not
    /// retryable through the conflict path: the caller must surface it.
    Io(String),
    /// Durable state failed validation: a bad magic number, an
    /// unsupported format version, or a CRC mismatch *before* the final
    /// WAL record (a corrupt tail on the last record is expected after a
    /// crash and is truncated silently; corruption anywhere else is not).
    Corruption(String),
}

impl DtError {
    /// True when the failure is attributable to the user's query or data
    /// (fails the refresh, increments the error counter) as opposed to a
    /// system bug or transient condition.
    pub fn is_user_error(&self) -> bool {
        matches!(
            self,
            DtError::Lex { .. }
                | DtError::Parse { .. }
                | DtError::Binding(_)
                | DtError::Unsupported(_)
                | DtError::Type(_)
                | DtError::Evaluation(_)
                | DtError::AccessDenied { .. }
        )
    }

    /// True when the failure is a serialization conflict (another
    /// transaction won a touched table first). Conflicts are safe to
    /// retry against fresh data; every other error is not.
    pub fn is_conflict(&self) -> bool {
        matches!(self, DtError::Conflict(_))
    }

    /// True when the failure is a deadlock between lock waiters. The
    /// victim's transaction was aborted; like a conflict, the caller can
    /// safely retry its logic from the top.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, DtError::Deadlock(_))
    }

    /// Shorthand for a serialization conflict.
    pub fn conflict(msg: impl Into<String>) -> Self {
        DtError::Conflict(msg.into())
    }

    /// Shorthand for a deadlock abort.
    pub fn deadlock(msg: impl Into<String>) -> Self {
        DtError::Deadlock(msg.into())
    }

    /// Shorthand for an internal invariant failure.
    pub fn internal(msg: impl Into<String>) -> Self {
        DtError::Internal(msg.into())
    }
}

impl fmt::Display for DtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            DtError::Parse { pos, message } => write!(f, "parse error at token {pos}: {message}"),
            DtError::Binding(m) => write!(f, "binding error: {m}"),
            DtError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DtError::Type(m) => write!(f, "type error: {m}"),
            DtError::Evaluation(m) => write!(f, "evaluation error: {m}"),
            DtError::Catalog(m) => write!(f, "catalog error: {m}"),
            DtError::AccessDenied { privilege, entity } => {
                write!(f, "access denied: {privilege} on {entity}")
            }
            DtError::Storage(m) => write!(f, "storage error: {m}"),
            DtError::Txn(m) => write!(f, "transaction error: {m}"),
            DtError::Conflict(m) => write!(f, "serialization conflict: {m}"),
            DtError::Deadlock(m) => write!(f, "deadlock detected: {m}"),
            DtError::NotInitialized(m) => write!(f, "dynamic table not initialized: {m}"),
            DtError::Suspended(m) => write!(f, "dynamic table suspended: {m}"),
            DtError::VersionNotFound { entity, refresh_ts } => write!(
                f,
                "no table version of {entity} for refresh timestamp {refresh_ts}"
            ),
            DtError::IvmInvariant(m) => write!(f, "IVM invariant violation: {m}"),
            DtError::Internal(m) => write!(f, "internal error: {m}"),
            DtError::Io(m) => write!(f, "I/O error: {m}"),
            DtError::Corruption(m) => write!(f, "durable state corrupted: {m}"),
        }
    }
}

impl std::error::Error for DtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_error_classification() {
        assert!(DtError::Evaluation("division by zero".into()).is_user_error());
        assert!(DtError::Binding("unknown column".into()).is_user_error());
        assert!(!DtError::Internal("bug".into()).is_user_error());
        assert!(!DtError::IvmInvariant("dup row id".into()).is_user_error());
        assert!(!DtError::VersionNotFound {
            entity: "t".into(),
            refresh_ts: 1
        }
        .is_user_error());
    }

    #[test]
    fn conflict_classification_is_typed() {
        assert!(DtError::conflict("entity e1 is locked by t2").is_conflict());
        assert!(!DtError::Txn("transaction t9 is not active".into()).is_conflict());
        assert!(!DtError::conflict("x").is_user_error());
        let s = DtError::conflict("first committer wins").to_string();
        assert!(s.contains("serialization conflict"), "{s}");
    }

    #[test]
    fn deadlock_is_typed_and_distinct_from_conflict() {
        let e = DtError::deadlock("t1 waits on entity e2 held by t2");
        assert!(e.is_deadlock());
        assert!(!e.is_conflict());
        assert!(!e.is_user_error());
        let s = e.to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(!DtError::conflict("x").is_deadlock());
    }

    #[test]
    fn display_is_informative() {
        let e = DtError::VersionNotFound {
            entity: "orders".into(),
            refresh_ts: 42,
        };
        let s = e.to_string();
        assert!(s.contains("orders") && s.contains("42"));
    }
}
