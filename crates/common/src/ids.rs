//! Strongly typed identifiers.
//!
//! Small newtype wrappers keep the many numeric identifiers in the system
//! (catalog entities, table versions, partitions, transactions, refreshes)
//! from being confused with one another.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a catalog entity (table, view, or dynamic table).
    EntityId,
    "ent-"
);
define_id!(
    /// Identifier of one immutable version in a table's version chain.
    VersionId,
    "ver-"
);
define_id!(
    /// Identifier of one immutable micro-partition.
    PartitionId,
    "part-"
);
define_id!(
    /// Identifier of a transaction.
    TxnId,
    "txn-"
);
define_id!(
    /// Identifier of one refresh operation of a dynamic table.
    RefreshId,
    "refresh-"
);

/// A monotonically increasing id generator, shared by subsystems that mint
/// ids concurrently (storage mints partition ids from warehouse threads).
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Create a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint the next raw id.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_display() {
        let e = EntityId(7);
        let v = VersionId(7);
        assert_eq!(e.to_string(), "ent-7");
        assert_eq!(v.to_string(), "ver-7");
        assert_eq!(e.raw(), v.raw());
    }

    #[test]
    fn idgen_is_monotonic() {
        let g = IdGen::new();
        let a = g.next_raw();
        let b = g.next_raw();
        let c = g.next_raw();
        assert!(a < b && b < c);
    }
}
