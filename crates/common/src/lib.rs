//! Shared foundation types for the Dynamic Tables reproduction.
//!
//! This crate deliberately has no dependency on the rest of the workspace.
//! It provides:
//!
//! * [`value::Value`] — the dynamically typed scalar used throughout the
//!   engine, with total ordering and hashing (floats are ordered IEEE-754
//!   totally so they can participate in group-by keys, mirroring the paper's
//!   discussion of float nondeterminism in §3.4).
//! * [`schema::Schema`] / [`schema::Column`] — relational schemas.
//! * [`time`] — a *simulated* clock. All scheduling and lag experiments in
//!   the paper (Figure 4, §5.2) are reproduced on virtual time so results
//!   are deterministic.
//! * [`error::DtError`] — the workspace-wide error type.
//! * [`ids`] — strongly typed identifiers.

pub mod column;
pub mod durability;
pub mod error;
pub mod ids;
pub mod row;
pub mod schema;
pub mod time;
pub mod value;

pub use column::{Batch, CmpOp, ColumnPredicate, ColumnVec, PredicateSet, ZoneMap};
pub use durability::DurabilityMode;
pub use error::{DtError, DtResult};
pub use ids::{EntityId, PartitionId, RefreshId, TxnId, VersionId};
pub use row::Row;
pub use schema::{Column, DataType, Schema};
pub use time::{Clock, Duration, SimClock, Timestamp};
pub use value::Value;
