//! Rows: fixed-width tuples of [`Value`]s.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// One tuple. Rows are immutable once built; operators construct new rows.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Build from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into(),
        }
    }

    /// An empty (zero-column) row.
    pub fn empty() -> Self {
        Row::default()
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a zero-column row.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Concatenate with another row (joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(self.values());
        v.extend_from_slice(other.values());
        Row::new(v)
    }

    /// Row of `n` NULLs (outer-join padding).
    pub fn nulls(n: usize) -> Row {
        Row::new(vec![Value::Null; n])
    }

    /// Project the given column indices into a new row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row::new(v)
    }
}

/// Convenience macro for building rows in tests and examples.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_project() {
        let a = row!(1i64, "x");
        let b = row!(2.5f64);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p, Row::new(vec![Value::Float(2.5), Value::Int(1)]));
    }

    #[test]
    fn nulls_row() {
        let r = Row::nulls(3);
        assert!(r.values().iter().all(|v| v.is_null()));
    }

    #[test]
    fn rows_are_cheap_to_clone() {
        let r = row!(1i64, 2i64, 3i64);
        let r2 = r.clone();
        assert_eq!(r, r2);
        // Arc-backed: same allocation.
        assert!(std::ptr::eq(r.values().as_ptr(), r2.values().as_ptr()));
    }
}
