//! Relational schemas.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::error::{DtError, DtResult};

/// Scalar column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Instant on the simulation timeline.
    Timestamp,
    /// Interval.
    Duration,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Timestamp => "TIMESTAMP",
            DataType::Duration => "INTERVAL",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parse a SQL type name.
    pub fn parse(s: &str) -> DtResult<DataType> {
        Ok(match s.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "INT" | "INTEGER" | "BIGINT" | "NUMBER" => DataType::Int,
            "FLOAT" | "DOUBLE" | "REAL" => DataType::Float,
            "STRING" | "TEXT" | "VARCHAR" => DataType::Str,
            "TIMESTAMP" | "DATETIME" => DataType::Timestamp,
            "INTERVAL" | "DURATION" => DataType::Duration,
            other => return Err(DtError::Type(format!("unknown type '{other}'"))),
        })
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-normalized to lowercase by the binder).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
        }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

/// Schemas are shared widely (plans, snapshots, partitions); `Arc` them.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Empty schema (zero columns).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column with the given (case-insensitive) name, if any.
    /// Returns an error on ambiguity.
    pub fn index_of(&self, name: &str) -> DtResult<usize> {
        let lname = name.to_ascii_lowercase();
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name == lname {
                if found.is_some() {
                    return Err(DtError::Binding(format!("ambiguous column '{name}'")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| DtError::Binding(format!("unknown column '{name}'")))
    }

    /// The column at `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// A new schema with the given column appended.
    pub fn with_column(&self, c: Column) -> Schema {
        let mut cols = self.columns.clone();
        cols.push(c);
        Schema::new(cols)
    }

    /// Concatenate two schemas (used by joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Float),
        ])
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = abc();
        assert_eq!(s.index_of("B").unwrap(), 1);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("z").is_err());
    }

    #[test]
    fn ambiguous_columns_error() {
        let s = abc().join(&abc());
        assert!(matches!(s.index_of("a"), Err(DtError::Binding(_))));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("bigint").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("VARCHAR").unwrap(), DataType::Str);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn display_roundtrip_readable() {
        assert_eq!(abc().to_string(), "(a INT, b STRING, c FLOAT)");
    }
}
