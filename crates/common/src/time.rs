//! Simulated time.
//!
//! All of the paper's scheduling behaviour — target lag, the lag sawtooth of
//! Figure 4, canonical refresh periods, skips — is about *when* things
//! happen. To reproduce those experiments deterministically we run the whole
//! system on a virtual clock: a [`SimClock`] that only advances when the
//! simulation driver tells it to. Timestamps are microseconds from the
//! simulation epoch.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Microsecond-precision instant on the simulation timeline.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The simulation epoch (t = 0).
    pub const EPOCH: Timestamp = Timestamp(0);
    /// The maximum representable instant.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Build from raw microseconds since the epoch.
    pub const fn from_micros(us: i64) -> Self {
        Timestamp(us)
    }

    /// Build from seconds since the epoch.
    pub const fn from_secs(s: i64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> i64 {
        self.0 / 1_000_000
    }

    /// This instant shifted forward by `d` (negative durations shift back).
    pub const fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.as_micros())
    }

    /// Elapsed duration since `earlier` (negative if `earlier` is later).
    pub const fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0 - earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as fractional seconds for readability in harness output.
        let s = self.0 / 1_000_000;
        let us = (self.0 % 1_000_000).abs();
        if us == 0 {
            write!(f, "t+{s}s")
        } else {
            write!(f, "t+{s}.{us:06}s")
        }
    }
}

/// Signed microsecond duration.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(i64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Build from microseconds.
    pub const fn from_micros(us: i64) -> Self {
        Duration(us)
    }

    /// Build from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms * 1_000)
    }

    /// Build from seconds.
    pub const fn from_secs(s: i64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Build from minutes.
    pub const fn from_mins(m: i64) -> Self {
        Duration::from_secs(m * 60)
    }

    /// Build from hours.
    pub const fn from_hours(h: i64) -> Self {
        Duration::from_secs(h * 3600)
    }

    /// Build from days.
    pub const fn from_days(d: i64) -> Self {
        Duration::from_secs(d * 86_400)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> i64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float, for telemetry plots.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for durations of length zero or less.
    pub const fn is_non_positive(self) -> bool {
        self.0 <= 0
    }

    /// Scale by an integer factor.
    pub const fn times(self, n: i64) -> Duration {
        Duration(self.0 * n)
    }

    /// Parse a human interval such as `"1 minute"`, `"30 seconds"`,
    /// `"16 hours"`, `"2 days"` — the format accepted by `TARGET_LAG`.
    pub fn parse(s: &str) -> Result<Duration, String> {
        let t = s.trim().to_ascii_lowercase();
        let (num_part, unit_part) = match t.find(|c: char| c.is_ascii_alphabetic()) {
            Some(i) => t.split_at(i),
            None => return Err(format!("interval '{s}' has no unit")),
        };
        let n: i64 = num_part
            .trim()
            .parse()
            .map_err(|_| format!("bad interval quantity in '{s}'"))?;
        let unit = unit_part.trim();
        let per = match unit {
            "us" | "microsecond" | "microseconds" => 1,
            "ms" | "millisecond" | "milliseconds" => 1_000,
            "s" | "sec" | "secs" | "second" | "seconds" => 1_000_000,
            "m" | "min" | "mins" | "minute" | "minutes" => 60_000_000,
            "h" | "hr" | "hrs" | "hour" | "hours" => 3_600_000_000,
            "d" | "day" | "days" => 86_400_000_000,
            other => return Err(format!("unknown interval unit '{other}'")),
        };
        Ok(Duration(n * per))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us % 3_600_000_000 == 0 {
            write!(f, "{}h", us / 3_600_000_000)
        } else if us % 60_000_000 == 0 {
            write!(f, "{}m", us / 60_000_000)
        } else if us % 1_000_000 == 0 {
            write!(f, "{}s", us / 1_000_000)
        } else if us.abs() >= 1_000_000 {
            write!(f, "{:.2}s", us as f64 / 1e6)
        } else {
            write!(f, "{}us", us)
        }
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A source of "now". The production system reads a wall clock; the
/// reproduction injects a [`SimClock`] everywhere so experiments are
/// deterministic and fast.
pub trait Clock: Send + Sync {
    /// Current instant.
    fn now(&self) -> Timestamp;
}

/// Deterministic, manually advanced clock shared by the whole system.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<Mutex<Timestamp>>,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at the given instant.
    pub fn starting_at(t: Timestamp) -> Self {
        SimClock {
            now: Arc::new(Mutex::new(t)),
        }
    }

    /// Advance by `d`, returning the new now. Panics on negative advance:
    /// simulated time, like real time, never goes backwards.
    pub fn advance(&self, d: Duration) -> Timestamp {
        assert!(d.as_micros() >= 0, "SimClock cannot move backwards");
        let mut now = self.now.lock();
        *now = now.add(d);
        *now
    }

    /// Jump directly to `t` (must not be in the past).
    pub fn advance_to(&self, t: Timestamp) -> Timestamp {
        let mut now = self.now.lock();
        assert!(t >= *now, "SimClock cannot move backwards");
        *now = t;
        *now
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        *self.now.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_roundtrips() {
        let t = Timestamp::from_secs(10);
        let t2 = t.add(Duration::from_mins(2));
        assert_eq!(t2.since(t), Duration::from_secs(120));
        assert_eq!(t2.as_secs(), 130);
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(Duration::parse("1 minute").unwrap(), Duration::from_mins(1));
        assert_eq!(Duration::parse("30 seconds").unwrap(), Duration::from_secs(30));
        assert_eq!(Duration::parse("16 hours").unwrap(), Duration::from_hours(16));
        assert_eq!(Duration::parse("2d").unwrap(), Duration::from_days(2));
        assert_eq!(Duration::parse("250ms").unwrap(), Duration::from_millis(250));
        assert!(Duration::parse("five minutes").is_err());
        assert!(Duration::parse("10 fortnights").is_err());
        assert!(Duration::parse("10").is_err());
    }

    #[test]
    fn duration_display() {
        assert_eq!(Duration::from_mins(90).to_string(), "90m");
        assert_eq!(Duration::from_hours(2).to_string(), "2h");
        assert_eq!(Duration::from_secs(45).to_string(), "45s");
    }

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp::EPOCH);
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now(), Timestamp::from_secs(5));
        c.advance_to(Timestamp::from_secs(9));
        assert_eq!(c.now().as_secs(), 9);
    }

    #[test]
    #[should_panic]
    fn sim_clock_rejects_backwards() {
        let c = SimClock::starting_at(Timestamp::from_secs(100));
        c.advance_to(Timestamp::from_secs(50));
    }

    #[test]
    fn clones_share_the_same_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(1));
        assert_eq!(b.now(), Timestamp::from_secs(1));
    }
}
