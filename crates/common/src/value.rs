//! The dynamically typed scalar value.
//!
//! `Value` implements `Eq`, `Ord`, and `Hash` *totally*, including over
//! floats (via IEEE-754 total ordering of bit patterns with NaN normalized).
//! A total order is required because values are used as group-by and join
//! keys throughout the engine. The paper (§3.4) notes Snowflake prohibits
//! floats only where nondeterminism would interfere with view maintenance
//! (e.g. joining on a float aggregate key); our single-process engine is
//! deterministic so we can afford to allow them while still documenting the
//! hazard at the API level.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{DtError, DtResult};
use crate::schema::DataType;
use crate::time::{Duration, Timestamp};

/// A scalar runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Microseconds since the simulation epoch.
    Timestamp(Timestamp),
    /// A duration (interval) in microseconds.
    Duration(Duration),
}

impl Value {
    /// The runtime type of this value, `None` for NULL (untyped).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Duration(_) => Some(DataType::Duration),
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean for filter predicates. NULL is "not true".
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric widening: integer payload as f64, if numeric.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Extract an i64 or fail with a type error.
    pub fn expect_int(&self) -> DtResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(DtError::Type(format!("expected INT, got {other}"))),
        }
    }

    /// Extract a string slice or fail with a type error.
    pub fn expect_str(&self) -> DtResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DtError::Type(format!("expected STRING, got {other}"))),
        }
    }

    /// Extract a timestamp or fail with a type error.
    pub fn expect_timestamp(&self) -> DtResult<Timestamp> {
        match self {
            Value::Timestamp(t) => Ok(*t),
            other => Err(DtError::Type(format!("expected TIMESTAMP, got {other}"))),
        }
    }

    /// SQL `+`. NULL-propagating; timestamp + duration supported.
    pub fn add(&self, rhs: &Value) -> DtResult<Value> {
        use Value::*;
        Ok(match (self, rhs) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a.checked_add(*b).ok_or_else(overflow)?),
            (Timestamp(t), Duration(d)) | (Duration(d), Timestamp(t)) => Timestamp(t.add(*d)),
            (Duration(a), Duration(b)) => Duration(crate::time::Duration::from_micros(
                a.as_micros() + b.as_micros(),
            )),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Float(x + y),
                _ => return Err(DtError::Type(format!("cannot add {a} + {b}"))),
            },
        })
    }

    /// SQL `-`. Timestamp - timestamp yields a duration.
    pub fn sub(&self, rhs: &Value) -> DtResult<Value> {
        use Value::*;
        Ok(match (self, rhs) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a.checked_sub(*b).ok_or_else(overflow)?),
            (Timestamp(a), Timestamp(b)) => Duration(a.since(*b)),
            (Timestamp(t), Duration(d)) => {
                Timestamp(t.add(crate::time::Duration::from_micros(-d.as_micros())))
            }
            (Duration(a), Duration(b)) => Duration(crate::time::Duration::from_micros(
                a.as_micros() - b.as_micros(),
            )),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Float(x - y),
                _ => return Err(DtError::Type(format!("cannot subtract {a} - {b}"))),
            },
        })
    }

    /// SQL `*`.
    pub fn mul(&self, rhs: &Value) -> DtResult<Value> {
        use Value::*;
        Ok(match (self, rhs) {
            (Null, _) | (_, Null) => Null,
            (Int(a), Int(b)) => Int(a.checked_mul(*b).ok_or_else(overflow)?),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Float(x * y),
                _ => return Err(DtError::Type(format!("cannot multiply {a} * {b}"))),
            },
        })
    }

    /// SQL `/`. Division by zero is a *user* evaluation error — the paper's
    /// canonical example of a refresh-failing error (§3.3.3).
    pub fn div(&self, rhs: &Value) -> DtResult<Value> {
        use Value::*;
        Ok(match (self, rhs) {
            (Null, _) | (_, Null) => Null,
            (Int(_), Int(0)) => return Err(DtError::Evaluation("division by zero".into())),
            (Int(a), Int(b)) => Int(a / b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(_), Some(0.0)) => {
                    return Err(DtError::Evaluation("division by zero".into()))
                }
                (Some(x), Some(y)) => Float(x / y),
                _ => return Err(DtError::Type(format!("cannot divide {a} / {b}"))),
            },
        })
    }

    /// SQL `%` on integers.
    pub fn modulo(&self, rhs: &Value) -> DtResult<Value> {
        use Value::*;
        Ok(match (self, rhs) {
            (Null, _) | (_, Null) => Null,
            (Int(_), Int(0)) => return Err(DtError::Evaluation("modulo by zero".into())),
            (Int(a), Int(b)) => Int(a % b),
            (a, b) => return Err(DtError::Type(format!("cannot mod {a} % {b}"))),
        })
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> DtResult<Value> {
        use Value::*;
        Ok(match self {
            Null => Null,
            Int(a) => Int(a.checked_neg().ok_or_else(overflow)?),
            Float(a) => Float(-a),
            Duration(d) => Duration(crate::time::Duration::from_micros(-d.as_micros())),
            other => return Err(DtError::Type(format!("cannot negate {other}"))),
        })
    }

    /// SQL three-valued comparison: NULL if either side is NULL.
    pub fn sql_cmp(&self, rhs: &Value) -> Option<Ordering> {
        if self.is_null() || rhs.is_null() {
            return None;
        }
        // Numeric cross-type comparison widens to f64.
        if let (Some(a), Some(b)) = (self.as_f64(), rhs.as_f64()) {
            return Some(total_f64_cmp(a, b));
        }
        Some(self.cmp(rhs))
    }

    /// SQL equality with three-valued logic (NULL if either side is NULL).
    pub fn sql_eq(&self, rhs: &Value) -> Value {
        match self.sql_cmp(rhs) {
            None => Value::Null,
            Some(o) => Value::Bool(o == Ordering::Equal),
        }
    }

    /// Cast to the given type, erroring when the cast is not meaningful.
    pub fn cast(&self, to: DataType) -> DtResult<Value> {
        use Value::*;
        if self.is_null() {
            return Ok(Null);
        }
        Ok(match (self, to) {
            (v, t) if v.data_type() == Some(t) => v.clone(),
            (Int(i), DataType::Float) => Float(*i as f64),
            (Float(f), DataType::Int) => Int(*f as i64),
            (Int(i), DataType::Str) => Str(i.to_string()),
            (Float(f), DataType::Str) => Str(f.to_string()),
            (Bool(b), DataType::Str) => Str(b.to_string()),
            (Str(s), DataType::Int) => Int(s
                .trim()
                .parse::<i64>()
                .map_err(|_| DtError::Evaluation(format!("cannot cast '{s}' to INT")))?),
            (Str(s), DataType::Float) => Float(s
                .trim()
                .parse::<f64>()
                .map_err(|_| DtError::Evaluation(format!("cannot cast '{s}' to FLOAT")))?),
            (Int(i), DataType::Timestamp) => Timestamp(crate::time::Timestamp::from_micros(*i)),
            (Timestamp(t), DataType::Int) => Int(t.as_micros()),
            (Timestamp(t), DataType::Str) => Str(t.to_string()),
            (Duration(d), DataType::Int) => Int(d.as_micros()),
            (Str(s), DataType::Duration) => {
                Duration(crate::time::Duration::parse(s).map_err(DtError::Evaluation)?)
            }
            (v, t) => return Err(DtError::Type(format!("cannot cast {v} to {t}"))),
        })
    }
}

fn overflow() -> DtError {
    DtError::Evaluation("integer overflow".into())
}

/// Total order on f64: normalize NaN, order by IEEE-754 total ordering.
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

fn normalize_f64(f: f64) -> u64 {
    // Collapse all NaNs to one bit pattern, and -0.0 to +0.0, so that
    // Hash is consistent with Eq.
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0f64.to_bits()
    } else {
        f.to_bits()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all variants: NULL < Bool < Int/Float < Str <
    /// Timestamp < Duration, with Int and Float comparing numerically.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Timestamp(_) => 4,
                Duration(_) => 5,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64_cmp(if a.is_nan() { f64::NAN } else { *a }, *b),
            (Int(a), Float(b)) => total_f64_cmp(*a as f64, *b),
            (Float(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Duration(a), Duration(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        use Value::*;
        match self {
            Null => 0u8.hash(state),
            Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal,
            // because Eq treats Int(1) == Float(1.0).
            Int(i) => {
                2u8.hash(state);
                normalize_f64(*i as f64).hash(state);
            }
            Float(f) => {
                2u8.hash(state);
                normalize_f64(*f).hash(state);
            }
            Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Timestamp(t) => {
                4u8.hash(state);
                t.as_micros().hash(state);
            }
            Duration(d) => {
                5u8.hash(state);
                d.as_micros().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Timestamp(t) => write!(f, "{t}"),
            Value::Duration(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_numeric_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_is_self_equal_under_total_order() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Value::Float(-0.0).cmp(&Value::Float(0.0)), Ordering::Less);
        // total_cmp puts -0.0 < 0.0; hashing normalizes, which is fine
        // because grouping uses Ord-based BTree keys or exact hash+eq pairs.
        // We therefore assert hash equality is NOT relied upon here.
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
    }

    #[test]
    fn sql_three_valued_comparison() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), Value::Null);
        assert_eq!(Value::Int(2).sql_eq(&Value::Int(2)), Value::Bool(true));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn arithmetic_null_propagation() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).mul(&Value::Null).unwrap().is_null());
    }

    #[test]
    fn division_by_zero_is_user_error() {
        let err = Value::Int(1).div(&Value::Int(0)).unwrap_err();
        assert!(err.is_user_error());
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Value::Timestamp(Timestamp::from_micros(1_000_000));
        let d = Value::Duration(Duration::from_secs(2));
        let t2 = t.add(&d).unwrap();
        assert_eq!(t2, Value::Timestamp(Timestamp::from_micros(3_000_000)));
        let diff = t2.sub(&t).unwrap();
        assert_eq!(diff, Value::Duration(Duration::from_secs(2)));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Str("42".into()).cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(42).cast(DataType::Str).unwrap(),
            Value::Str("42".into())
        );
        assert!(Value::Str("nope".into()).cast(DataType::Int).is_err());
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn overflow_is_evaluation_error() {
        let e = Value::Int(i64::MAX).add(&Value::Int(1)).unwrap_err();
        assert!(matches!(e, DtError::Evaluation(_)));
    }
}
