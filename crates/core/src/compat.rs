//! The pre-`Engine` single-connection façade, kept as a thin compatibility
//! shim. The only public path to [`Database`] is the deprecated re-export
//! in [`crate`] (`dt_core::Database`), so downstream users get exactly one
//! deprecation warning at their use site while this module itself compiles
//! clean.

use dt_common::{DtResult, Row, SimClock, Timestamp};

use crate::database::{DbConfig, ExecResult};
use crate::engine::{Engine, Session};
use crate::refresh::RefreshLogEntry;
use crate::simulate::SimStats;

/// One engine plus one session, with the old `&mut self` signatures
/// delegating to the new API. Migrate to [`Engine`] + [`Session`] — see
/// the README migration table.
pub struct Database {
    engine: Engine,
    session: Session,
}

impl Database {
    /// Create an empty database at the simulation epoch.
    pub fn new(config: DbConfig) -> Self {
        let engine = Engine::new(config);
        let session = engine.session();
        Database { engine, session }
    }

    /// The shared engine behind this façade.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The façade's single session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        self.engine.clock()
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.engine.now()
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> DtResult<ExecResult> {
        self.session.execute(sql)
    }

    /// Run a query and return its rows.
    pub fn query(&mut self, sql: &str) -> DtResult<Vec<Row>> {
        Ok(self.session.query(sql)?.into_rows())
    }

    /// Run a query and return sorted rows.
    pub fn query_sorted(&mut self, sql: &str) -> DtResult<Vec<Row>> {
        self.session.query_sorted(sql)
    }

    /// Time-travel query at a past instant.
    pub fn query_at(&self, sql: &str, at: Timestamp) -> DtResult<Vec<Row>> {
        Ok(self.session.query_at(sql, at)?.into_rows())
    }

    /// Switch the session role.
    pub fn set_role(&mut self, role: &str) {
        self.session.set_role(role);
    }

    /// Grant a privilege on a named entity to a role.
    pub fn grant(
        &mut self,
        role: &str,
        entity: &str,
        privilege: dt_catalog::Privilege,
    ) -> DtResult<()> {
        self.session.grant(role, entity, privilege)
    }

    /// Create a virtual warehouse.
    pub fn create_warehouse(&mut self, name: &str, nodes: u32) -> DtResult<()> {
        self.engine.create_warehouse(name, nodes)
    }

    /// Trigger a manual refresh.
    pub fn manual_refresh(&mut self, name: &str) -> DtResult<usize> {
        self.session.manual_refresh(name)
    }

    /// Run the scheduler until the virtual clock reaches `end`.
    pub fn run_scheduler_until(&mut self, end: Timestamp) -> DtResult<SimStats> {
        self.engine.run_scheduler_until(end)
    }

    /// A copy of the refresh log.
    pub fn refresh_log(&self) -> Vec<RefreshLogEntry> {
        self.engine.refresh_log().entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_shim_delegates() {
        let mut db = Database::new(DbConfig::default());
        db.create_warehouse("wh", 1).unwrap();
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        assert_eq!(db.query("SELECT * FROM t").unwrap().len(), 2);
        assert!(db.refresh_log().is_empty());
    }
}
