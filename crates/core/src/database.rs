//! The engine state: catalog, storage, transactions, scheduler, and the
//! statement execution paths over them.
//!
//! [`EngineState`] is the single-writer core that the public
//! [`crate::Engine`] wraps in a reader/writer lock. Connections never touch
//! it directly — they go through [`crate::Session`], which carries the
//! per-connection role and passes it into every call that needs one.

use std::collections::HashMap;
use std::sync::Arc;

use dt_catalog::{Catalog, DtState, DynamicTableMeta, RefreshMode, TargetLagSpec};
use dt_common::{
    Column, DataType, DtError, DtResult, Duration, DurabilityMode, EntityId, Row, Schema,
    SimClock, Timestamp, Value,
};
use dt_ivm::OuterJoinStrategy;
use dt_plan::{BindOutput, Binder, LogicalPlan, ResolvedRelation, Resolver};
use dt_scheduler::{
    CostModel, RefreshAction, Scheduler, SchedulerConfig, TargetLag, WarehousePool,
};
use dt_sql::ast;
use dt_storage::TableStore;
use dt_txn::{Frontier, RefreshTsMap, TxnManager};

use crate::dml::{self, DmlSource};
use crate::durability::{SideEffect, WalRecord, WalShared};
use crate::providers::{LatestProvider, StorageView, VersionSemantics};
use crate::refresh::RefreshLog;

/// EngineState configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Micro-partition capacity for new tables.
    pub partition_capacity: usize,
    /// Outer-join differentiation strategy (§5.5.1 ablation).
    pub outer_join: OuterJoinStrategy,
    /// DT version resolution semantics for refreshes (DVS vs the persisted
    /// baseline of §4).
    pub semantics: VersionSemantics,
    /// Re-check the DVS guarantee after every refresh (§6.1 level 4).
    pub validate_dvs: bool,
    /// Consecutive failures before automatic suspension (§3.3.3).
    pub error_suspend_threshold: u32,
    /// Refresh cost model.
    pub cost_model: CostModel,
    /// Durability: in-memory (default) or write-ahead logged to a
    /// directory. Durable engines must be opened with
    /// [`crate::Engine::open_with_config`].
    pub durability: DurabilityMode,
    /// Automatic checkpoint threshold: checkpoint after this many WAL
    /// payload bytes since the last one. Ignored when not durable.
    pub wal_checkpoint_bytes: u64,
    /// Group-commit gather window for durable engines: how long a new
    /// batch leader waits for concurrent committers to join its first
    /// batch before draining and paying the batch's single fsync (the
    /// `binlog_group_commit_sync_delay` / `commit_delay` trade — a
    /// bounded latency add buys fewer, larger flushes). Ignored when not
    /// durable; in-memory batches cost nothing to form, so they always
    /// drain immediately.
    pub wal_group_window: std::time::Duration,
    /// Bound on how long a committer parks on a pessimistic table's
    /// wait-queue before surfacing a typed conflict (timeout).
    pub lock_wait_timeout: std::time::Duration,
    /// Adaptive concurrency control: commit/abort outcomes per decision
    /// window (per table).
    pub adaptive_lock_window: u32,
    /// Abort fraction at or above which a completed window flips a table
    /// to pessimistic locking.
    pub adaptive_abort_threshold: f64,
    /// How long an adaptively flipped table stays pessimistic before the
    /// policy tries optimistic again.
    pub adaptive_lock_cooldown: std::time::Duration,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            partition_capacity: 4096,
            outer_join: OuterJoinStrategy::Direct,
            semantics: VersionSemantics::Dvs,
            validate_dvs: false,
            error_suspend_threshold: 5,
            cost_model: CostModel::default(),
            durability: DurabilityMode::None,
            wal_checkpoint_bytes: 8 * 1024 * 1024,
            // Well below one fsync (~half a millisecond on common disks
            // at commit cadence) and above the arrival spread of
            // concurrent committers finishing their statements.
            wal_group_window: std::time::Duration::from_micros(200),
            lock_wait_timeout: dt_txn::lock_manager::DEFAULT_WAIT_TIMEOUT,
            adaptive_lock_window: 32,
            adaptive_abort_threshold: 0.5,
            adaptive_lock_cooldown: std::time::Duration::from_secs(5),
        }
    }
}

/// The rows of a query along with their schema. Iterable without cloning:
/// `&result` yields `&Row`, consuming the result yields owned [`Row`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl QueryResult {
    /// Build from a schema and rows.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        QueryResult { schema, rows }
    }

    /// The output schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate over the rows by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Consume the result, taking the row vector without cloning.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Consume the result, taking the rows sorted (deterministic
    /// comparisons in tests).
    pub fn into_sorted_rows(self) -> Vec<Row> {
        let mut rows = self.rows;
        rows.sort();
        rows
    }
}

impl IntoIterator for QueryResult {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl<'a> IntoIterator for &'a QueryResult {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// Result of executing a statement.
#[derive(Debug, Clone)]
pub enum ExecResult {
    /// Query rows with their schema.
    Rows(QueryResult),
    /// DDL/utility success message.
    Ok(String),
    /// DML row count.
    Count(usize),
}

impl ExecResult {
    /// The query result, or `None` for DDL/DML outcomes — the non-query
    /// case is an explicit, debug-visible distinction rather than a silent
    /// empty row set.
    pub fn try_rows(self) -> Option<QueryResult> {
        match self {
            ExecResult::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The rows of a query result; errors when the statement was not a
    /// query (DDL/DML).
    pub fn into_rows(self) -> DtResult<Vec<Row>> {
        match self {
            ExecResult::Rows(r) => Ok(r.into_rows()),
            other => Err(DtError::Unsupported(format!(
                "statement did not produce rows (result: {other:?})"
            ))),
        }
    }
}

/// The single-node engine core: catalog, storage, transaction manager,
/// scheduler, warehouses, and refresh log. Wrapped in a reader/writer lock
/// by [`crate::Engine`]; obtain one via [`crate::Engine::new`] and interact
/// through [`crate::Session`] handles or [`crate::Engine::inspect`].
pub struct EngineState {
    pub(crate) clock: SimClock,
    pub(crate) txn: TxnManager,
    pub(crate) catalog: Catalog,
    pub(crate) tables: HashMap<EntityId, Arc<TableStore>>,
    /// `Arc`'d so parallel refresh workers can resolve DT versions
    /// lock-free against a pinned handle (all methods take `&self`).
    pub(crate) refresh_map: Arc<RefreshTsMap>,
    pub(crate) frontiers: HashMap<EntityId, Frontier>,
    pub(crate) scheduler: Scheduler,
    pub(crate) warehouses: WarehousePool,
    pub(crate) config: DbConfig,
    /// DT → warehouse name.
    pub(crate) dt_warehouse: HashMap<EntityId, String>,
    /// Every refresh executed, for telemetry and the §6.3 statistics. The
    /// log is behind its own lock (see [`RefreshLog`]), so telemetry reads
    /// never hold the engine lock.
    pub(crate) refresh_log: RefreshLog,
    /// Refreshes issued by the simulation driver whose virtual end time
    /// has not been reached yet (carried across `run_scheduler_until`
    /// calls so long refreshes keep blocking their DT — the precondition
    /// for skip behaviour, §3.3.3).
    pub(crate) pending_completions: Vec<crate::simulate::PendingCompletion>,
    /// The WAL, when durable. `None` means a purely in-memory engine.
    pub(crate) wal: Option<Arc<WalShared>>,
}

/// Resolver over the live catalog (+ DT payload schemas from storage).
pub(crate) struct DbResolver<'a> {
    pub db: &'a EngineState,
}

impl Resolver for DbResolver<'_> {
    fn resolve_relation(&self, name: &str) -> DtResult<ResolvedRelation> {
        let e = self.db.catalog.resolve(name)?;
        match &e.kind {
            dt_catalog::EntityKind::Table { schema } => Ok(ResolvedRelation::Table {
                entity: e.id,
                schema: schema.clone(),
            }),
            dt_catalog::EntityKind::View { sql } => Ok(ResolvedRelation::View { sql: sql.clone() }),
            dt_catalog::EntityKind::DynamicTable(_) => {
                let schema = self.db.dt_payload_schema(e.id)?;
                Ok(ResolvedRelation::Table {
                    entity: e.id,
                    schema,
                })
            }
        }
    }
}

impl EngineState {
    /// Create an empty database at the simulation epoch.
    pub fn new(config: DbConfig) -> Self {
        let clock = SimClock::new();
        let txn = TxnManager::new(Arc::new(clock.clone()));
        EngineState {
            clock,
            txn,
            catalog: Catalog::new(),
            tables: HashMap::new(),
            refresh_map: Arc::new(RefreshTsMap::new()),
            frontiers: HashMap::new(),
            scheduler: Scheduler::new(SchedulerConfig {
                phase: Duration::ZERO,
                error_suspend_threshold: config.error_suspend_threshold,
            }),
            warehouses: WarehousePool::new(),
            dt_warehouse: HashMap::new(),
            refresh_log: RefreshLog::default(),
            pending_completions: Vec::new(),
            wal: None,
            config,
        }
    }

    /// The simulated clock (advance it to let the scheduler act).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        use dt_common::Clock;
        self.clock.now()
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The transaction manager — per-table write locks, HLC, commit
    /// timestamps. Tests and harnesses use it to observe (or stage)
    /// lock/commit states; transactions go through
    /// [`crate::Session::begin`].
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txn
    }

    /// The storage handle of a table, if it has storage (for telemetry
    /// and tests; queries go through snapshots).
    pub fn table_store(&self, id: EntityId) -> Option<&Arc<TableStore>> {
        self.tables.get(&id)
    }

    /// The scheduler (read-only, for telemetry).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The warehouse pool (read-only, for billing telemetry).
    pub fn warehouses(&self) -> &WarehousePool {
        &self.warehouses
    }

    /// The refresh log handle (every refresh executed so far).
    pub fn refresh_log(&self) -> &RefreshLog {
        &self.refresh_log
    }

    /// The DDL generation: bumped whenever the catalog's entity set (or a
    /// definition) changes — Suspend/Resume don't count, so scheduler-driven
    /// state flips never invalidate cached plans. Prepared statements record
    /// the generation they were bound at and rebind when it moves.
    pub fn ddl_generation(&self) -> u64 {
        self.catalog.ddl_log().binding_generation()
    }

    /// Grant a privilege on a named entity to a role (§3.4).
    pub fn grant(
        &mut self,
        role: &str,
        entity: &str,
        privilege: dt_catalog::Privilege,
    ) -> DtResult<()> {
        self.catalog.grant_on(role, entity, privilege)?;
        self.wal_log_catalog(SideEffect::None)
    }

    /// Create a virtual warehouse with `nodes` nodes and a 5-minute
    /// auto-suspend (§3.3.1).
    pub fn create_warehouse(&mut self, name: &str, nodes: u32) -> DtResult<()> {
        self.warehouses.create(name, nodes, Duration::from_mins(5))?;
        self.wal_log_catalog(SideEffect::None)
    }

    /// The payload schema of a DT (stored schema minus `$ROW_ID`).
    pub(crate) fn dt_payload_schema(&self, id: EntityId) -> DtResult<Schema> {
        let store = self
            .tables
            .get(&id)
            .ok_or_else(|| DtError::Storage(format!("no storage for {id}")))?;
        let cols = store.schema().columns()[1..].to_vec();
        Ok(Schema::new(cols))
    }

    pub(crate) fn is_dt(&self, id: EntityId) -> bool {
        self.catalog
            .get(id)
            .map(|e| e.as_dt().is_some())
            .unwrap_or(false)
    }

    /// Bind a query against the live catalog.
    pub(crate) fn bind_query(&self, q: &ast::Query) -> DtResult<BindOutput> {
        Binder::new(&DbResolver { db: self }).bind_query(q)
    }

    /// Execute a read-only statement (query / EXPLAIN / SHOW) with `params`
    /// bound to its `?` placeholders. Sessions don't normally come through
    /// here — they capture a [`crate::ReadSnapshot`] and run against it
    /// with no engine lock at all; this entry point (reachable through
    /// [`EngineState::execute_parsed`]) captures an equivalent snapshot of
    /// the live state and delegates.
    pub fn read_statement(
        &self,
        stmt: &ast::Statement,
        params: &[Value],
    ) -> DtResult<ExecResult> {
        self.capture_snapshot(None).read_statement(stmt, params)
    }

    /// True when a statement can be served under the engine's read lock.
    pub fn is_read_statement(stmt: &ast::Statement) -> bool {
        matches!(
            stmt,
            ast::Statement::Query(_)
                | ast::Statement::Explain(_)
                | ast::Statement::ShowDynamicTables
        )
    }

    /// Execute one parsed statement as `role`, with `params` bound to its
    /// `?` placeholders (queries and DML only; DDL rejects placeholders).
    pub fn execute_parsed(
        &mut self,
        stmt: ast::Statement,
        sql: &str,
        role: &str,
        params: &[Value],
    ) -> DtResult<ExecResult> {
        if stmt.placeholder_count() > 0
            && !matches!(
                stmt,
                ast::Statement::Query(_)
                    | ast::Statement::Insert { .. }
                    | ast::Statement::Delete { .. }
                    | ast::Statement::Update { .. }
            )
        {
            return Err(DtError::Unsupported(
                "`?` placeholders are only supported in queries and DML \
                 (INSERT/UPDATE/DELETE)"
                    .into(),
            ));
        }
        match stmt {
            ast::Statement::Query(_)
            | ast::Statement::Explain(_)
            | ast::Statement::ShowDynamicTables => self.read_statement(&stmt, params),
            // The counters SHOW STATS reports live on the `Engine` handle
            // (lock-free atomics outside this state), so the session
            // answers it before ever routing here.
            ast::Statement::ShowStats => Err(DtError::Unsupported(
                "SHOW STATS is answered by the engine handle; execute it \
                 through a Session"
                    .into(),
            )),
            ast::Statement::CreateTable {
                name,
                columns,
                or_replace,
            } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| Column::new(n, t))
                        .collect(),
                );
                let now = self.now();
                let id = self
                    .catalog
                    .create_table(&name, schema.clone(), now, role, or_replace)?;
                self.tables.insert(
                    id,
                    Arc::new(TableStore::with_partition_capacity(
                        schema.clone(),
                        now,
                        dt_common::TxnId(0),
                        self.config.partition_capacity,
                    )),
                );
                self.wal_log_catalog(SideEffect::CreateStore {
                    entity: id,
                    schema,
                    partition_capacity: self.config.partition_capacity,
                    created_ts: now,
                })?;
                Ok(ExecResult::Ok(format!("table {name} created")))
            }
            ast::Statement::CreateView {
                name,
                query,
                or_replace,
            } => {
                // Validate the view body binds before installing it.
                self.bind_query(&query)?;
                let now = self.now();
                let body = render_query_validation_source(sql)?;
                self.catalog.create_view(&name, &body, now, role, or_replace)?;
                self.wal_log_catalog(SideEffect::None)?;
                Ok(ExecResult::Ok(format!("view {name} created")))
            }
            ast::Statement::CreateDynamicTable(cdt) => {
                self.create_dynamic_table(sql, cdt, role)
            }
            ast::Statement::Insert {
                table,
                values,
                query,
            } => self.dml_insert(&table, values, query, params),
            ast::Statement::Delete { table, predicate } => {
                self.dml_delete(&table, predicate, params)
            }
            ast::Statement::Update {
                table,
                assignments,
                predicate,
            } => self.dml_update(&table, assignments, predicate, params),
            ast::Statement::Clone { name, source } => self.clone_entity(&name, &source, role),
            ast::Statement::Drop { name } => {
                let now = self.now();
                let id = self.catalog.drop_entity(&name, now)?;
                self.scheduler.unregister(id);
                self.txn.locks().forget_table(id);
                self.wal_log_catalog(SideEffect::None)?;
                Ok(ExecResult::Ok(format!("{name} dropped")))
            }
            ast::Statement::Undrop { name } => {
                let now = self.now();
                let id = self.catalog.undrop(&name, now)?;
                // A recovered DT resumes scheduling from where it left off
                // (§3.4).
                if let Some(meta) = self.catalog.get(id)?.as_dt() {
                    let target = match meta.target_lag {
                        TargetLagSpec::Duration(d) => TargetLag::Duration(d),
                        TargetLagSpec::Downstream => TargetLag::Downstream,
                    };
                    let upstream = meta.upstream.clone();
                    self.scheduler.register(id, target, upstream);
                    if let Some(ts) = self.refresh_map.latest_refresh(id) {
                        self.scheduler.mark_initialized(id, ts)?;
                    }
                }
                self.wal_log_catalog(SideEffect::None)?;
                Ok(ExecResult::Ok(format!("{name} undropped")))
            }
            ast::Statement::Begin | ast::Statement::Commit | ast::Statement::Rollback => {
                Err(DtError::Unsupported(
                    "transaction control (BEGIN/COMMIT/ROLLBACK) is \
                     session-scoped; execute it through a Session"
                        .into(),
                ))
            }
            ast::Statement::AlterTableLocking { name, policy } => {
                // Resolve to a *base table*: DTs are written only by their
                // refreshes (which must stay non-blocking under the engine
                // write lock), and views have no storage to lock.
                let (id, _) = self.base_table(&name)?;
                let policy = match policy {
                    ast::LockingPolicyOption::Optimistic => dt_txn::LockPolicy::Optimistic,
                    ast::LockingPolicyOption::Pessimistic => dt_txn::LockPolicy::Pessimistic,
                    ast::LockingPolicyOption::Auto => dt_txn::LockPolicy::Auto,
                };
                // A runtime concurrency knob, not durable catalog state:
                // deliberately not WAL-logged (a recovered engine starts
                // back at AUTO, like a restarted server).
                self.txn.locks().set_policy(id, policy);
                Ok(ExecResult::Ok(format!(
                    "{name} locking set to {}",
                    policy.as_str()
                )))
            }
            ast::Statement::AlterDynamicTable { name, action } => {
                let id = self.catalog.resolve(&name)?.id;
                match action {
                    ast::AlterDtAction::Suspend => {
                        let now = self.now();
                        self.catalog.set_dt_state(id, DtState::Suspended, now)?;
                        self.scheduler.set_suspended(id, true)?;
                        self.wal_log_catalog(SideEffect::None)?;
                        Ok(ExecResult::Ok(format!("{name} suspended")))
                    }
                    ast::AlterDtAction::Resume => {
                        let now = self.now();
                        self.catalog.set_dt_state(id, DtState::Active, now)?;
                        self.scheduler.set_suspended(id, false)?;
                        self.wal_log_catalog(SideEffect::None)?;
                        Ok(ExecResult::Ok(format!("{name} resumed")))
                    }
                    ast::AlterDtAction::Refresh => {
                        let n = self.manual_refresh(&name, role)?;
                        Ok(ExecResult::Ok(format!(
                            "{name} refreshed ({n} refreshes executed)"
                        )))
                    }
                }
            }
        }
    }

    /// Zero-copy clone of a table or DT (§3.4): metadata is copied, every
    /// micro-partition is shared. A cloned DT keeps its source's data
    /// timestamp and contents, so it avoids reinitialization and is
    /// immediately queryable.
    fn clone_entity(&mut self, name: &str, source: &str, role: &str) -> DtResult<ExecResult> {
        let src = self.catalog.resolve(source)?.clone();
        let now = self.now();
        match &src.kind {
            dt_catalog::EntityKind::Table { schema } => {
                let id = self
                    .catalog
                    .create_table(name, schema.clone(), now, role, false)?;
                let fork = self.tables[&src.id].fork();
                self.tables.insert(id, Arc::new(fork));
                self.wal_log_catalog(SideEffect::CloneStore {
                    source: src.id,
                    target: id,
                })?;
                Ok(ExecResult::Ok(format!("table {name} cloned from {source}")))
            }
            dt_catalog::EntityKind::View { .. } => Err(DtError::Unsupported(
                "CLONE of views is not supported; recreate the view".into(),
            )),
            dt_catalog::EntityKind::DynamicTable(meta) => {
                let mut meta = (**meta).clone();
                meta.error_count = 0;
                let target = match meta.target_lag {
                    TargetLagSpec::Duration(d) => TargetLag::Duration(d),
                    TargetLagSpec::Downstream => TargetLag::Downstream,
                };
                let upstream = meta.upstream.clone();
                let warehouse = meta.warehouse.clone();
                let id = self
                    .catalog
                    .create_dynamic_table(name, meta, now, role, false)?;
                let fork = self.tables[&src.id].fork();
                self.tables.insert(id, Arc::new(fork));
                self.dt_warehouse.insert(id, warehouse);
                self.scheduler.register(id, target, upstream);
                // Carry over the source's progress: frontier, refresh-ts
                // mapping for its current data timestamp, Active state.
                let mut carried = None;
                if let Some(frontier) = self.frontiers.get(&src.id).cloned() {
                    let ts = frontier.refresh_ts;
                    let version = self.tables[&id].latest_version();
                    let commit_ts = self.txn.hlc().tick();
                    self.refresh_map.record(id, ts, version, commit_ts);
                    self.frontiers.insert(id, frontier.clone());
                    self.scheduler.mark_initialized(id, ts)?;
                    self.catalog.set_dt_state(id, DtState::Active, now)?;
                    carried = Some((ts, version, commit_ts, frontier));
                }
                if self.wal_enabled() {
                    // One batch (one fsync): the clone's catalog record,
                    // then the carried-over refresh-map/frontier entry.
                    let mut records = vec![WalRecord::Catalog {
                        stamp: self.txn.hlc().tick(),
                        catalog: self.catalog.to_bytes(),
                        meta: self.engine_meta(),
                        side_effect: SideEffect::CloneStore {
                            source: src.id,
                            target: id,
                        },
                    }];
                    if let Some((ts, version, commit_ts, frontier)) = carried {
                        records.push(WalRecord::Refresh {
                            dt: id,
                            txn: dt_common::TxnId(0),
                            refresh_ts: ts,
                            commit_ts,
                            install: None,
                            version,
                            frontier: frontier.iter().collect(),
                            catalog: Vec::new(),
                        });
                    }
                    self.wal_append(&records)?;
                }
                Ok(ExecResult::Ok(format!(
                    "dynamic table {name} cloned from {source} (no reinitialization)"
                )))
            }
        }
    }

    /// The bound logical plan of a DT's stored definition (used by the
    /// operator-census harness, Figure 6).
    pub fn dt_plan(&self, name: &str) -> DtResult<LogicalPlan> {
        let e = self.catalog.resolve(name)?;
        let meta = e
            .as_dt()
            .ok_or_else(|| DtError::Unsupported(format!("'{name}' is not a dynamic table")))?;
        let parsed = dt_sql::parse(&meta.definition_sql)?;
        let ast::Statement::Query(q) = parsed else {
            return Err(DtError::internal("DT definition is not a query"));
        };
        Ok(self.bind_query(&q)?.plan)
    }

    /// Time-travel query: evaluate at a past instant by pinning the
    /// version each table had at `at` (an older frontier) and running the
    /// ordinary snapshot read path over it.
    pub fn query_at(&self, sql: &str, at: Timestamp) -> DtResult<QueryResult> {
        self.capture_snapshot(Some(at)).query(sql)
    }

    /// The isolation level guaranteed for a query (§4): PL-SI when the
    /// query reads a single DT and nothing else; PL-2 (Read Committed)
    /// otherwise.
    pub fn query_isolation_level(&self, sql: &str) -> DtResult<dt_isolation::IsolationLevel> {
        self.capture_snapshot(None).query_isolation_level(sql)
    }

    pub(crate) fn execute_plan_latest(&self, plan: &LogicalPlan) -> DtResult<Vec<Row>> {
        let tables = &self.tables;
        let is_dt = |id: EntityId| self.is_dt(id);
        let view = StorageView {
            tables,
            dt_entities: &is_dt,
            refresh_map: &self.refresh_map,
        };
        let uninitialized = |id: EntityId| {
            self.catalog
                .get(id)
                .ok()
                .and_then(|e| e.as_dt().map(|m| m.state == DtState::Initializing))
                .unwrap_or(false)
        };
        let provider = LatestProvider::new(view, &uninitialized);
        dt_exec::execute(&dt_plan::push_down_filters(plan), &provider)
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn base_table(&self, name: &str) -> DtResult<(EntityId, Schema)> {
        let e = self.catalog.resolve(name)?;
        match &e.kind {
            dt_catalog::EntityKind::Table { schema } => Ok((e.id, schema.clone())),
            _ => Err(DtError::Unsupported(format!(
                "DML targets must be base tables; '{name}' is a {}",
                e.kind.label()
            ))),
        }
    }

    fn commit_dml(
        &mut self,
        entity: EntityId,
        inserts: Vec<Row>,
        deletes: Vec<Row>,
    ) -> DtResult<usize> {
        let n = inserts.len() + deletes.len();
        let t = self.txn.begin();
        self.txn.try_lock(&t, entity)?;
        let commit_ts = self.txn.commit(&t)?;
        let store = self
            .tables
            .get(&entity)
            .ok_or_else(|| DtError::Storage(format!("no storage for {entity}")))?;
        if self.wal_enabled() {
            // Two-phase form of the same commit, so the physical install
            // record can be logged before anyone observes the version.
            let prep = store.prepare_change_at(store.latest_version(), inserts, deletes)?;
            let rec = prep.install_record();
            store.install_prepared(prep, commit_ts, t.id)?;
            self.wal_append(&[WalRecord::DmlCommit {
                commit_ts,
                txn: t.id,
                tables: vec![(entity, rec)],
            }])?;
        } else {
            store.commit_change(inserts, deletes, commit_ts, t.id)?;
        }
        Ok(n)
    }

    fn dml_insert(
        &mut self,
        table: &str,
        values: Vec<Vec<ast::Expr>>,
        query: Option<ast::Query>,
        params: &[Value],
    ) -> DtResult<ExecResult> {
        let change = dml::plan_insert(self, table, values, query, params)?;
        self.commit_dml(change.entity, change.inserts, change.deletes)?;
        Ok(ExecResult::Count(change.count))
    }

    fn dml_delete(
        &mut self,
        table: &str,
        predicate: Option<ast::Expr>,
        params: &[Value],
    ) -> DtResult<ExecResult> {
        let change = dml::plan_delete(self, table, predicate, params)?;
        self.commit_dml(change.entity, change.inserts, change.deletes)?;
        Ok(ExecResult::Count(change.count))
    }

    fn dml_update(
        &mut self,
        table: &str,
        assignments: Vec<(String, ast::Expr)>,
        predicate: Option<ast::Expr>,
        params: &[Value],
    ) -> DtResult<ExecResult> {
        let change = dml::plan_update(self, table, assignments, predicate, params)?;
        self.commit_dml(change.entity, change.inserts, change.deletes)?;
        Ok(ExecResult::Count(change.count))
    }

    // ------------------------------------------------------------------
    // Dynamic tables
    // ------------------------------------------------------------------

    fn create_dynamic_table(
        &mut self,
        original_sql: &str,
        cdt: ast::CreateDynamicTable,
        role: &str,
    ) -> DtResult<ExecResult> {
        // The warehouse must exist (§3.3.1).
        self.warehouses.get(&cdt.warehouse)?;
        let out = self.bind_query(&cdt.query)?;
        if out.plan.max_parameter().is_some() {
            return Err(DtError::Unsupported(
                "`?` placeholders are not allowed in a dynamic table's \
                 defining query"
                    .into(),
            ));
        }
        let differentiable = out.plan.is_differentiable();
        let refresh_mode = match cdt.refresh_mode {
            ast::RefreshModeOption::Auto => {
                if differentiable {
                    RefreshMode::Incremental
                } else {
                    RefreshMode::Full
                }
            }
            ast::RefreshModeOption::Full => RefreshMode::Full,
            ast::RefreshModeOption::Incremental => {
                if !differentiable {
                    return Err(DtError::Unsupported(
                        "query is not incrementally maintainable (contains \
                         ORDER BY/LIMIT, scalar aggregates, or unpartitioned \
                         window functions); use REFRESH_MODE = FULL"
                            .into(),
                    ));
                }
                RefreshMode::Incremental
            }
        };
        let upstream = out.plan.scanned_entities();
        let target_lag = match cdt.target_lag {
            ast::TargetLag::Duration(d) => TargetLagSpec::Duration(d),
            ast::TargetLag::Downstream => TargetLagSpec::Downstream,
        };
        // Extract the defining query text: everything after the AS keyword.
        let definition_sql = extract_defining_query(original_sql)?;
        let meta = DynamicTableMeta {
            target_lag,
            warehouse: cdt.warehouse.to_ascii_lowercase(),
            refresh_mode,
            definition_sql,
            upstream: upstream.clone(),
            used_columns: out.used_columns.into_iter().collect(),
            state: DtState::Initializing,
            error_count: 0,
            definition_fingerprint: 0, // set by the catalog
        };
        let now = self.now();
        let id = self
            .catalog
            .create_dynamic_table(&cdt.name, meta, now, role, cdt.or_replace)?;
        // Stored schema: $ROW_ID then the payload columns.
        let mut cols = vec![Column::new("$row_id", DataType::Str)];
        cols.extend(out.plan.schema().columns().iter().cloned());
        let stored_schema = Schema::new(cols);
        self.tables.insert(
            id,
            Arc::new(TableStore::with_partition_capacity(
                stored_schema.clone(),
                now,
                dt_common::TxnId(0),
                self.config.partition_capacity,
            )),
        );
        self.dt_warehouse
            .insert(id, cdt.warehouse.to_ascii_lowercase());
        let sched_lag = match cdt.target_lag {
            ast::TargetLag::Duration(d) => TargetLag::Duration(d),
            ast::TargetLag::Downstream => TargetLag::Downstream,
        };
        self.scheduler.register(id, sched_lag, upstream);
        // Logged *before* the initial refresh so replay creates the DT's
        // store before it replays that refresh's install.
        self.wal_log_catalog(SideEffect::CreateStore {
            entity: id,
            schema: stored_schema,
            partition_capacity: self.config.partition_capacity,
            created_ts: now,
        })?;
        if cdt.initialize_on_create {
            self.initialize_dt(id)?;
        }
        Ok(ExecResult::Ok(format!("dynamic table {} created", cdt.name)))
    }

    /// Initialize a DT (§3.1.2): pick an initialization data timestamp that
    /// reuses recent upstream data where possible, ensure the upstream
    /// chain has data at that timestamp, then run the initial refresh.
    pub fn initialize_dt(&mut self, id: EntityId) -> DtResult<()> {
        // Take "now" from the HLC: strictly after every commit so far, so
        // the initialization sees all previously committed data.
        let now = self.txn.hlc().tick();
        let mut ts = self.scheduler.choose_init_ts(id, now);
        // If any upstream DT is already ahead of the chosen timestamp, we
        // cannot rewind it; fall forward to now.
        for up in self.catalog.upstream_of(id) {
            if self.is_dt(up) {
                if let Some(st) = self.scheduler.state(up) {
                    if st.last_data_ts.map(|t| t > ts).unwrap_or(false) {
                        ts = now;
                    }
                }
            }
        }
        self.ensure_upstream_at(id, ts)?;
        let outcome = self.run_refresh(id, ts, true)?;
        if let RefreshAction::Failed(msg) = &outcome.action {
            return Err(DtError::Evaluation(format!(
                "initialization failed: {msg}"
            )));
        }
        self.scheduler.mark_initialized(id, ts)?;
        self.catalog.set_dt_state(id, DtState::Active, now)?;
        self.wal_log_catalog(SideEffect::None)?;
        Ok(())
    }

    /// Ensure every upstream DT of `id` has data at exactly `ts`,
    /// refreshing the chain in dependency order where needed.
    fn ensure_upstream_at(&mut self, id: EntityId, ts: Timestamp) -> DtResult<()> {
        for up in self.catalog.upstream_of(id) {
            if !self.is_dt(up) {
                continue;
            }
            if self.refresh_map.exact_version_for(up, ts).is_ok() {
                continue;
            }
            self.ensure_upstream_at(up, ts)?;
            let outcome = self.run_refresh(up, ts, false)?;
            if let RefreshAction::Failed(msg) = &outcome.action {
                return Err(DtError::Evaluation(format!(
                    "upstream refresh of {up} failed: {msg}"
                )));
            }
            self.scheduler.mark_initialized(up, ts)?;
        }
        Ok(())
    }

    /// Manual refresh (§3.2): data timestamp after the command was issued;
    /// refreshes the whole upstream chain. Returns the number of refreshes
    /// executed. The clock advances by each refresh's duration (the command
    /// blocks).
    pub fn manual_refresh(&mut self, name: &str, role: &str) -> DtResult<usize> {
        let id = self.catalog.resolve(name)?.id;
        let meta = self
            .catalog
            .get(id)?
            .as_dt()
            .ok_or_else(|| DtError::Unsupported(format!("'{name}' is not a dynamic table")))?;
        // OPERATE or OWNERSHIP required (§3.4), checked against the
        // *session* role the command arrived on.
        self.catalog
            .check_privilege(role, name, dt_catalog::Privilege::Operate)?;
        let _ = meta;
        // §3.2: a manual refresh chooses a data timestamp after the command
        // was issued (the HLC guarantees it is after every prior commit).
        let now = self.txn.hlc().tick();
        let plan = self.scheduler.manual_refresh_plan(id, now);
        let mut executed = 0;
        for cmd in plan {
            let outcome = self.run_refresh(cmd.dt, cmd.refresh_ts, false)?;
            let wh_name = self.dt_warehouse[&cmd.dt].clone();
            let units = outcome.work_units;
            let start = self.now();
            let duration = if units > 0.0 {
                self.warehouses.get_mut(&wh_name)?.execute(start, units)
            } else {
                Duration::ZERO
            };
            self.clock.advance(duration);
            let ended = self.now();
            let suspended = self
                .scheduler
                .report(cmd.dt, cmd.refresh_ts, &outcome, ended)?;
            if suspended {
                self.catalog
                    .set_dt_state(cmd.dt, DtState::SuspendedOnErrors, ended)?;
                self.wal_log_catalog(SideEffect::None)?;
            }
            executed += 1;
        }
        Ok(executed)
    }
}

/// DML planned against the live latest state (the legacy auto-commit path:
/// prepared DML, the `Database` shim, and internal callers that already
/// hold the engine write lock). Transactions plan against their pinned
/// snapshot instead — see [`crate::Transaction`].
impl DmlSource for EngineState {
    fn target_table(&self, name: &str) -> DtResult<(EntityId, Schema)> {
        self.base_table(name)
    }

    fn entity_name(&self, id: EntityId) -> DtResult<String> {
        Ok(self.catalog.get(id)?.name.clone())
    }

    fn bind_query(&self, q: &ast::Query) -> DtResult<BindOutput> {
        EngineState::bind_query(self, q)
    }

    fn execute_plan(&self, plan: &LogicalPlan) -> DtResult<Vec<Row>> {
        self.execute_plan_latest(plan)
    }

    fn scan_base(&self, id: EntityId) -> DtResult<Vec<Row>> {
        let store = self
            .tables
            .get(&id)
            .ok_or_else(|| DtError::Storage(format!("no storage for {id}")))?;
        store.scan(store.latest_version())
    }
}

/// Reject `?` placeholders in contexts that take no bindings (time travel,
/// isolation analysis, snapshot reads): an unbound parameter must error up
/// front, not surface as a silently empty result.
pub(crate) fn reject_placeholders(stmt: &ast::Statement) -> DtResult<()> {
    let n = stmt.placeholder_count();
    if n > 0 {
        return Err(DtError::Binding(format!(
            "statement has {n} `?` placeholder(s); this entry point takes \
             no parameter bindings"
        )));
    }
    Ok(())
}

/// Extract the defining query text (everything after the first top-level
/// ` AS `) from a CREATE DYNAMIC TABLE statement.
fn extract_defining_query(sql: &str) -> DtResult<String> {
    let lower = sql.to_ascii_lowercase();
    let mut idx = None;
    let bytes = lower.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    while i + 4 <= bytes.len() {
        match bytes[i] {
            b'\'' => in_str = !in_str,
            b'a' if !in_str
                && lower[i..].starts_with("as")
                && (i == 0 || (bytes[i - 1] as char).is_ascii_whitespace())
                && lower[i + 2..]
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_whitespace())
                    .unwrap_or(false) =>
            {
                idx = Some(i + 2);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let idx = idx.ok_or_else(|| DtError::internal("CREATE DYNAMIC TABLE without AS"))?;
    Ok(sql[idx..].trim().trim_end_matches(';').to_string())
}

/// Views store their body; for CREATE VIEW we extract it the same way.
fn render_query_validation_source(sql: &str) -> DtResult<String> {
    extract_defining_query(sql)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_defining_query_finds_top_level_as() {
        let sql = "CREATE DYNAMIC TABLE t TARGET_LAG = '1 minute' WAREHOUSE = wh \
                   AS SELECT a AS b FROM x;";
        assert_eq!(extract_defining_query(sql).unwrap(), "SELECT a AS b FROM x");
    }

    #[test]
    fn extract_skips_as_inside_strings() {
        let sql = "CREATE DYNAMIC TABLE t TARGET_LAG = ' as ' WAREHOUSE = wh AS SELECT 1 x";
        assert_eq!(extract_defining_query(sql).unwrap(), "SELECT 1 x");
    }
}
