//! Shared DML planning: computing the row-level effect of INSERT /
//! DELETE / UPDATE statements against *some* view of the database.
//!
//! Two consumers share this logic. [`crate::database::EngineState`] plans
//! against the live latest state under the engine write lock (the legacy
//! auto-commit path used by prepared statements and the `Database` shim),
//! and [`crate::Transaction`] plans against its pinned snapshot overlaid
//! with its own buffered write set. The row computation — value binding,
//! coercion, predicate matching, assignment evaluation — is identical;
//! only the scan source and what happens to the resulting change differ
//! (immediate commit vs buffering until `COMMIT`).

use dt_common::{DtError, DtResult, EntityId, Row, Schema, Value};
use dt_plan::{BindOutput, LogicalPlan};
use dt_sql::ast;

/// The view a DML statement is planned against: name resolution, query
/// binding/execution, and base-table scans.
pub(crate) trait DmlSource {
    /// Resolve a DML target to a base table (errors for views and DTs).
    fn target_table(&self, name: &str) -> DtResult<(EntityId, Schema)>;
    /// The catalog name of an entity (used to bind predicates and
    /// assignment expressions in the table's scope).
    fn entity_name(&self, id: EntityId) -> DtResult<String>;
    /// Bind a query in this view's catalog.
    fn bind_query(&self, q: &ast::Query) -> DtResult<BindOutput>;
    /// Execute a bound plan against this view's data.
    fn execute_plan(&self, plan: &LogicalPlan) -> DtResult<Vec<Row>>;
    /// The currently visible rows of a base table in this view.
    fn scan_base(&self, id: EntityId) -> DtResult<Vec<Row>>;
}

/// The row-level effect of one DML statement: rows to insert and rows to
/// delete on one base table, plus the statement's user-visible row count.
#[derive(Debug, Clone)]
pub(crate) struct DmlChange {
    /// The target base table.
    pub entity: EntityId,
    /// Rows the statement adds.
    pub inserts: Vec<Row>,
    /// Rows the statement removes (multiset, by value).
    pub deletes: Vec<Row>,
    /// Rows inserted / deleted / matched by UPDATE — what
    /// `ExecResult::Count` reports.
    pub count: usize,
}

/// Coerce a value row to a table schema (arity + type checks).
fn coerce_row(schema: &Schema, values: Vec<Value>) -> DtResult<Row> {
    if values.len() != schema.len() {
        return Err(DtError::Type(format!(
            "INSERT arity {} does not match table arity {}",
            values.len(),
            schema.len()
        )));
    }
    let mut out = Vec::with_capacity(values.len());
    for (v, c) in values.into_iter().zip(schema.columns()) {
        out.push(if v.is_null() { v } else { v.cast(c.ty)? });
    }
    Ok(Row::new(out))
}

/// Build `SELECT <items> [FROM <table>] [WHERE <predicate>]` — the scaffold
/// used to bind VALUES expressions, predicates, and SET assignments in the
/// right scope.
fn scaffold_query(
    items: Vec<ast::SelectItem>,
    from: Option<String>,
    where_clause: Option<ast::Expr>,
) -> ast::Query {
    ast::Query {
        select: ast::SelectBlock {
            distinct: false,
            items,
            from: from.map(|name| ast::TableRef::Named { name, alias: None }),
            joins: vec![],
            where_clause,
            group_by: ast::GroupBy::None,
            having: None,
            order_by: vec![],
            limit: None,
        },
        union_all: vec![],
        for_update: false,
    }
}

/// Plan `INSERT INTO table VALUES ... | <query>`.
pub(crate) fn plan_insert(
    src: &dyn DmlSource,
    table: &str,
    values: Vec<Vec<ast::Expr>>,
    query: Option<ast::Query>,
    params: &[Value],
) -> DtResult<DmlChange> {
    let (id, schema) = src.target_table(table)?;
    let mut rows = Vec::new();
    if let Some(q) = query {
        let out = src.bind_query(&q)?;
        if out.plan.schema().len() != schema.len() {
            return Err(DtError::Type(format!(
                "INSERT query arity {} does not match table arity {}",
                out.plan.schema().len(),
                schema.len()
            )));
        }
        let plan = out.plan.bind_params(params)?;
        for r in src.execute_plan(&plan)? {
            rows.push(coerce_row(&schema, r.values().to_vec())?);
        }
    } else {
        // VALUES rows: bind each expression over an empty scope.
        for row_exprs in values {
            let mut vals = Vec::with_capacity(row_exprs.len());
            for e in row_exprs {
                let q = scaffold_query(
                    vec![ast::SelectItem::Expr {
                        expr: e,
                        alias: None,
                    }],
                    None,
                    None,
                );
                let out = src.bind_query(&q)?;
                let plan = out.plan.bind_params(params)?;
                let r = src.execute_plan(&plan)?;
                vals.push(r[0].get(0).clone());
            }
            rows.push(coerce_row(&schema, vals)?);
        }
    }
    let count = rows.len();
    Ok(DmlChange {
        entity: id,
        inserts: rows,
        deletes: vec![],
        count,
    })
}

/// The visible rows of `id` matching `predicate` (all rows when absent).
fn matching_rows(
    src: &dyn DmlSource,
    id: EntityId,
    predicate: &Option<ast::Expr>,
    params: &[Value],
) -> DtResult<Vec<Row>> {
    let all = src.scan_base(id)?;
    let Some(p) = predicate else {
        return Ok(all);
    };
    // Bind the predicate against the table's schema.
    let q = scaffold_query(
        vec![ast::SelectItem::Wildcard],
        Some(src.entity_name(id)?),
        Some(p.clone()),
    );
    let out = src.bind_query(&q)?;
    let LogicalPlan::Project { input, .. } = &out.plan else {
        return Err(DtError::internal("expected projection"));
    };
    let LogicalPlan::Filter { predicate, .. } = input.as_ref() else {
        return Err(DtError::internal("expected filter"));
    };
    let predicate = predicate.bind_params(params)?;
    let mut out_rows = Vec::new();
    for r in all {
        if predicate.eval(&r)?.is_true() {
            out_rows.push(r);
        }
    }
    Ok(out_rows)
}

/// Plan `DELETE FROM table [WHERE predicate]`.
pub(crate) fn plan_delete(
    src: &dyn DmlSource,
    table: &str,
    predicate: Option<ast::Expr>,
    params: &[Value],
) -> DtResult<DmlChange> {
    let (id, _schema) = src.target_table(table)?;
    let doomed = matching_rows(src, id, &predicate, params)?;
    let count = doomed.len();
    Ok(DmlChange {
        entity: id,
        inserts: vec![],
        deletes: doomed,
        count,
    })
}

/// Plan `UPDATE table SET col = expr, ... [WHERE predicate]`.
pub(crate) fn plan_update(
    src: &dyn DmlSource,
    table: &str,
    assignments: Vec<(String, ast::Expr)>,
    predicate: Option<ast::Expr>,
    params: &[Value],
) -> DtResult<DmlChange> {
    let (id, schema) = src.target_table(table)?;
    let old = matching_rows(src, id, &predicate, params)?;
    // Bind assignment expressions against the table schema.
    let mut bound: Vec<(usize, dt_plan::ScalarExpr)> = Vec::new();
    for (col, e) in &assignments {
        let idx = schema.index_of(col)?;
        let q = scaffold_query(
            vec![ast::SelectItem::Expr {
                expr: e.clone(),
                alias: None,
            }],
            Some(src.entity_name(id)?),
            None,
        );
        let out = src.bind_query(&q)?;
        let LogicalPlan::Project { exprs, .. } = &out.plan else {
            return Err(DtError::internal("expected projection"));
        };
        bound.push((idx, exprs[0].bind_params(params)?));
    }
    let mut new_rows = Vec::with_capacity(old.len());
    for r in &old {
        let mut vals = r.values().to_vec();
        for (idx, e) in &bound {
            let v = e.eval(r)?;
            vals[*idx] = if v.is_null() {
                v
            } else {
                v.cast(schema.column(*idx).ty)?
            };
        }
        new_rows.push(Row::new(vals));
    }
    let count = old.len();
    Ok(DmlChange {
        entity: id,
        inserts: new_rows,
        deletes: old,
        count,
    })
}
