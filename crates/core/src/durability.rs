//! Durability: WAL records, checkpoints, and crash recovery.
//!
//! With [`dt_common::DurabilityMode::Wal`] configured, the engine logs
//! every state mutation to a segmented write-ahead log (`dt-wal`) before
//! the mutation becomes visible to any reader:
//!
//! * **Catalog records** carry a *full* catalog image (plus warehouse
//!   definitions and the DT→warehouse map) after every DDL, grant, or
//!   warehouse mutation — trivially idempotent to replay, and faithful to
//!   the serialization order because every append happens under the engine
//!   write lock. A side effect describes the storage action that rode
//!   along (a new table store, a zero-copy clone).
//! * **DML commit records** carry each committed transaction's physical
//!   install — exact partition ids, rows, and version metadata per touched
//!   table — stamped with the real HLC commit timestamp, so replay
//!   reconstructs byte-identical version chains at the original commit
//!   instants (time travel included).
//! * **Refresh records** carry a DT refresh's storage install (if any),
//!   the refresh-ts → version mapping entry, the new frontier, and a
//!   catalog image (error counters, evolution fingerprints).
//!
//! Both group-commit leaders (the DML [`dt_txn::CommitQueue`] and the
//! refresh install queue) append their whole batch with **one** `fsync`
//! while still holding the engine write lock: durable strictly before
//! acknowledged *and* before visible, at ≤ 1 fsync per batch.
//!
//! A checkpoint snapshots the entire engine image — catalog, every table
//! store (dropped ones included, for `UNDROP`), frontiers, and the
//! refresh-timestamp map — then rolls the WAL and removes sealed segments.
//! Recovery loads the latest checkpoint, replays the WAL tail (skipping
//! records at or below the checkpoint watermark), truncates a torn tail,
//! and rebuilds the scheduler from the recovered catalog.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dt_catalog::{Catalog, DtState, TargetLagSpec};
use dt_common::{
    DtError, DtResult, Duration, EntityId, Schema, Timestamp, TxnId, VersionId,
};
use dt_scheduler::TargetLag;
use dt_storage::{TableStore, VersionInstallRecord};
use dt_txn::Frontier;
use dt_wal::codec::{get_schema, put_schema};
use dt_wal::{Reader, Wal, WalStats, WalStatsSnapshot, Writer};

use crate::database::{DbConfig, EngineState};

/// The durable half of an engine: the segmented WAL (behind its own lock,
/// so appends from a leader holding the engine write lock never contend
/// with stats readers) plus the auto-checkpoint accounting. The `Engine`
/// handle keeps a clone for lock-free `SHOW STATS`.
pub(crate) struct WalShared {
    wal: Mutex<Wal>,
    stats: Arc<WalStats>,
    /// Payload bytes appended since the last checkpoint (auto-checkpoint
    /// trigger).
    since_checkpoint: AtomicU64,
    /// Auto-checkpoint threshold, from [`DbConfig::wal_checkpoint_bytes`].
    checkpoint_bytes: u64,
    dir: PathBuf,
}

impl WalShared {
    /// Current WAL telemetry (lock-free).
    pub(crate) fn stats(&self) -> WalStatsSnapshot {
        self.stats.snapshot()
    }
}

/// Warehouse definitions and the DT→warehouse assignment — engine state
/// that lives outside the catalog but must survive a restart.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct EngineMeta {
    /// `(name, nodes, auto_suspend)`, sorted by name.
    warehouses: Vec<(String, u32, Duration)>,
    /// `(dt, warehouse name)`, sorted by entity id.
    dt_warehouse: Vec<(EntityId, String)>,
}

impl EngineMeta {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.warehouses.len());
        for (name, nodes, auto_suspend) in &self.warehouses {
            w.put_str(name);
            w.put_u32(*nodes);
            w.put_i64(auto_suspend.as_micros());
        }
        w.put_len(self.dt_warehouse.len());
        for (id, name) in &self.dt_warehouse {
            w.put_u64(id.0);
            w.put_str(name);
        }
    }

    fn decode(r: &mut Reader<'_>) -> DtResult<EngineMeta> {
        let n = r.get_len(16)?;
        let mut warehouses = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            let nodes = r.get_u32()?;
            let auto_suspend = Duration::from_micros(r.get_i64()?);
            warehouses.push((name, nodes, auto_suspend));
        }
        let n = r.get_len(12)?;
        let mut dt_warehouse = Vec::with_capacity(n);
        for _ in 0..n {
            let id = EntityId(r.get_u64()?);
            let name = r.get_str()?;
            dt_warehouse.push((id, name));
        }
        Ok(EngineMeta {
            warehouses,
            dt_warehouse,
        })
    }
}

/// The storage action that rode along with a catalog mutation. Replay
/// applies it only when the target store does not already exist — entity
/// ids are never reused, so presence means the record was already applied.
pub(crate) enum SideEffect {
    /// Pure catalog/privilege/warehouse change; storage untouched.
    None,
    /// A new (empty) table store was created for `entity` with the given
    /// *stored* schema (DTs include `$ROW_ID`).
    CreateStore {
        entity: EntityId,
        schema: Schema,
        partition_capacity: usize,
        created_ts: Timestamp,
    },
    /// `target`'s store is a zero-copy fork of `source`'s (CLONE, §3.4).
    CloneStore { source: EntityId, target: EntityId },
}

const EFFECT_NONE: u8 = 0;
const EFFECT_CREATE: u8 = 1;
const EFFECT_CLONE: u8 = 2;

impl SideEffect {
    fn encode(&self, w: &mut Writer) {
        match self {
            SideEffect::None => w.put_u8(EFFECT_NONE),
            SideEffect::CreateStore {
                entity,
                schema,
                partition_capacity,
                created_ts,
            } => {
                w.put_u8(EFFECT_CREATE);
                w.put_u64(entity.0);
                put_schema(w, schema);
                w.put_u64(*partition_capacity as u64);
                w.put_i64(created_ts.as_micros());
            }
            SideEffect::CloneStore { source, target } => {
                w.put_u8(EFFECT_CLONE);
                w.put_u64(source.0);
                w.put_u64(target.0);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> DtResult<SideEffect> {
        match r.get_u8()? {
            EFFECT_NONE => Ok(SideEffect::None),
            EFFECT_CREATE => {
                let entity = EntityId(r.get_u64()?);
                let schema = get_schema(r)?;
                let partition_capacity = r.get_u64()? as usize;
                let created_ts = Timestamp::from_micros(r.get_i64()?);
                if partition_capacity == 0 {
                    return Err(DtError::Corruption(
                        "CreateStore side effect with zero partition capacity".into(),
                    ));
                }
                Ok(SideEffect::CreateStore {
                    entity,
                    schema,
                    partition_capacity,
                    created_ts,
                })
            }
            EFFECT_CLONE => Ok(SideEffect::CloneStore {
                source: EntityId(r.get_u64()?),
                target: EntityId(r.get_u64()?),
            }),
            t => Err(DtError::Corruption(format!(
                "unknown WAL side-effect tag {t}"
            ))),
        }
    }
}

/// One durable engine mutation. Every record carries a unique HLC stamp;
/// replay skips records at or below the checkpoint watermark, which makes
/// a crash between checkpoint write and segment removal harmless.
pub(crate) enum WalRecord {
    /// Full catalog + engine-meta image after a DDL/grant/warehouse
    /// mutation, plus the storage side effect that rode along.
    Catalog {
        stamp: Timestamp,
        catalog: Vec<u8>,
        meta: EngineMeta,
        side_effect: SideEffect,
    },
    /// One committed DML transaction: the physical install per touched
    /// table, all at one commit timestamp.
    DmlCommit {
        commit_ts: Timestamp,
        txn: TxnId,
        tables: Vec<(EntityId, VersionInstallRecord)>,
    },
    /// One installed DT refresh. The storage install carries its own
    /// stamp: the serial path stamps storage and the refresh map
    /// differently (§5.3), and replay must reproduce both exactly.
    Refresh {
        dt: EntityId,
        txn: TxnId,
        refresh_ts: Timestamp,
        /// The refresh-map commit stamp.
        commit_ts: Timestamp,
        /// `(storage stamp, physical install)`; `None` for NO_DATA and
        /// carried-over clone frontiers.
        install: Option<(Timestamp, VersionInstallRecord)>,
        /// The version the refresh-map entry points at.
        version: VersionId,
        /// The new frontier: `(refresh_ts, per-source versions)`.
        frontier: Vec<(EntityId, VersionId)>,
        /// Catalog image after the refresh's metadata updates (evolution
        /// fingerprint, error-counter reset). Empty means unchanged.
        catalog: Vec<u8>,
    },
}

const REC_CATALOG: u8 = 0;
const REC_DML: u8 = 1;
const REC_REFRESH: u8 = 2;

impl WalRecord {
    /// The stamp replay compares against the checkpoint watermark. Appends
    /// happen under the engine write lock and stamps come from the shared
    /// HLC, so WAL order equals stamp order.
    fn stamp(&self) -> Timestamp {
        match self {
            WalRecord::Catalog { stamp, .. } => *stamp,
            WalRecord::DmlCommit { commit_ts, .. } => *commit_ts,
            WalRecord::Refresh { commit_ts, .. } => *commit_ts,
        }
    }

    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WalRecord::Catalog {
                stamp,
                catalog,
                meta,
                side_effect,
            } => {
                w.put_u8(REC_CATALOG);
                w.put_i64(stamp.as_micros());
                w.put_bytes(catalog);
                meta.encode(&mut w);
                side_effect.encode(&mut w);
            }
            WalRecord::DmlCommit {
                commit_ts,
                txn,
                tables,
            } => {
                w.put_u8(REC_DML);
                w.put_i64(commit_ts.as_micros());
                w.put_u64(txn.0);
                w.put_len(tables.len());
                for (id, rec) in tables {
                    w.put_u64(id.0);
                    dt_storage::durable::put_install_record(&mut w, rec);
                }
            }
            WalRecord::Refresh {
                dt,
                txn,
                refresh_ts,
                commit_ts,
                install,
                version,
                frontier,
                catalog,
            } => {
                w.put_u8(REC_REFRESH);
                w.put_u64(dt.0);
                w.put_u64(txn.0);
                w.put_i64(refresh_ts.as_micros());
                w.put_i64(commit_ts.as_micros());
                match install {
                    Some((ts, rec)) => {
                        w.put_bool(true);
                        w.put_i64(ts.as_micros());
                        dt_storage::durable::put_install_record(&mut w, rec);
                    }
                    None => w.put_bool(false),
                }
                w.put_u64(version.0);
                w.put_len(frontier.len());
                for (id, v) in frontier {
                    w.put_u64(id.0);
                    w.put_u64(v.0);
                }
                w.put_bytes(catalog);
            }
        }
        w.into_bytes()
    }

    pub(crate) fn from_bytes(bytes: &[u8]) -> DtResult<WalRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.get_u8()? {
            REC_CATALOG => {
                let stamp = Timestamp::from_micros(r.get_i64()?);
                let catalog = r.get_bytes()?.to_vec();
                let meta = EngineMeta::decode(&mut r)?;
                let side_effect = SideEffect::decode(&mut r)?;
                WalRecord::Catalog {
                    stamp,
                    catalog,
                    meta,
                    side_effect,
                }
            }
            REC_DML => {
                let commit_ts = Timestamp::from_micros(r.get_i64()?);
                let txn = TxnId(r.get_u64()?);
                let n = r.get_len(9)?;
                let mut tables = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = EntityId(r.get_u64()?);
                    let rec = dt_storage::durable::get_install_record(&mut r)?;
                    tables.push((id, rec));
                }
                WalRecord::DmlCommit {
                    commit_ts,
                    txn,
                    tables,
                }
            }
            REC_REFRESH => {
                let dt = EntityId(r.get_u64()?);
                let txn = TxnId(r.get_u64()?);
                let refresh_ts = Timestamp::from_micros(r.get_i64()?);
                let commit_ts = Timestamp::from_micros(r.get_i64()?);
                let install = if r.get_bool()? {
                    let ts = Timestamp::from_micros(r.get_i64()?);
                    let rec = dt_storage::durable::get_install_record(&mut r)?;
                    Some((ts, rec))
                } else {
                    None
                };
                let version = VersionId(r.get_u64()?);
                let n = r.get_len(16)?;
                let mut frontier = Vec::with_capacity(n);
                for _ in 0..n {
                    frontier.push((EntityId(r.get_u64()?), VersionId(r.get_u64()?)));
                }
                let catalog = r.get_bytes()?.to_vec();
                WalRecord::Refresh {
                    dt,
                    txn,
                    refresh_ts,
                    commit_ts,
                    install,
                    version,
                    frontier,
                    catalog,
                }
            }
            t => return Err(DtError::Corruption(format!("unknown WAL record tag {t}"))),
        };
        r.finish()?;
        Ok(rec)
    }
}

/// A refresh's WAL payload, staged before the caller's final catalog
/// mutations (success counters) so the record can carry the *post*-update
/// catalog image.
pub(crate) struct PendingRefreshWal {
    pub(crate) dt: EntityId,
    pub(crate) txn: TxnId,
    pub(crate) refresh_ts: Timestamp,
    pub(crate) commit_ts: Timestamp,
    pub(crate) install: Option<(Timestamp, VersionInstallRecord)>,
    pub(crate) version: VersionId,
    pub(crate) frontier: Frontier,
}

impl PendingRefreshWal {
    pub(crate) fn into_record(self, catalog: Vec<u8>) -> WalRecord {
        WalRecord::Refresh {
            dt: self.dt,
            txn: self.txn,
            refresh_ts: self.refresh_ts,
            commit_ts: self.commit_ts,
            install: self.install,
            version: self.version,
            frontier: self.frontier.iter().collect(),
            catalog,
        }
    }
}

/// One entity's frontier in a checkpoint image:
/// `(entity, refresh_ts, sorted source versions)`.
type FrontierEntry = (EntityId, Timestamp, Vec<(EntityId, VersionId)>);

/// The checkpoint payload: a complete engine image at one instant, taken
/// under the engine write lock.
struct CheckpointImage {
    /// Replay skips WAL records stamped at or below this (a fresh HLC tick,
    /// strictly above every record appended so far).
    watermark: Timestamp,
    /// Simulated clock position.
    now: Timestamp,
    catalog: Vec<u8>,
    meta: EngineMeta,
    /// Every table store, dropped entities included (`UNDROP`), by id.
    stores: Vec<(EntityId, dt_storage::StoreCheckpoint)>,
    /// Per-entity frontiers: `(entity, refresh_ts, source versions)`.
    frontiers: Vec<FrontierEntry>,
    /// The refresh-ts → version map (§5.3), required for exact-lookup
    /// snapshot isolation and time travel after a restart.
    refresh_map: Vec<(EntityId, Timestamp, VersionId, Timestamp)>,
}

impl CheckpointImage {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_i64(self.watermark.as_micros());
        w.put_i64(self.now.as_micros());
        w.put_bytes(&self.catalog);
        self.meta.encode(&mut w);
        w.put_len(self.stores.len());
        for (id, ck) in &self.stores {
            w.put_u64(id.0);
            dt_storage::durable::put_store(&mut w, ck);
        }
        w.put_len(self.frontiers.len());
        for (id, refresh_ts, pairs) in &self.frontiers {
            w.put_u64(id.0);
            w.put_i64(refresh_ts.as_micros());
            w.put_len(pairs.len());
            for (src, v) in pairs {
                w.put_u64(src.0);
                w.put_u64(v.0);
            }
        }
        w.put_len(self.refresh_map.len());
        for (id, refresh_ts, version, commit_ts) in &self.refresh_map {
            w.put_u64(id.0);
            w.put_i64(refresh_ts.as_micros());
            w.put_u64(version.0);
            w.put_i64(commit_ts.as_micros());
        }
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> DtResult<CheckpointImage> {
        let mut r = Reader::new(bytes);
        let watermark = Timestamp::from_micros(r.get_i64()?);
        let now = Timestamp::from_micros(r.get_i64()?);
        let catalog = r.get_bytes()?.to_vec();
        let meta = EngineMeta::decode(&mut r)?;
        let n = r.get_len(16)?;
        let mut stores = Vec::with_capacity(n);
        for _ in 0..n {
            let id = EntityId(r.get_u64()?);
            let ck = dt_storage::durable::get_store(&mut r)?;
            stores.push((id, ck));
        }
        let n = r.get_len(16)?;
        let mut frontiers = Vec::with_capacity(n);
        for _ in 0..n {
            let id = EntityId(r.get_u64()?);
            let refresh_ts = Timestamp::from_micros(r.get_i64()?);
            let m = r.get_len(16)?;
            let mut pairs = Vec::with_capacity(m);
            for _ in 0..m {
                pairs.push((EntityId(r.get_u64()?), VersionId(r.get_u64()?)));
            }
            frontiers.push((id, refresh_ts, pairs));
        }
        let n = r.get_len(32)?;
        let mut refresh_map = Vec::with_capacity(n);
        for _ in 0..n {
            let id = EntityId(r.get_u64()?);
            let refresh_ts = Timestamp::from_micros(r.get_i64()?);
            let version = VersionId(r.get_u64()?);
            let commit_ts = Timestamp::from_micros(r.get_i64()?);
            refresh_map.push((id, refresh_ts, version, commit_ts));
        }
        r.finish()?;
        Ok(CheckpointImage {
            watermark,
            now,
            catalog,
            meta,
            stores,
            frontiers,
            refresh_map,
        })
    }
}

impl EngineState {
    /// The durable half, when configured.
    pub(crate) fn wal_shared(&self) -> Option<&Arc<WalShared>> {
        self.wal.as_ref()
    }

    /// True when mutations must produce WAL records.
    pub(crate) fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Append `records` as one framed, CRC'd, fsynced batch — called by
    /// group-commit leaders and the serial mutation paths, always while the
    /// engine write lock is held, so durability strictly precedes
    /// visibility. Crosses the auto-checkpoint threshold afterwards when
    /// enough bytes accumulated.
    pub(crate) fn wal_append(&self, records: &[WalRecord]) -> DtResult<()> {
        let Some(shared) = &self.wal else {
            return Ok(());
        };
        if records.is_empty() {
            return Ok(());
        }
        let payloads: Vec<Vec<u8>> = records.iter().map(|r| r.to_bytes()).collect();
        let bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
        shared.wal.lock().append_batch(&payloads)?;
        let total = shared.since_checkpoint.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if total >= shared.checkpoint_bytes {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Log a catalog/warehouse/privilege mutation: a full catalog +
    /// engine-meta image plus the storage side effect, stamped with a
    /// fresh HLC tick.
    pub(crate) fn wal_log_catalog(&self, side_effect: SideEffect) -> DtResult<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        let record = WalRecord::Catalog {
            stamp: self.txn.hlc().tick(),
            catalog: self.catalog.to_bytes(),
            meta: self.engine_meta(),
            side_effect,
        };
        self.wal_append(&[record])
    }

    pub(crate) fn engine_meta(&self) -> EngineMeta {
        let mut dt_warehouse: Vec<(EntityId, String)> = self
            .dt_warehouse
            .iter()
            .map(|(id, name)| (*id, name.clone()))
            .collect();
        dt_warehouse.sort();
        EngineMeta {
            warehouses: self.warehouses.dump(),
            dt_warehouse,
        }
    }

    /// Write a checkpoint: the complete engine image, then roll the WAL
    /// and remove sealed segments behind it. Returns `false` (and does
    /// nothing) when the engine is not durable. Must be called with the
    /// engine write lock held (all callers are `&mut self` paths or
    /// group-commit leaders).
    pub(crate) fn write_checkpoint(&self) -> DtResult<bool> {
        let Some(shared) = &self.wal else {
            return Ok(false);
        };
        let mut stores: Vec<(EntityId, dt_storage::StoreCheckpoint)> = self
            .tables
            .iter()
            .map(|(id, store)| (*id, store.checkpoint_dump()))
            .collect();
        stores.sort_by_key(|(id, _)| *id);
        let mut frontiers: Vec<FrontierEntry> = self
            .frontiers
            .iter()
            .map(|(id, f)| {
                let mut pairs: Vec<(EntityId, VersionId)> = f.iter().collect();
                pairs.sort();
                (*id, f.refresh_ts, pairs)
            })
            .collect();
        frontiers.sort_by_key(|(id, _, _)| *id);
        let image = CheckpointImage {
            watermark: self.txn.hlc().tick(),
            now: self.now(),
            catalog: self.catalog.to_bytes(),
            meta: self.engine_meta(),
            stores,
            frontiers,
            refresh_map: self.refresh_map.dump(),
        };
        dt_wal::write_checkpoint(&shared.dir, &image.to_bytes(), &shared.stats)?;
        let mut wal = shared.wal.lock();
        wal.roll()?;
        wal.remove_sealed_segments()?;
        shared.since_checkpoint.store(0, Ordering::Relaxed);
        Ok(true)
    }
}

/// Open (or create) a durable engine state at `dir`: load the latest
/// checkpoint, replay the WAL tail, rebuild the scheduler, and leave the
/// WAL open for appending. The returned state has `wal` attached.
pub(crate) fn open_durable(config: DbConfig, dir: &Path) -> DtResult<EngineState> {
    std::fs::create_dir_all(dir)
        .map_err(|e| DtError::Io(format!("create WAL directory {}: {e}", dir.display())))?;
    let stats = Arc::new(WalStats::default());
    let mut state = EngineState::new(config.clone());
    let mut watermark = Timestamp::EPOCH;
    if let Some(bytes) = dt_wal::read_checkpoint(dir)? {
        let image = CheckpointImage::from_bytes(&bytes)?;
        watermark = image.watermark;
        state.clock.advance_to(image.now);
        state.catalog = Catalog::from_bytes(&image.catalog)?;
        apply_meta(&mut state, &image.meta)?;
        for (id, ck) in image.stores {
            state.tables.insert(id, Arc::new(ck.restore()?));
        }
        for (id, refresh_ts, pairs) in image.frontiers {
            let mut f = Frontier::at(refresh_ts);
            for (src, v) in pairs {
                f.set(src, v);
            }
            state.frontiers.insert(id, f);
        }
        for (id, refresh_ts, version, commit_ts) in image.refresh_map {
            state.refresh_map.record(id, refresh_ts, version, commit_ts);
        }
    }

    let (wal, recovered) = Wal::open(dir, Arc::clone(&stats))?;
    let mut replayed = 0u64;
    let mut max_stamp = watermark;
    for bytes in &recovered.records {
        let record = WalRecord::from_bytes(bytes)?;
        if record.stamp() <= watermark {
            continue;
        }
        max_stamp = max_stamp.max(record.stamp());
        replay_record(&mut state, record)?;
        replayed += 1;
    }
    stats.record_recovery(replayed);

    // Push the clock and HLC past everything recovered, so the first
    // post-recovery commit stamps strictly after the last pre-crash one.
    if max_stamp > Timestamp::EPOCH {
        state.clock.advance_to(max_stamp);
        state.txn.hlc().tick_after(max_stamp);
    }
    rebuild_scheduler(&mut state)?;

    state.wal = Some(Arc::new(WalShared {
        wal: Mutex::new(wal),
        stats,
        since_checkpoint: AtomicU64::new(0),
        checkpoint_bytes: config.wal_checkpoint_bytes,
        dir: dir.to_path_buf(),
    }));
    Ok(state)
}

fn apply_meta(state: &mut EngineState, meta: &EngineMeta) -> DtResult<()> {
    for (name, nodes, auto_suspend) in &meta.warehouses {
        // Warehouse definitions only; runtime accounting starts cold.
        state.warehouses.create(name, *nodes, *auto_suspend)?;
    }
    state.dt_warehouse = meta
        .dt_warehouse
        .iter()
        .map(|(id, name)| (*id, name.clone()))
        .collect();
    Ok(())
}

fn replay_record(state: &mut EngineState, record: WalRecord) -> DtResult<()> {
    match record {
        WalRecord::Catalog {
            catalog,
            meta,
            side_effect,
            ..
        } => {
            state.catalog = Catalog::from_bytes(&catalog)?;
            state.warehouses = dt_scheduler::WarehousePool::new();
            state.dt_warehouse = HashMap::new();
            apply_meta(state, &meta)?;
            match side_effect {
                SideEffect::None => {}
                SideEffect::CreateStore {
                    entity,
                    schema,
                    partition_capacity,
                    created_ts,
                } => {
                    state.tables.entry(entity).or_insert_with(|| {
                        Arc::new(TableStore::with_partition_capacity(
                            schema,
                            created_ts,
                            TxnId(0),
                            partition_capacity,
                        ))
                    });
                }
                SideEffect::CloneStore { source, target } => {
                    if !state.tables.contains_key(&target) {
                        let fork = state
                            .tables
                            .get(&source)
                            .ok_or_else(|| {
                                DtError::Corruption(format!(
                                    "WAL clone of {target} references missing source store {source}"
                                ))
                            })?
                            .fork();
                        state.tables.insert(target, Arc::new(fork));
                    }
                }
            }
        }
        WalRecord::DmlCommit {
            commit_ts,
            txn,
            tables,
        } => {
            for (id, rec) in tables {
                let store = state.tables.get(&id).ok_or_else(|| {
                    DtError::Corruption(format!(
                        "WAL commit references missing table store {id}"
                    ))
                })?;
                store.replay_install(&rec, commit_ts, txn)?;
            }
        }
        WalRecord::Refresh {
            dt,
            txn,
            refresh_ts,
            commit_ts,
            install,
            version,
            frontier,
            catalog,
        } => {
            if !catalog.is_empty() {
                state.catalog = Catalog::from_bytes(&catalog)?;
            }
            if let Some((install_ts, rec)) = install {
                let store = state.tables.get(&dt).ok_or_else(|| {
                    DtError::Corruption(format!(
                        "WAL refresh references missing DT store {dt}"
                    ))
                })?;
                store.replay_install(&rec, install_ts, txn)?;
            }
            state.refresh_map.record(dt, refresh_ts, version, commit_ts);
            let mut f = Frontier::at(refresh_ts);
            for (src, v) in frontier {
                f.set(src, v);
            }
            state.frontiers.insert(dt, f);
        }
    }
    Ok(())
}

/// Rebuild the scheduler's DAG from the recovered catalog: register every
/// live DT, mark initialized DTs from the refresh map, and restore
/// suspension flags. Runtime lag samples start fresh — the scheduler
/// re-learns cadence from the first post-recovery rounds.
fn rebuild_scheduler(state: &mut EngineState) -> DtResult<()> {
    for id in state.catalog.dynamic_tables() {
        let meta = state
            .catalog
            .get(id)?
            .as_dt()
            .ok_or_else(|| DtError::internal(format!("{id} is not a DT")))?
            .clone();
        let target = match meta.target_lag {
            TargetLagSpec::Duration(d) => TargetLag::Duration(d),
            TargetLagSpec::Downstream => TargetLag::Downstream,
        };
        state.scheduler.register(id, target, meta.upstream.clone());
        if let Some(ts) = state.refresh_map.latest_refresh(id) {
            state.scheduler.mark_initialized(id, ts)?;
        }
        if matches!(meta.state, DtState::Suspended | DtState::SuspendedOnErrors) {
            state.scheduler.set_suspended(id, true)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{Column, DataType, Row, Value};

    fn sample_install() -> VersionInstallRecord {
        VersionInstallRecord {
            new_parts: vec![(
                dt_common::PartitionId(3),
                vec![Row::new(vec![Value::Int(1), Value::Str("a".into())])],
            )],
            partitions: vec![dt_common::PartitionId(3)],
            added: vec![dt_common::PartitionId(3)],
            removed: vec![],
            row_count: 1,
        }
    }

    #[test]
    fn wal_records_round_trip() {
        let catalog = Catalog::new().to_bytes();
        let records = vec![
            WalRecord::Catalog {
                stamp: Timestamp::from_micros(41),
                catalog: catalog.clone(),
                meta: EngineMeta {
                    warehouses: vec![("wh".into(), 4, Duration::from_mins(5))],
                    dt_warehouse: vec![(EntityId(7), "wh".into())],
                },
                side_effect: SideEffect::CreateStore {
                    entity: EntityId(7),
                    schema: Schema::new(vec![Column::new("k", DataType::Int)]),
                    partition_capacity: 4096,
                    created_ts: Timestamp::from_micros(40),
                },
            },
            WalRecord::Catalog {
                stamp: Timestamp::from_micros(42),
                catalog: catalog.clone(),
                meta: EngineMeta::default(),
                side_effect: SideEffect::CloneStore {
                    source: EntityId(7),
                    target: EntityId(9),
                },
            },
            WalRecord::DmlCommit {
                commit_ts: Timestamp::from_micros(43),
                txn: TxnId(5),
                tables: vec![(EntityId(7), sample_install())],
            },
            WalRecord::Refresh {
                dt: EntityId(9),
                txn: TxnId(6),
                refresh_ts: Timestamp::from_micros(44),
                commit_ts: Timestamp::from_micros(45),
                install: Some((Timestamp::from_micros(44), sample_install())),
                version: VersionId(1),
                frontier: vec![(EntityId(7), VersionId(2))],
                catalog,
            },
        ];
        for rec in records {
            let bytes = rec.to_bytes();
            let back = WalRecord::from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bytes(), bytes);
            assert_eq!(back.stamp(), rec.stamp());
        }
    }

    #[test]
    fn wal_record_decode_rejects_corruption() {
        let rec = WalRecord::DmlCommit {
            commit_ts: Timestamp::from_micros(1),
            txn: TxnId(1),
            tables: vec![(EntityId(1), sample_install())],
        };
        let bytes = rec.to_bytes();
        // Unknown tag.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(matches!(
            WalRecord::from_bytes(&bad),
            Err(DtError::Corruption(_))
        ));
        // Every truncation must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(WalRecord::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(WalRecord::from_bytes(&long).is_err());
    }

    #[test]
    fn checkpoint_image_round_trips() {
        let image = CheckpointImage {
            watermark: Timestamp::from_micros(100),
            now: Timestamp::from_secs(9),
            catalog: Catalog::new().to_bytes(),
            meta: EngineMeta {
                warehouses: vec![("wh".into(), 2, Duration::from_mins(5))],
                dt_warehouse: vec![],
            },
            stores: vec![],
            frontiers: vec![(
                EntityId(3),
                Timestamp::from_micros(90),
                vec![(EntityId(1), VersionId(4))],
            )],
            refresh_map: vec![(
                EntityId(3),
                Timestamp::from_micros(90),
                VersionId(2),
                Timestamp::from_micros(95),
            )],
        };
        let bytes = image.to_bytes();
        let back = CheckpointImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.watermark, image.watermark);
        assert_eq!(back.frontiers, image.frontiers);
        assert_eq!(back.refresh_map, image.refresh_map);
    }
}
