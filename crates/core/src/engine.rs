//! The public API: a shared [`Engine`] and per-connection [`Session`]s.
//!
//! The paper's system serves many concurrent sessions against one catalog:
//! queries read consistent snapshots while refreshes land in the
//! background. This module mirrors that split:
//!
//! - [`Engine`] owns the catalog, storage, transaction manager, scheduler,
//!   warehouses, and refresh log behind a reader/writer lock. It is
//!   cheaply cloneable (an `Arc` inside) and `Send + Sync`, so any number
//!   of threads can hold handles to one engine.
//! - [`Session`] is a per-connection handle created by
//!   [`Engine::session`]. It carries connection-local state — the current
//!   role, session variables, and a prepared-statement cache — and takes
//!   `&self` everywhere, so sessions can be shared or sent across threads
//!   freely.
//! - [`Statement`] is a prepared statement: lexed, parsed, and (for
//!   queries) bound once, then executed any number of times with different
//!   positional `?` parameter bindings.
//!
//! Read statements (`SELECT`, `EXPLAIN`, `SHOW DYNAMIC TABLES`, prepared
//! queries, time travel) take the engine's read lock only long enough to
//! capture a [`ReadSnapshot`] — an `Arc`'d catalog view plus per-table
//! pinned versions — then release it and bind, plan, and execute entirely
//! against the snapshot. Readers therefore never wait behind an in-flight
//! refresh. DDL, DML, and refreshes still serialize under the write lock.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dt_common::{DtError, DtResult, Row, SimClock, Timestamp, Value};
use dt_plan::LogicalPlan;
use dt_sql::ast;

use crate::database::{DbConfig, EngineState, ExecResult, QueryResult};
use crate::refresh::{RefreshLog, RefreshLogEntry};
use crate::simulate::SimStats;
use crate::snapshot::ReadSnapshot;
use crate::transaction::{is_serialization_conflict, CommitRequest, Transaction};

/// The role sessions run as unless [`Engine::session_as`] says otherwise.
pub const DEFAULT_ROLE: &str = "sysadmin";

/// Commit-pipeline telemetry: how the optimistic commit path has used the
/// engine write lock so far. Captured with [`Engine::commit_stats`].
///
/// The load-bearing relation is `install_lock_acquisitions` vs `commits`:
/// with writer group-commit, N concurrent committers can complete under
/// *fewer* than N engine-write-lock acquisitions, because one leader
/// installs a whole batch per acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitStats {
    /// Transactions committed through the optimistic install path
    /// (grouped and unbatched alike; excludes read-only commits, which
    /// install nothing).
    pub commits: u64,
    /// Transactions aborted by the install path with a serialization
    /// conflict (version moved, table dropped).
    pub conflicts: u64,
    /// Times the install path acquired the engine write lock — one per
    /// batch for group commit, one per commit for the unbatched path.
    pub install_lock_acquisitions: u64,
    /// Largest group-commit batch installed under one acquisition.
    pub max_batch: u64,
    /// Requests that went through the group-commit queue.
    pub group_submitted: u64,
}

/// State shared by every handle of one engine that lives *outside* the
/// engine lock: the group-commit queue (submitters must hold no engine
/// lock while enqueueing) and the commit telemetry counters.
pub(crate) struct CommitShared {
    pub(crate) queue: dt_txn::CommitQueue<CommitRequest, dt_common::DtResult<Timestamp>>,
    commits: AtomicU64,
    conflicts: AtomicU64,
    install_lock_acquisitions: AtomicU64,
    max_batch: AtomicU64,
}

impl CommitShared {
    fn new() -> Self {
        CommitShared {
            queue: dt_txn::CommitQueue::new(),
            commits: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            install_lock_acquisitions: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// Record one engine-write-lock acquisition installing `batch` txns.
    pub(crate) fn record_batch(&self, batch: usize) {
        self.install_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(batch as u64, Ordering::Relaxed);
    }

    /// Record one transaction's install outcome.
    pub(crate) fn record_outcome(&self, outcome: &dt_common::DtResult<Timestamp>) {
        match outcome {
            Ok(_) => self.commits.fetch_add(1, Ordering::Relaxed),
            Err(e) if is_serialization_conflict(e) => {
                self.conflicts.fetch_add(1, Ordering::Relaxed)
            }
            Err(_) => 0,
        };
    }
}

/// A shared handle to one engine. Clones are cheap and refer to the same
/// underlying state; the handle is `Send + Sync`.
#[derive(Clone)]
pub struct Engine {
    pub(crate) state: Arc<RwLock<EngineState>>,
    /// The simulated clock, shared with the state (it has interior
    /// mutability, so advancing it needs no engine lock).
    clock: SimClock,
    /// The refresh log, shared with the state (it has its own lock, so
    /// telemetry reads need no engine lock).
    refresh_log: RefreshLog,
    /// Group-commit queue + commit telemetry (own synchronization; lives
    /// outside the engine lock so committers enqueue lock-free).
    pub(crate) commit: Arc<CommitShared>,
    /// Group-install queue + telemetry for the parallel refresh path
    /// (PR 8) — a sibling of `commit` so refresh installs never
    /// interleave into DML commit batches.
    pub(crate) refresh: Arc<crate::parallel_refresh::RefreshShared>,
    /// The admission lock table, shared with the state's `TxnManager`.
    /// Held directly on the handle so committers can acquire (and park on
    /// pessimistic wait-queues) **without any engine lock**: the current
    /// lock holder needs the engine write lock to install and release, so
    /// a waiter holding even the read lock would deadlock the pipeline.
    pub(crate) locks: Arc<dt_txn::LockManager>,
    /// The adaptive per-table concurrency-control policy, fed by commit
    /// outcomes and steering `locks` (no engine lock either).
    pub(crate) locking: Arc<crate::locking::AdaptivePolicy>,
}

impl Engine {
    /// Create an empty engine at the simulation epoch.
    pub fn new(config: DbConfig) -> Self {
        let state = EngineState::new(config);
        Engine::from_state(state)
    }

    /// Open (or create) a **durable** engine at `dir`: load the latest
    /// checkpoint, replay the WAL tail (a torn final record is truncated),
    /// and leave the WAL open so every subsequent commit, refresh, and DDL
    /// is logged and fsynced before it is acknowledged.
    pub fn open(dir: impl AsRef<std::path::Path>) -> dt_common::DtResult<Engine> {
        Engine::open_with_config(DbConfig {
            durability: dt_common::DurabilityMode::wal(dir.as_ref()),
            ..DbConfig::default()
        })
    }

    /// [`Engine::open`] with an explicit configuration. The configuration's
    /// [`DbConfig::durability`] selects the mode: `None` behaves exactly
    /// like [`Engine::new`], `Wal { dir }` recovers from and logs to `dir`.
    pub fn open_with_config(config: DbConfig) -> dt_common::DtResult<Engine> {
        let state = match config.durability.clone() {
            dt_common::DurabilityMode::None => EngineState::new(config),
            dt_common::DurabilityMode::Wal { dir } => {
                crate::durability::open_durable(config, &dir)?
            }
        };
        Ok(Engine::from_state(state))
    }

    fn from_state(state: EngineState) -> Engine {
        let clock = state.clock().clone();
        let refresh_log = state.refresh_log().clone();
        let commit = Arc::new(CommitShared::new());
        let refresh = Arc::new(crate::parallel_refresh::RefreshShared::new());
        // Durable batches pay one fsync each, so let a new leader gather
        // company before draining (see [`DbConfig::wal_group_window`]).
        // In-memory batches are free to form — leave the window at zero.
        if !matches!(state.config.durability, dt_common::DurabilityMode::None) {
            commit.queue.set_gather(state.config.wal_group_window);
            refresh.queue.set_gather(state.config.wal_group_window);
        }
        let locks = Arc::clone(state.txn.locks());
        locks.set_wait_timeout(state.config.lock_wait_timeout);
        let locking = Arc::new(crate::locking::AdaptivePolicy::new(
            Arc::clone(&locks),
            crate::locking::AdaptiveConfig {
                window: state.config.adaptive_lock_window,
                abort_threshold: state.config.adaptive_abort_threshold,
                cooldown: state.config.adaptive_lock_cooldown,
            },
        ));
        Engine {
            state: Arc::new(RwLock::new(state)),
            clock,
            refresh_log,
            commit,
            refresh,
            locks,
            locking,
        }
    }

    /// Force a checkpoint now: snapshot the whole engine image, then
    /// truncate the WAL behind it. Returns `false` (and does nothing) for
    /// an in-memory engine.
    pub fn checkpoint(&self) -> dt_common::DtResult<bool> {
        self.state.write().write_checkpoint()
    }

    /// WAL telemetry (appends, batches, fsyncs, bytes, checkpoints,
    /// records replayed at recovery). All zeros for an in-memory engine.
    /// Takes the engine read lock only long enough to reach the shared
    /// counters.
    pub fn wal_stats(&self) -> dt_wal::WalStatsSnapshot {
        self.state
            .read()
            .wal_shared()
            .map(|w| w.stats())
            .unwrap_or_default()
    }

    /// Commit-pipeline telemetry: commits, conflict aborts, and — the
    /// group-commit effect — how many engine-write-lock acquisitions those
    /// installs cost. No engine lock is taken.
    pub fn commit_stats(&self) -> CommitStats {
        let q = self.commit.queue.stats();
        CommitStats {
            commits: self.commit.commits.load(Ordering::Relaxed),
            conflicts: self.commit.conflicts.load(Ordering::Relaxed),
            install_lock_acquisitions: self
                .commit
                .install_lock_acquisitions
                .load(Ordering::Relaxed),
            max_batch: self.commit.max_batch.load(Ordering::Relaxed),
            group_submitted: q.submitted,
        }
    }

    /// Commit requests currently enqueued behind the in-flight
    /// group-commit batch (telemetry; tests use it to observe batching).
    pub fn pending_commits(&self) -> usize {
        self.commit.queue.pending()
    }

    /// Admission-lock telemetry: wait episodes and parked time, timeouts,
    /// deadlock victims, tables currently pessimistic, and adaptive mode
    /// flips. No engine lock is taken.
    pub fn lock_stats(&self) -> dt_txn::LockStats {
        self.locks.stats()
    }

    /// The `SHOW STATS` result: commit- and refresh-pipeline counters as
    /// `name`/`value` rows. Served from the engine's lock-free telemetry,
    /// so it answers even while a refresh round holds the write lock.
    pub fn show_stats(&self) -> QueryResult {
        use dt_common::{Column, DataType, Schema};
        let c = self.commit_stats();
        let r = self.refresh_stats();
        let w = self.wal_stats();
        let l = self.lock_stats();
        let fields: [(&str, u64); 23] = [
            ("commits", c.commits),
            ("conflicts", c.conflicts),
            ("install_lock_acquisitions", c.install_lock_acquisitions),
            ("max_batch", c.max_batch),
            ("group_submitted", c.group_submitted),
            ("refreshes", r.refreshes),
            ("refresh_batches", r.install_lock_acquisitions),
            ("refresh_max_batch", r.max_batch),
            ("refresh_group_submitted", r.group_submitted),
            ("parallel_refresh_rounds", r.parallel_rounds),
            ("refresh_workers", r.workers),
            ("wal_appends", w.appends),
            ("wal_batches", w.batches),
            ("wal_fsyncs", w.fsyncs),
            ("wal_bytes", w.bytes),
            ("checkpoints", w.checkpoints),
            ("recovery_replayed", w.recovery_replayed),
            ("lock_waits", l.waits),
            ("lock_wait_time_us", l.wait_time_us),
            ("lock_timeouts", l.timeouts),
            ("deadlocks", l.deadlocks),
            ("tables_pessimistic", l.tables_pessimistic),
            ("adaptive_flips", l.adaptive_flips),
        ];
        let schema = Arc::new(Schema::new(vec![
            Column::new("name", DataType::Str),
            Column::new("value", DataType::Int),
        ]));
        let rows = fields
            .into_iter()
            .map(|(name, v)| Row::new(vec![Value::Str(name.into()), Value::Int(v as i64)]))
            .collect();
        QueryResult::new(schema, rows)
    }

    /// Open a session running as the default role (`sysadmin`).
    pub fn session(&self) -> Session {
        self.session_as(DEFAULT_ROLE)
    }

    /// Open a session running as `role`.
    pub fn session_as(&self, role: &str) -> Session {
        Session {
            engine: self.clone(),
            inner: Arc::new(SessionInner {
                role: Mutex::new(role.to_string()),
                variables: Mutex::new(BTreeMap::new()),
                statements: Mutex::new(HashMap::new()),
                txn: Mutex::new(None),
            }),
        }
    }

    /// Run a closure over the engine state under the read lock — the
    /// escape hatch for telemetry and introspection (catalog, scheduler,
    /// warehouses) without cloning.
    pub fn inspect<R>(&self, f: impl FnOnce(&EngineState) -> R) -> R {
        f(&self.state.read())
    }

    /// Run a closure over the engine state under the **write** lock — the
    /// mutable counterpart of [`Engine::inspect`], for maintenance tasks
    /// and tests that need exclusive access (e.g. driving refreshes by
    /// hand while asserting readers stay unblocked).
    pub fn inspect_mut<R>(&self, f: impl FnOnce(&mut EngineState) -> R) -> R {
        f(&mut self.state.write())
    }

    /// Capture a [`ReadSnapshot`] of the latest committed state. Holds the
    /// read lock only for the O(tables) capture — no binding, planning, or
    /// row data — then releases it; the snapshot is queried lock-free for
    /// as long as the caller keeps it, entirely undisturbed by concurrent
    /// DML, DDL, and refreshes.
    pub fn snapshot(&self) -> ReadSnapshot {
        self.state.read().capture_snapshot(None)
    }

    /// Capture a [`ReadSnapshot`] pinned at a past instant: each table
    /// resolves to the version visible at `at` (the snapshot-read rule of
    /// §5.3). Time travel is just an older frontier on the same read path.
    pub fn snapshot_at(&self, at: Timestamp) -> ReadSnapshot {
        self.state.read().capture_snapshot(Some(at))
    }

    /// The simulated clock (advance it to let the scheduler act). Takes no
    /// engine lock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        use dt_common::Clock;
        self.clock.now()
    }

    /// Create a virtual warehouse with `nodes` nodes (§3.3.1).
    pub fn create_warehouse(&self, name: &str, nodes: u32) -> DtResult<()> {
        self.state.write().create_warehouse(name, nodes)
    }

    /// Run the scheduler until the virtual clock reaches `end`. Holds the
    /// write lock, so call it in short slices when readers should
    /// interleave.
    pub fn run_scheduler_until(&self, end: Timestamp) -> DtResult<SimStats> {
        self.state.write().run_scheduler_until(end)
    }

    /// A handle to the refresh log (every refresh executed so far). O(1):
    /// the log lives behind its own lock, so reading it never contends
    /// with the engine lock — and this no longer clones the whole log.
    pub fn refresh_log(&self) -> RefreshLog {
        self.refresh_log.clone()
    }

    /// The last `n` refresh-log entries (cheapest way to check recent
    /// refresh activity without copying the full history).
    pub fn refresh_log_tail(&self, n: usize) -> Vec<RefreshLogEntry> {
        self.refresh_log().tail(n)
    }

    /// The bound logical plan of a DT's stored definition (operator-census
    /// harness, Figure 6).
    pub fn dt_plan(&self, name: &str) -> DtResult<LogicalPlan> {
        self.state.read().dt_plan(name)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").finish_non_exhaustive()
    }
}

/// Cap on the per-session statement cache: past this, the cache is cleared
/// before inserting (statement handles users still hold stay valid — they
/// share their state via `Arc`). Keeps sessions that prepare interpolated
/// SQL from growing without bound.
const STATEMENT_CACHE_CAP: usize = 256;

struct SessionInner {
    role: Mutex<String>,
    variables: Mutex<BTreeMap<String, String>>,
    /// Prepared statements by SQL text (per-connection statement cache).
    statements: Mutex<HashMap<String, Statement>>,
    /// The session's current SQL-level transaction (opened with `BEGIN`,
    /// closed with `COMMIT`/`ROLLBACK`). Statements executed while this is
    /// `Some` — including prepared statements — run inside it.
    txn: Mutex<Option<Transaction>>,
}

/// A per-connection handle: current role, session variables, and a
/// prepared-statement cache. Every method takes `&self`; clones share the
/// same session state.
#[derive(Clone)]
pub struct Session {
    engine: Engine,
    inner: Arc<SessionInner>,
}

impl Session {
    /// The engine this session talks to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The current role (RBAC checks use it).
    pub fn role(&self) -> String {
        self.inner.role.lock().clone()
    }

    /// Switch the session role.
    pub fn set_role(&self, role: &str) {
        *self.inner.role.lock() = role.to_string();
    }

    /// Set a session variable.
    pub fn set_variable(&self, name: &str, value: &str) {
        self.inner
            .variables
            .lock()
            .insert(name.to_ascii_lowercase(), value.to_string());
    }

    /// Read a session variable.
    pub fn variable(&self, name: &str) -> Option<String> {
        self.inner
            .variables
            .lock()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Execute one SQL statement. Statements containing `?` placeholders
    /// must go through [`Session::prepare`] instead.
    ///
    /// Transaction lifecycle: `BEGIN` opens a session-scoped
    /// [`Transaction`]; while it is open, reads are served from its pinned
    /// snapshot and DML is buffered into it; `COMMIT` / `ROLLBACK` close
    /// it. Outside a transaction, DML auto-commits as the degenerate
    /// one-statement transaction (buffered, then committed optimistically
    /// — retried internally on write-write conflicts, so single statements
    /// keep their pre-transaction always-succeed behaviour).
    pub fn execute(&self, sql: &str) -> DtResult<ExecResult> {
        let stmt = dt_sql::parse(sql)?;
        let placeholders = stmt.placeholder_count();
        if placeholders > 0 {
            // Point at prepare only where prepare would actually accept
            // the statement; placeholders in DDL are unsupported outright.
            if !matches!(
                stmt,
                ast::Statement::Query(_)
                    | ast::Statement::Insert { .. }
                    | ast::Statement::Delete { .. }
                    | ast::Statement::Update { .. }
            ) {
                return Err(DtError::Unsupported(
                    "`?` placeholders are only supported in queries and DML \
                     (INSERT/UPDATE/DELETE), not DDL"
                        .into(),
                ));
            }
            return Err(DtError::Binding(format!(
                "statement has {placeholders} `?` placeholder(s); prepare it \
                 with Session::prepare and bind values at execute time"
            )));
        }
        match stmt {
            ast::Statement::Begin => {
                let mut cur = self.inner.txn.lock();
                if cur.is_some() {
                    return Err(DtError::Txn(
                        "already in a transaction; nested BEGIN is not \
                         supported"
                            .into(),
                    ));
                }
                let txn = self.begin();
                let msg = format!("transaction {} started", txn.id());
                *cur = Some(txn);
                Ok(ExecResult::Ok(msg))
            }
            ast::Statement::Commit => {
                let txn = self.inner.txn.lock().take().ok_or_else(|| {
                    DtError::Txn("COMMIT outside a transaction (no BEGIN in effect)".into())
                })?;
                let commit_ts = txn.commit()?;
                Ok(ExecResult::Ok(format!(
                    "transaction committed at {commit_ts}"
                )))
            }
            ast::Statement::Rollback => {
                let txn = self.inner.txn.lock().take().ok_or_else(|| {
                    DtError::Txn(
                        "ROLLBACK outside a transaction (no BEGIN in effect)".into(),
                    )
                })?;
                txn.rollback()?;
                Ok(ExecResult::Ok("transaction rolled back".into()))
            }
            // Engine-global telemetry, not snapshot state: answered from
            // the lock-free counters even inside an open transaction.
            ast::Statement::ShowStats => Ok(ExecResult::Rows(self.engine.show_stats())),
            stmt => {
                // Inside an open transaction every statement routes into
                // it: reads come from the pinned snapshot, DML buffers.
                {
                    let mut cur = self.inner.txn.lock();
                    if let Some(txn) = cur.as_mut() {
                        return txn.execute_parsed(stmt, &[]);
                    }
                }
                if EngineState::is_read_statement(&stmt) {
                    // Capture a snapshot under a brief read lock, then
                    // bind, plan, and execute with no engine lock at all.
                    self.engine.snapshot().read_statement(&stmt, &[])
                } else if matches!(
                    stmt,
                    ast::Statement::Insert { .. }
                        | ast::Statement::Delete { .. }
                        | ast::Statement::Update { .. }
                ) {
                    self.autocommit_dml(stmt, &[])
                } else {
                    self.engine
                        .state
                        .write()
                        .execute_parsed(stmt, sql, &self.role(), &[])
                }
            }
        }
    }

    /// Auto-commit DML: the degenerate one-statement transaction. See
    /// [`autocommit_dml`].
    fn autocommit_dml(&self, stmt: ast::Statement, params: &[Value]) -> DtResult<ExecResult> {
        autocommit_dml(&self.engine, stmt, params)
    }

    /// Open an explicit transaction: every read inside it sees one
    /// snapshot pinned now, and DML inside it is buffered and applied
    /// atomically (or not at all) at [`Transaction::commit`]. The handle
    /// is independent of the SQL-level `BEGIN`/`COMMIT` state of this
    /// session — a session can hand out any number of concurrent handles.
    pub fn begin(&self) -> Transaction {
        Transaction::start(self.engine.clone(), None)
    }

    /// Open a time-travel transaction pinned at a past instant: reads
    /// resolve each table's version as of `at` (§5.3's snapshot-read
    /// rule). Writes are permitted but commit only if no touched table has
    /// changed since `at` — on any later commit the transaction conflicts.
    pub fn begin_at(&self, at: Timestamp) -> Transaction {
        Transaction::start(self.engine.clone(), Some(at))
    }

    /// True while this session has an open SQL-level transaction (`BEGIN`
    /// executed, neither `COMMIT` nor `ROLLBACK` yet).
    pub fn in_transaction(&self) -> bool {
        self.inner.txn.lock().is_some()
    }

    /// Capture a [`ReadSnapshot`] for this session: a consistent view of
    /// the whole engine that can be queried repeatedly (and concurrently
    /// with writers) without ever taking the engine lock.
    pub fn snapshot(&self) -> ReadSnapshot {
        self.engine.snapshot()
    }

    /// Run a query and return its result (rows + schema).
    pub fn query(&self, sql: &str) -> DtResult<QueryResult> {
        self.execute(sql)?
            .try_rows()
            .ok_or_else(|| DtError::Unsupported("not a query".into()))
    }

    /// Run a query and return sorted rows (deterministic comparisons).
    pub fn query_sorted(&self, sql: &str) -> DtResult<Vec<Row>> {
        Ok(self.query(sql)?.into_sorted_rows())
    }

    /// Time-travel query: pin the version each table had at `at` (an older
    /// frontier) and run the ordinary lock-free snapshot read path.
    pub fn query_at(&self, sql: &str, at: Timestamp) -> DtResult<QueryResult> {
        self.engine.snapshot_at(at).query(sql)
    }

    /// The isolation level guaranteed for a query (§4).
    pub fn query_isolation_level(&self, sql: &str) -> DtResult<dt_isolation::IsolationLevel> {
        self.engine.snapshot().query_isolation_level(sql)
    }

    /// Prepare a statement: lex, parse, and (for queries) bind once.
    /// Returns a [`Statement`] accepting positional `?` parameters at
    /// execute time. Prepared statements are cached per session by SQL
    /// text, so preparing the same text twice is free.
    pub fn prepare(&self, sql: &str) -> DtResult<Statement> {
        if let Some(stmt) = self.inner.statements.lock().get(sql) {
            return Ok(stmt.clone());
        }
        let parsed = dt_sql::parse(sql)?;
        let params = parsed.placeholder_count();
        let kind = match parsed {
            ast::Statement::Query(q) => {
                // Bind now against a snapshot (validates the query and
                // caches the plan) — the engine lock is already released
                // by the time binding runs.
                let snap = self.engine.snapshot();
                let plan = snap.bind_query(&q)?.plan;
                let generation = snap.ddl_generation();
                PreparedKind::Query {
                    ast: q,
                    plan: Mutex::new((generation, Arc::new(plan))),
                }
            }
            dml @ (ast::Statement::Insert { .. }
            | ast::Statement::Delete { .. }
            | ast::Statement::Update { .. }) => PreparedKind::Command { ast: dml },
            other => {
                if params > 0 {
                    return Err(DtError::Unsupported(
                        "`?` placeholders are only supported in queries and \
                         DML (INSERT/UPDATE/DELETE), not DDL"
                            .into(),
                    ));
                }
                PreparedKind::Command { ast: other }
            }
        };
        let stmt = Statement {
            session: Arc::new(SessionRef {
                engine: self.engine.clone(),
                inner: Arc::downgrade(&self.inner),
            }),
            inner: Arc::new(PreparedInner {
                sql: sql.to_string(),
                params,
                binds: AtomicU64::new(1),
                kind,
            }),
        };
        let mut cache = self.inner.statements.lock();
        if cache.len() >= STATEMENT_CACHE_CAP {
            cache.clear();
        }
        cache.insert(sql.to_string(), stmt.clone());
        Ok(stmt)
    }

    /// Trigger a manual refresh of a DT and its upstream chain (§3.2).
    pub fn manual_refresh(&self, name: &str) -> DtResult<usize> {
        self.engine.state.write().manual_refresh(name, &self.role())
    }

    /// Grant a privilege on a named entity to a role (§3.4).
    pub fn grant(
        &self,
        role: &str,
        entity: &str,
        privilege: dt_catalog::Privilege,
    ) -> DtResult<()> {
        self.engine.state.write().grant(role, entity, privilege)
    }

    /// Number of statements in this session's prepared-statement cache.
    pub fn cached_statements(&self) -> usize {
        self.inner.statements.lock().len()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("role", &self.role()).finish()
    }
}

/// Auto-commit DML: the degenerate one-statement transaction. Plans the
/// statement against a fresh snapshot, buffers, and commits
/// optimistically; on a write-write conflict (another writer landed on
/// the same table first) it retries against the new state, so a single
/// statement behaves as if it had serialized after the winner. Used by
/// `Session::execute` and by prepared DML statements executed outside a
/// transaction.
fn autocommit_dml(engine: &Engine, stmt: ast::Statement, params: &[Value]) -> DtResult<ExecResult> {
    // Conflicts require a concurrent committer per attempt; a bounded
    // retry only gives up under pathological sustained contention, where
    // surfacing the conflict beats spinning forever.
    const AUTOCOMMIT_RETRIES: usize = 64;
    let mut last_conflict = None;
    // Tables to lock pessimistically *before* replanning a retry. Filled
    // after a conflict on a table whose admission mode is pessimistic:
    // re-running the statement with those locks already held pins the
    // table's latest version, so the retry plans against current state
    // and cannot lose admission again — turning abort-retry churn into
    // one bounded wait in the FIFO queue.
    let mut prelock: Vec<dt_common::EntityId> = Vec::new();
    for attempt in 0..AUTOCOMMIT_RETRIES {
        let mut txn = if prelock.is_empty() {
            Transaction::start(engine.clone(), None)
        } else {
            Transaction::start_locked(engine.clone(), &prelock)?
        };
        let result = txn.execute_parsed(stmt.clone(), params)?;
        let touched = txn.touched_tables();
        // Unbatched install: a single bounded-retry statement wants the
        // shortest possible admission-lock hold. Riding the group-commit
        // queue would hold this statement's per-table lock across a
        // leader/follower handoff, inflating conflict aborts on hot
        // tables — and batching only pays off on disjoint workloads,
        // where the unbatched path never aborts to begin with. Explicit
        // transactions (whose callers own their retry policy) batch.
        match txn.commit_unbatched() {
            Ok(_) => return Ok(result),
            Err(e) if is_serialization_conflict(&e) => {
                last_conflict = Some(e);
                prelock = touched
                    .into_iter()
                    .filter(|e| engine.locks.mode(*e) == dt_txn::LockMode::Pessimistic)
                    .collect();
                // Back off briefly: the winning committer holds its
                // per-table locks only for a short, bounded window.
                // Exponential with deterministic per-thread jitter so a
                // herd of losers doesn't re-collide in lockstep; capped at
                // 2ms to keep worst-case statement latency bounded.
                if attempt < 4 {
                    std::thread::yield_now();
                } else {
                    let exp = (attempt - 4).min(6) as u32;
                    let base_us = (25u64 << exp).min(2000);
                    let jitter = {
                        use std::hash::{Hash, Hasher};
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        std::thread::current().id().hash(&mut h);
                        attempt.hash(&mut h);
                        h.finish() % (base_us / 2 + 1)
                    };
                    std::thread::sleep(std::time::Duration::from_micros(
                        base_us / 2 + jitter,
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_conflict.expect("loop exits early unless a conflict occurred"))
}

/// A weak back-reference to the owning session: statements must not keep
/// a session (and through it the cache that holds the statement) alive in
/// a reference cycle.
struct SessionRef {
    engine: Engine,
    inner: std::sync::Weak<SessionInner>,
}

impl SessionRef {
    /// The owning session's current role. Errors (fails closed) when the
    /// session has been dropped — a statement must never execute under a
    /// different role than its session's.
    fn role(&self) -> DtResult<String> {
        self.inner
            .upgrade()
            .map(|s| s.role.lock().clone())
            .ok_or_else(|| {
                DtError::Unsupported(
                    "the session owning this prepared statement was closed"
                        .into(),
                )
            })
    }
}

enum PreparedKind {
    /// A bound query: the plan is reused across executions and rebound
    /// only when the catalog's DDL generation moves.
    Query {
        ast: ast::Query,
        plan: Mutex<(u64, Arc<LogicalPlan>)>,
    },
    /// DML or parameter-free utility statements: re-executed from the
    /// parsed AST.
    Command { ast: ast::Statement },
}

struct PreparedInner {
    sql: String,
    params: usize,
    /// How many times the SQL was bound (1 at prepare; +1 per rebind after
    /// DDL). Lets tests assert that re-execution reuses one bound plan.
    binds: AtomicU64,
    kind: PreparedKind,
}

/// A prepared statement: parse/bind once, execute many times with
/// positional `?` parameters. Cheap to clone; clones share the bound plan.
#[derive(Clone)]
pub struct Statement {
    session: Arc<SessionRef>,
    inner: Arc<PreparedInner>,
}

impl Statement {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.inner.sql
    }

    /// Number of `?` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.inner.params
    }

    /// How many times the statement's SQL has been bound (1 unless DDL
    /// invalidated the cached plan).
    pub fn times_bound(&self) -> u64 {
        self.inner.binds.load(Ordering::Relaxed)
    }

    fn check_arity(&self, params: &[Value]) -> DtResult<()> {
        if params.len() != self.inner.params {
            return Err(DtError::Binding(format!(
                "statement expects {} parameter(s), {} bound",
                self.inner.params,
                params.len()
            )));
        }
        Ok(())
    }

    /// Route this statement into the owning session's open SQL-level
    /// transaction, if there is one: reads then come from the
    /// transaction's pinned snapshot (plus its buffered writes) and DML
    /// buffers into its write set, exactly as if the SQL had gone through
    /// `Session::execute`. Returns `None` when no transaction is open (or
    /// the session is gone — the ordinary paths fail closed on that).
    fn execute_in_session_txn(&self, params: &[Value]) -> Option<DtResult<ExecResult>> {
        let inner = self.session.inner.upgrade()?;
        let mut cur = inner.txn.lock();
        let txn = cur.as_mut()?;
        let stmt = match &self.inner.kind {
            PreparedKind::Query { ast, .. } => ast::Statement::Query(ast.clone()),
            PreparedKind::Command { ast } => ast.clone(),
        };
        Some(txn.execute_parsed(stmt, params))
    }

    /// Execute with `params` bound to the `?` placeholders in order.
    pub fn execute(&self, params: &[Value]) -> DtResult<ExecResult> {
        self.check_arity(params)?;
        if let Some(result) = self.execute_in_session_txn(params) {
            return result;
        }
        match &self.inner.kind {
            PreparedKind::Query { .. } => Ok(ExecResult::Rows(self.query(params)?)),
            // EXPLAIN / SHOW are read-only: serve them off a snapshot with
            // no engine lock, like Session::execute does.
            PreparedKind::Command { ast } if EngineState::is_read_statement(ast) => {
                self.session.engine.snapshot().read_statement(ast, params)
            }
            // DML auto-commits through the optimistic transaction path —
            // the legacy engine-lock path's single, unretried `try_lock`
            // would spuriously fail against an in-flight transaction's
            // per-table lock where `Session::execute` retries. The role
            // lookup stays first so statements still fail closed when
            // their owning session is gone.
            PreparedKind::Command {
                ast:
                    ast @ (ast::Statement::Insert { .. }
                    | ast::Statement::Delete { .. }
                    | ast::Statement::Update { .. }),
            } => {
                let _role = self.session.role()?;
                autocommit_dml(&self.session.engine, ast.clone(), params)
            }
            PreparedKind::Command { ast } => {
                let role = self.session.role()?;
                self.session.engine.state.write().execute_parsed(
                    ast.clone(),
                    &self.inner.sql,
                    &role,
                    params,
                )
            }
        }
    }

    /// Execute a prepared query with `params`, reusing the bound plan. The
    /// engine lock is held only to capture a snapshot — scoped to the
    /// tables the cached plan scans, so a point query pays O(scanned)
    /// capture, not O(all tables) — and the rebind check, any rebinding,
    /// and execution all run lock-free against it.
    pub fn query(&self, params: &[Value]) -> DtResult<QueryResult> {
        self.check_arity(params)?;
        let PreparedKind::Query { ast, plan } = &self.inner.kind else {
            return Err(DtError::Unsupported("not a query".into()));
        };
        if let Some(result) = self.execute_in_session_txn(params) {
            return result?
                .try_rows()
                .ok_or_else(|| DtError::internal("prepared query produced no rows result"));
        }
        if ast.for_update {
            // Outside a transaction there is nothing to hold the lock for:
            // the statement's snapshot is retired as soon as it returns.
            return Err(DtError::Unsupported(
                "SELECT ... FOR UPDATE requires an explicit transaction".into(),
            ));
        }
        let (generation, cached) = {
            let slot = plan.lock();
            (slot.0, Arc::clone(&slot.1))
        };
        let snap = {
            let state = self.session.engine.state.read();
            state.capture_snapshot_scoped(&cached.scanned_entities())
        };
        let (snap, bound) = if snap.ddl_generation() == generation {
            (snap, cached)
        } else {
            // DDL moved under us: take a full snapshot (the rebound plan
            // may scan different tables) and rebind against its catalog.
            let snap = self.session.engine.snapshot();
            let mut slot = plan.lock();
            if slot.0 != snap.ddl_generation() {
                slot.1 = Arc::new(snap.bind_query(ast)?.plan);
                slot.0 = snap.ddl_generation();
                self.inner.binds.fetch_add(1, Ordering::Relaxed);
            }
            let bound = Arc::clone(&slot.1);
            drop(slot);
            (snap, bound)
        };
        if params.is_empty() && bound.max_parameter().is_none() {
            // Parameter-free: execute the cached plan directly, no copy.
            let rows = snap.execute_plan(&bound)?;
            Ok(QueryResult::new(bound.schema(), rows))
        } else {
            let plan = bound.bind_params(params)?;
            let rows = snap.execute_plan(&plan)?;
            Ok(QueryResult::new(plan.schema(), rows))
        }
    }

    /// Execute a prepared query and return sorted rows.
    pub fn query_sorted(&self, params: &[Value]) -> DtResult<Vec<Row>> {
        Ok(self.query(params)?.into_sorted_rows())
    }
}

impl std::fmt::Debug for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Statement")
            .field("sql", &self.inner.sql)
            .field("params", &self.inner.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_sync_and_cheaply_cloneable() {
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<Engine>();
        assert_send_sync_clone::<Session>();
        assert_send_sync_clone::<Statement>();
    }

    #[test]
    fn sessions_are_independent() {
        let engine = Engine::new(DbConfig::default());
        let a = engine.session_as("alpha");
        let b = engine.session_as("beta");
        a.set_variable("x", "1");
        assert_eq!(a.role(), "alpha");
        assert_eq!(b.role(), "beta");
        assert_eq!(a.variable("x").as_deref(), Some("1"));
        assert_eq!(b.variable("x"), None);
    }

    #[test]
    fn snapshot_capture_releases_the_engine_lock() {
        let engine = Engine::new(DbConfig::default());
        let session = engine.session();
        session.execute("CREATE TABLE t (k INT)").unwrap();
        session.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let snap = engine.snapshot();
        // The write lock is free while the snapshot is alive: a writer
        // proceeds, and the snapshot still answers from its pinned state.
        session.execute("INSERT INTO t VALUES (3)").unwrap();
        assert_eq!(snap.query("SELECT * FROM t").unwrap().len(), 2);
        assert_eq!(session.query("SELECT * FROM t").unwrap().len(), 3);
    }
}
