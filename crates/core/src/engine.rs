//! The public API: a shared [`Engine`] and per-connection [`Session`]s.
//!
//! The paper's system serves many concurrent sessions against one catalog:
//! queries read consistent snapshots while refreshes land in the
//! background. This module mirrors that split:
//!
//! - [`Engine`] owns the catalog, storage, transaction manager, scheduler,
//!   warehouses, and refresh log behind a reader/writer lock. It is
//!   cheaply cloneable (an `Arc` inside) and `Send + Sync`, so any number
//!   of threads can hold handles to one engine.
//! - [`Session`] is a per-connection handle created by
//!   [`Engine::session`]. It carries connection-local state — the current
//!   role, session variables, and a prepared-statement cache — and takes
//!   `&self` everywhere, so sessions can be shared or sent across threads
//!   freely.
//! - [`Statement`] is a prepared statement: lexed, parsed, and (for
//!   queries) bound once, then executed any number of times with different
//!   positional `?` parameter bindings.
//!
//! Read-only statements (`SELECT`, `EXPLAIN`, `SHOW DYNAMIC TABLES`) run
//! under the engine's *read* lock and proceed concurrently; DDL, DML, and
//! refreshes serialize under the write lock.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dt_common::{DtError, DtResult, Row, SimClock, Timestamp, Value};
use dt_plan::LogicalPlan;
use dt_sql::ast;

use crate::database::{DbConfig, EngineState, ExecResult, QueryResult};
use crate::refresh::RefreshLogEntry;
use crate::simulate::SimStats;

/// The role sessions run as unless [`Engine::session_as`] says otherwise.
pub const DEFAULT_ROLE: &str = "sysadmin";

/// A shared handle to one engine. Clones are cheap and refer to the same
/// underlying state; the handle is `Send + Sync`.
#[derive(Clone)]
pub struct Engine {
    state: Arc<RwLock<EngineState>>,
    /// The simulated clock, shared with the state (it has interior
    /// mutability, so advancing it needs no engine lock).
    clock: SimClock,
}

impl Engine {
    /// Create an empty engine at the simulation epoch.
    pub fn new(config: DbConfig) -> Self {
        let state = EngineState::new(config);
        let clock = state.clock().clone();
        Engine {
            state: Arc::new(RwLock::new(state)),
            clock,
        }
    }

    /// Open a session running as the default role (`sysadmin`).
    pub fn session(&self) -> Session {
        self.session_as(DEFAULT_ROLE)
    }

    /// Open a session running as `role`.
    pub fn session_as(&self, role: &str) -> Session {
        Session {
            engine: self.clone(),
            inner: Arc::new(SessionInner {
                role: Mutex::new(role.to_string()),
                variables: Mutex::new(BTreeMap::new()),
                statements: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Run a closure over the engine state under the read lock — the
    /// escape hatch for telemetry and introspection (catalog, scheduler,
    /// warehouses) without cloning.
    pub fn inspect<R>(&self, f: impl FnOnce(&EngineState) -> R) -> R {
        f(&self.state.read())
    }

    /// The simulated clock (advance it to let the scheduler act). Takes no
    /// engine lock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        use dt_common::Clock;
        self.clock.now()
    }

    /// Create a virtual warehouse with `nodes` nodes (§3.3.1).
    pub fn create_warehouse(&self, name: &str, nodes: u32) -> DtResult<()> {
        self.state.write().create_warehouse(name, nodes)
    }

    /// Run the scheduler until the virtual clock reaches `end`. Holds the
    /// write lock, so call it in short slices when readers should
    /// interleave.
    pub fn run_scheduler_until(&self, end: Timestamp) -> DtResult<SimStats> {
        self.state.write().run_scheduler_until(end)
    }

    /// A copy of the refresh log (every refresh executed so far).
    pub fn refresh_log(&self) -> Vec<RefreshLogEntry> {
        self.state.read().refresh_log().to_vec()
    }

    /// The bound logical plan of a DT's stored definition (operator-census
    /// harness, Figure 6).
    pub fn dt_plan(&self, name: &str) -> DtResult<LogicalPlan> {
        self.state.read().dt_plan(name)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").finish_non_exhaustive()
    }
}

/// Cap on the per-session statement cache: past this, the cache is cleared
/// before inserting (statement handles users still hold stay valid — they
/// share their state via `Arc`). Keeps sessions that prepare interpolated
/// SQL from growing without bound.
const STATEMENT_CACHE_CAP: usize = 256;

struct SessionInner {
    role: Mutex<String>,
    variables: Mutex<BTreeMap<String, String>>,
    /// Prepared statements by SQL text (per-connection statement cache).
    statements: Mutex<HashMap<String, Statement>>,
}

/// A per-connection handle: current role, session variables, and a
/// prepared-statement cache. Every method takes `&self`; clones share the
/// same session state.
#[derive(Clone)]
pub struct Session {
    engine: Engine,
    inner: Arc<SessionInner>,
}

impl Session {
    /// The engine this session talks to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The current role (RBAC checks use it).
    pub fn role(&self) -> String {
        self.inner.role.lock().clone()
    }

    /// Switch the session role.
    pub fn set_role(&self, role: &str) {
        *self.inner.role.lock() = role.to_string();
    }

    /// Set a session variable.
    pub fn set_variable(&self, name: &str, value: &str) {
        self.inner
            .variables
            .lock()
            .insert(name.to_ascii_lowercase(), value.to_string());
    }

    /// Read a session variable.
    pub fn variable(&self, name: &str) -> Option<String> {
        self.inner
            .variables
            .lock()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Execute one SQL statement. Statements containing `?` placeholders
    /// must go through [`Session::prepare`] instead.
    pub fn execute(&self, sql: &str) -> DtResult<ExecResult> {
        let stmt = dt_sql::parse(sql)?;
        let placeholders = stmt.placeholder_count();
        if placeholders > 0 {
            // Point at prepare only where prepare would actually accept
            // the statement; placeholders in DDL are unsupported outright.
            if !matches!(
                stmt,
                ast::Statement::Query(_)
                    | ast::Statement::Insert { .. }
                    | ast::Statement::Delete { .. }
                    | ast::Statement::Update { .. }
            ) {
                return Err(DtError::Unsupported(
                    "`?` placeholders are only supported in queries and DML \
                     (INSERT/UPDATE/DELETE), not DDL"
                        .into(),
                ));
            }
            return Err(DtError::Binding(format!(
                "statement has {placeholders} `?` placeholder(s); prepare it \
                 with Session::prepare and bind values at execute time"
            )));
        }
        if EngineState::is_read_statement(&stmt) {
            self.engine.state.read().read_statement(&stmt, &[])
        } else {
            self.engine
                .state
                .write()
                .execute_parsed(stmt, sql, &self.role(), &[])
        }
    }

    /// Run a query and return its result (rows + schema).
    pub fn query(&self, sql: &str) -> DtResult<QueryResult> {
        self.execute(sql)?
            .try_rows()
            .ok_or_else(|| DtError::Unsupported("not a query".into()))
    }

    /// Run a query and return sorted rows (deterministic comparisons).
    pub fn query_sorted(&self, sql: &str) -> DtResult<Vec<Row>> {
        Ok(self.query(sql)?.into_sorted_rows())
    }

    /// Time-travel query: evaluate at a past instant using persisted
    /// (commit-timestamp) version resolution.
    pub fn query_at(&self, sql: &str, at: Timestamp) -> DtResult<QueryResult> {
        self.engine.state.read().query_at(sql, at)
    }

    /// The isolation level guaranteed for a query (§4).
    pub fn query_isolation_level(&self, sql: &str) -> DtResult<dt_isolation::IsolationLevel> {
        self.engine.state.read().query_isolation_level(sql)
    }

    /// Prepare a statement: lex, parse, and (for queries) bind once.
    /// Returns a [`Statement`] accepting positional `?` parameters at
    /// execute time. Prepared statements are cached per session by SQL
    /// text, so preparing the same text twice is free.
    pub fn prepare(&self, sql: &str) -> DtResult<Statement> {
        if let Some(stmt) = self.inner.statements.lock().get(sql) {
            return Ok(stmt.clone());
        }
        let parsed = dt_sql::parse(sql)?;
        let params = parsed.placeholder_count();
        let kind = match parsed {
            ast::Statement::Query(q) => {
                // Bind now: validates the query and caches the plan.
                let state = self.engine.state.read();
                let plan = state.bind_query(&q)?.plan;
                let generation = state.ddl_generation();
                drop(state);
                PreparedKind::Query {
                    ast: q,
                    plan: Mutex::new((generation, Arc::new(plan))),
                }
            }
            dml @ (ast::Statement::Insert { .. }
            | ast::Statement::Delete { .. }
            | ast::Statement::Update { .. }) => PreparedKind::Command { ast: dml },
            other => {
                if params > 0 {
                    return Err(DtError::Unsupported(
                        "`?` placeholders are only supported in queries and \
                         DML (INSERT/UPDATE/DELETE), not DDL"
                            .into(),
                    ));
                }
                PreparedKind::Command { ast: other }
            }
        };
        let stmt = Statement {
            session: Arc::new(SessionRef {
                engine: self.engine.clone(),
                inner: Arc::downgrade(&self.inner),
            }),
            inner: Arc::new(PreparedInner {
                sql: sql.to_string(),
                params,
                binds: AtomicU64::new(1),
                kind,
            }),
        };
        let mut cache = self.inner.statements.lock();
        if cache.len() >= STATEMENT_CACHE_CAP {
            cache.clear();
        }
        cache.insert(sql.to_string(), stmt.clone());
        Ok(stmt)
    }

    /// Trigger a manual refresh of a DT and its upstream chain (§3.2).
    pub fn manual_refresh(&self, name: &str) -> DtResult<usize> {
        self.engine.state.write().manual_refresh(name, &self.role())
    }

    /// Grant a privilege on a named entity to a role (§3.4).
    pub fn grant(
        &self,
        role: &str,
        entity: &str,
        privilege: dt_catalog::Privilege,
    ) -> DtResult<()> {
        self.engine.state.write().grant(role, entity, privilege)
    }

    /// Number of statements in this session's prepared-statement cache.
    pub fn cached_statements(&self) -> usize {
        self.inner.statements.lock().len()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("role", &self.role()).finish()
    }
}

/// A weak back-reference to the owning session: statements must not keep
/// a session (and through it the cache that holds the statement) alive in
/// a reference cycle.
struct SessionRef {
    engine: Engine,
    inner: std::sync::Weak<SessionInner>,
}

impl SessionRef {
    /// The owning session's current role. Errors (fails closed) when the
    /// session has been dropped — a statement must never execute under a
    /// different role than its session's.
    fn role(&self) -> DtResult<String> {
        self.inner
            .upgrade()
            .map(|s| s.role.lock().clone())
            .ok_or_else(|| {
                DtError::Unsupported(
                    "the session owning this prepared statement was closed"
                        .into(),
                )
            })
    }
}

enum PreparedKind {
    /// A bound query: the plan is reused across executions and rebound
    /// only when the catalog's DDL generation moves.
    Query {
        ast: ast::Query,
        plan: Mutex<(u64, Arc<LogicalPlan>)>,
    },
    /// DML or parameter-free utility statements: re-executed from the
    /// parsed AST.
    Command { ast: ast::Statement },
}

struct PreparedInner {
    sql: String,
    params: usize,
    /// How many times the SQL was bound (1 at prepare; +1 per rebind after
    /// DDL). Lets tests assert that re-execution reuses one bound plan.
    binds: AtomicU64,
    kind: PreparedKind,
}

/// A prepared statement: parse/bind once, execute many times with
/// positional `?` parameters. Cheap to clone; clones share the bound plan.
#[derive(Clone)]
pub struct Statement {
    session: Arc<SessionRef>,
    inner: Arc<PreparedInner>,
}

impl Statement {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.inner.sql
    }

    /// Number of `?` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.inner.params
    }

    /// How many times the statement's SQL has been bound (1 unless DDL
    /// invalidated the cached plan).
    pub fn times_bound(&self) -> u64 {
        self.inner.binds.load(Ordering::Relaxed)
    }

    fn check_arity(&self, params: &[Value]) -> DtResult<()> {
        if params.len() != self.inner.params {
            return Err(DtError::Binding(format!(
                "statement expects {} parameter(s), {} bound",
                self.inner.params,
                params.len()
            )));
        }
        Ok(())
    }

    /// Execute with `params` bound to the `?` placeholders in order.
    pub fn execute(&self, params: &[Value]) -> DtResult<ExecResult> {
        self.check_arity(params)?;
        match &self.inner.kind {
            PreparedKind::Query { .. } => Ok(ExecResult::Rows(self.query(params)?)),
            // EXPLAIN / SHOW are read-only: serve them under the read lock
            // like Session::execute does.
            PreparedKind::Command { ast } if EngineState::is_read_statement(ast) => self
                .session
                .engine
                .state
                .read()
                .read_statement(ast, params),
            PreparedKind::Command { ast } => {
                let role = self.session.role()?;
                self.session.engine.state.write().execute_parsed(
                    ast.clone(),
                    &self.inner.sql,
                    &role,
                    params,
                )
            }
        }
    }

    /// Execute a prepared query with `params`, reusing the bound plan.
    pub fn query(&self, params: &[Value]) -> DtResult<QueryResult> {
        self.check_arity(params)?;
        let PreparedKind::Query { ast, plan } = &self.inner.kind else {
            return Err(DtError::Unsupported("not a query".into()));
        };
        let state = self.session.engine.state.read();
        let bound = {
            let mut slot = plan.lock();
            if slot.0 != state.ddl_generation() {
                // DDL moved under us: rebind against the live catalog.
                slot.1 = Arc::new(state.bind_query(ast)?.plan);
                slot.0 = state.ddl_generation();
                self.inner.binds.fetch_add(1, Ordering::Relaxed);
            }
            Arc::clone(&slot.1)
        };
        if params.is_empty() && bound.max_parameter().is_none() {
            // Parameter-free: execute the cached plan directly, no copy.
            let rows = state.execute_plan_latest(&bound)?;
            Ok(QueryResult::new(bound.schema(), rows))
        } else {
            let plan = bound.bind_params(params)?;
            let rows = state.execute_plan_latest(&plan)?;
            Ok(QueryResult::new(plan.schema(), rows))
        }
    }

    /// Execute a prepared query and return sorted rows.
    pub fn query_sorted(&self, params: &[Value]) -> DtResult<Vec<Row>> {
        Ok(self.query(params)?.into_sorted_rows())
    }
}

impl std::fmt::Debug for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Statement")
            .field("sql", &self.inner.sql)
            .field("params", &self.inner.params)
            .finish()
    }
}

/// The pre-`Engine` single-connection façade, kept as a thin compatibility
/// shim: one engine plus one session, with the old `&mut self` signatures
/// delegating to the new API.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::new(config)` and `engine.session()` — see the \
            README migration table"
)]
pub struct Database {
    engine: Engine,
    session: Session,
}

#[allow(deprecated)]
impl Database {
    /// Create an empty database at the simulation epoch.
    pub fn new(config: DbConfig) -> Self {
        let engine = Engine::new(config);
        let session = engine.session();
        Database { engine, session }
    }

    /// The shared engine behind this façade.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The façade's single session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        self.engine.clock()
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.engine.now()
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> DtResult<ExecResult> {
        self.session.execute(sql)
    }

    /// Run a query and return its rows.
    pub fn query(&mut self, sql: &str) -> DtResult<Vec<Row>> {
        Ok(self.session.query(sql)?.into_rows())
    }

    /// Run a query and return sorted rows.
    pub fn query_sorted(&mut self, sql: &str) -> DtResult<Vec<Row>> {
        self.session.query_sorted(sql)
    }

    /// Time-travel query at a past instant.
    pub fn query_at(&self, sql: &str, at: Timestamp) -> DtResult<Vec<Row>> {
        Ok(self.session.query_at(sql, at)?.into_rows())
    }

    /// Switch the session role.
    pub fn set_role(&mut self, role: &str) {
        self.session.set_role(role);
    }

    /// Grant a privilege on a named entity to a role.
    pub fn grant(
        &mut self,
        role: &str,
        entity: &str,
        privilege: dt_catalog::Privilege,
    ) -> DtResult<()> {
        self.session.grant(role, entity, privilege)
    }

    /// Create a virtual warehouse.
    pub fn create_warehouse(&mut self, name: &str, nodes: u32) -> DtResult<()> {
        self.engine.create_warehouse(name, nodes)
    }

    /// Trigger a manual refresh.
    pub fn manual_refresh(&mut self, name: &str) -> DtResult<usize> {
        self.session.manual_refresh(name)
    }

    /// Run the scheduler until the virtual clock reaches `end`.
    pub fn run_scheduler_until(&mut self, end: Timestamp) -> DtResult<SimStats> {
        self.engine.run_scheduler_until(end)
    }

    /// A copy of the refresh log.
    pub fn refresh_log(&self) -> Vec<RefreshLogEntry> {
        self.engine.refresh_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_sync_and_cheaply_cloneable() {
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<Engine>();
        assert_send_sync_clone::<Session>();
        assert_send_sync_clone::<Statement>();
    }

    #[test]
    fn sessions_are_independent() {
        let engine = Engine::new(DbConfig::default());
        let a = engine.session_as("alpha");
        let b = engine.session_as("beta");
        a.set_variable("x", "1");
        assert_eq!(a.role(), "alpha");
        assert_eq!(b.role(), "beta");
        assert_eq!(a.variable("x").as_deref(), Some("1"));
        assert_eq!(b.variable("x"), None);
    }

    #[test]
    #[allow(deprecated)]
    fn database_shim_delegates() {
        let mut db = Database::new(DbConfig::default());
        db.create_warehouse("wh", 1).unwrap();
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        assert_eq!(db.query("SELECT * FROM t").unwrap().len(), 2);
    }
}
