//! Dynamic Tables: the paper's primary contribution, assembled.
//!
//! [`Database`] is the public façade — a single-node analytical database
//! with Snowflake-style Dynamic Tables:
//!
//! ```
//! use dt_core::{Database, DbConfig};
//!
//! let mut db = Database::new(DbConfig::default());
//! db.create_warehouse("wh", 4).unwrap();
//! db.execute("CREATE TABLE clicks (user_id INT, n INT)").unwrap();
//! db.execute("INSERT INTO clicks VALUES (1, 10), (2, 5)").unwrap();
//! db.execute(
//!     "CREATE DYNAMIC TABLE per_user TARGET_LAG = '1 minute' WAREHOUSE = wh \
//!      AS SELECT user_id, sum(n) total FROM clicks GROUP BY user_id",
//! )
//! .unwrap();
//! let rows = db.query("SELECT * FROM per_user").unwrap();
//! assert_eq!(rows.len(), 2);
//! ```
//!
//! The crate wires together every substrate built for this reproduction:
//! versioned copy-on-write storage (`dt-storage`), the HLC-based
//! transaction manager with refresh-timestamp version resolution
//! (`dt-txn`), the catalog with its DDL log (`dt-catalog`), the SQL
//! front end and binder (`dt-sql`/`dt-plan`), the executor (`dt-exec`),
//! query differentiation (`dt-ivm`), and the lag-driven scheduler with
//! virtual warehouses (`dt-scheduler`).
//!
//! Delayed view semantics is enforced end to end: after every refresh the
//! DT's contents equal its defining query evaluated at the refresh's data
//! timestamp, and the optional [`DbConfig::validate_dvs`] mode re-checks
//! that equality on every refresh — the paper's §6.1 level-4 randomized
//! validation, which the `dvs_validation` harness and property tests run
//! at scale.

pub mod database;
pub mod providers;
pub mod refresh;
pub mod simulate;

pub use database::{Database, DbConfig, ExecResult};
pub use providers::VersionSemantics;
pub use simulate::SimStats;
