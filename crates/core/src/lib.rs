//! Dynamic Tables: the paper's primary contribution, assembled.
//!
//! [`Engine`] owns the shared state — catalog, versioned storage, the
//! transaction manager, scheduler, and virtual warehouses — and any number
//! of [`Session`]s execute SQL against it concurrently:
//!
//! ```
//! use dt_core::{DbConfig, Engine};
//! use dt_common::Value;
//!
//! let engine = Engine::new(DbConfig::default());
//! engine.create_warehouse("wh", 4).unwrap();
//!
//! let session = engine.session();
//! session.execute("CREATE TABLE clicks (user_id INT, n INT)").unwrap();
//! session.execute("INSERT INTO clicks VALUES (1, 10), (2, 5)").unwrap();
//! session.execute(
//!     "CREATE DYNAMIC TABLE per_user TARGET_LAG = '1 minute' WAREHOUSE = wh \
//!      AS SELECT user_id, sum(n) total FROM clicks GROUP BY user_id",
//! )
//! .unwrap();
//!
//! // Plain queries take `&self` and run against an MVCC snapshot: a
//! // brief read-lock capture pins per-table versions, then bind, plan,
//! // and execute run with no engine lock at all.
//! let rows = session.query("SELECT * FROM per_user").unwrap();
//! assert_eq!(rows.len(), 2);
//!
//! // Snapshots are first-class: pin one and re-read it while writers
//! // proceed — results are byte-identical until you capture a new one.
//! let snap = session.snapshot();
//! let pinned = snap.query_sorted("SELECT * FROM per_user").unwrap();
//! session.execute("INSERT INTO clicks VALUES (1, 99)").unwrap();
//! assert_eq!(snap.query_sorted("SELECT * FROM per_user").unwrap(), pinned);
//!
//! // Prepared statements bind once and re-execute with `?` parameters.
//! let stmt = session.prepare("SELECT total FROM per_user WHERE user_id = ?").unwrap();
//! let one = stmt.query(&[Value::Int(1)]).unwrap();
//! assert_eq!(one.rows()[0].get(0), &Value::Int(10));
//! let two = stmt.query(&[Value::Int(2)]).unwrap();
//! assert_eq!(two.rows()[0].get(0), &Value::Int(5));
//!
//! // Explicit transactions: reads pinned to one snapshot, DML buffered
//! // and applied atomically (first committer wins) at commit. SQL
//! // BEGIN/COMMIT/ROLLBACK through `Session::execute` drive the same
//! // lifecycle.
//! let mut txn = session.begin();
//! txn.execute("INSERT INTO clicks VALUES (3, 7)").unwrap();
//! assert_eq!(txn.query("SELECT * FROM clicks").unwrap().len(), 4);
//! assert_eq!(session.query("SELECT * FROM clicks").unwrap().len(), 3);
//! txn.commit().unwrap();
//! assert_eq!(session.query("SELECT * FROM clicks").unwrap().len(), 4);
//! ```
//!
//! The crate wires together every substrate built for this reproduction:
//! versioned copy-on-write storage (`dt-storage`), the HLC-based
//! transaction manager with refresh-timestamp version resolution
//! (`dt-txn`), the catalog with its DDL log (`dt-catalog`), the SQL
//! front end and binder (`dt-sql`/`dt-plan`), the executor (`dt-exec`),
//! query differentiation (`dt-ivm`), and the lag-driven scheduler with
//! virtual warehouses (`dt-scheduler`).
//!
//! Delayed view semantics is enforced end to end: after every refresh the
//! DT's contents equal its defining query evaluated at the refresh's data
//! timestamp, and the optional [`DbConfig::validate_dvs`] mode re-checks
//! that equality on every refresh — the paper's §6.1 level-4 randomized
//! validation, which the `dvs_validation` harness and property tests run
//! at scale.

mod compat;
pub mod database;
mod dml;
mod durability;
pub mod engine;
pub mod locking;
pub mod morsel;
pub mod parallel_refresh;
pub mod providers;
pub mod refresh;
pub mod simulate;
pub mod snapshot;
pub mod transaction;

pub use database::{DbConfig, EngineState, ExecResult, QueryResult};
pub use dt_common::DurabilityMode;
pub use dt_wal::WalStatsSnapshot;
/// The pre-`Engine` single-connection façade. The deprecation lives on
/// this alias — the only public path to the shim — so `dt-core` itself
/// compiles without any internal `#[allow(deprecated)]`.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::new(config)` and `engine.session()` — see the \
            README migration table"
)]
pub type Database = compat::Database;
pub use engine::{CommitStats, Engine, Session, Statement, DEFAULT_ROLE};
pub use locking::{AdaptiveConfig, AdaptivePolicy};
pub use parallel_refresh::{
    InstalledRefresh, PreparedRefresh, RefreshRoundReport, RefreshStats, RoundStatus,
};
pub use providers::VersionSemantics;
pub use refresh::{RefreshLog, RefreshLogEntry};
pub use simulate::SimStats;
pub use snapshot::ReadSnapshot;
pub use transaction::{is_serialization_conflict, PreparedCommit, Transaction};
