//! Adaptive per-table concurrency control: the policy that decides when a
//! table's admission lock should stop being optimistic.
//!
//! Optimistic first-committer-wins is free on disjoint workloads but
//! degrades into abort-retry churn when many writers hammer one table.
//! [`AdaptivePolicy`] watches each table's commit/abort outcomes in fixed
//! windows; when the abort fraction of a completed window crosses the
//! configured threshold, the table's mode flips to pessimistic (FIFO
//! wait-queues in the [`dt_txn::LockManager`]) so contending writers
//! serialize by parking instead of burning retries. After a cool-down the
//! mode flips back to optimistic — if the contention storm is over, the
//! wait-free path returns; if not, the next window flips it right back
//! (hysteresis comes from the window + cool-down pair, so a borderline
//! table doesn't flap every commit).
//!
//! `ALTER TABLE ... SET LOCKING {OPTIMISTIC|PESSIMISTIC}` pins a table and
//! makes this policy's decisions no-ops for it;
//! `... SET LOCKING AUTO` hands control back.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dt_common::EntityId;
use dt_txn::{LockManager, LockMode};

/// Tuning for the adaptive policy (the `adaptive_*` knobs of
/// [`crate::DbConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Outcomes (commits + aborts) per decision window.
    pub window: u32,
    /// Abort fraction at or above which a completed window flips the
    /// table to pessimistic.
    pub abort_threshold: f64,
    /// How long a table stays pessimistic before the policy tries
    /// optimistic again.
    pub cooldown: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 32,
            abort_threshold: 0.5,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// One table's outcome window.
#[derive(Debug, Default)]
struct TableWindow {
    commits: u32,
    aborts: u32,
    /// When the policy last flipped this table to pessimistic (cool-down
    /// anchor). `None` while optimistic.
    flipped_at: Option<Instant>,
}

/// The engine's adaptive lock-mode controller. Commit and abort outcomes
/// are recorded from the commit pipeline (no engine lock held); decisions
/// are applied straight onto the shared [`LockManager`], which ignores
/// them for manually pinned tables.
pub struct AdaptivePolicy {
    locks: Arc<LockManager>,
    cfg: AdaptiveConfig,
    tables: Mutex<HashMap<EntityId, TableWindow>>,
}

impl AdaptivePolicy {
    /// Build over the engine's shared lock manager.
    pub fn new(locks: Arc<LockManager>, cfg: AdaptiveConfig) -> Self {
        AdaptivePolicy {
            locks,
            cfg,
            tables: Mutex::new(HashMap::new()),
        }
    }

    /// Record a successful commit touching `entity`.
    pub fn record_commit(&self, entity: EntityId) {
        self.record(entity, false)
    }

    /// Record a serialization abort (admission conflict or validation
    /// failure) touching `entity`.
    pub fn record_abort(&self, entity: EntityId) {
        self.record(entity, true)
    }

    fn record(&self, entity: EntityId, abort: bool) {
        let mut tables = self.tables.lock();
        let w = tables.entry(entity).or_default();
        // Cool-down check first, lazily: a pessimistic table whose storm
        // has passed sees few outcomes, so the flip back must not depend
        // on filling a window.
        if let Some(at) = w.flipped_at {
            if at.elapsed() >= self.cfg.cooldown
                && self.locks.set_adaptive_mode(entity, LockMode::Optimistic)
            {
                w.flipped_at = None;
                w.commits = 0;
                w.aborts = 0;
            }
        }
        if abort {
            w.aborts += 1;
        } else {
            w.commits += 1;
        }
        if w.commits + w.aborts >= self.cfg.window.max(1) {
            let frac = f64::from(w.aborts) / f64::from(w.commits + w.aborts);
            if frac >= self.cfg.abort_threshold
                && self.locks.set_adaptive_mode(entity, LockMode::Pessimistic)
            {
                w.flipped_at = Some(Instant::now());
            }
            w.commits = 0;
            w.aborts = 0;
        }
    }

    /// Drop a table's window (table dropped from the catalog).
    pub fn forget_table(&self, entity: EntityId) {
        self.tables.lock().remove(&entity);
    }
}

impl std::fmt::Debug for AdaptivePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptivePolicy")
            .field("window", &self.cfg.window)
            .field("abort_threshold", &self.cfg.abort_threshold)
            .field("cooldown", &self.cfg.cooldown)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(window: u32, threshold: f64, cooldown: Duration) -> AdaptivePolicy {
        AdaptivePolicy::new(
            Arc::new(LockManager::new()),
            AdaptiveConfig {
                window,
                abort_threshold: threshold,
                cooldown,
            },
        )
    }

    #[test]
    fn hot_window_flips_to_pessimistic_once() {
        let p = policy(4, 0.5, Duration::from_secs(3600));
        let e = EntityId(1);
        for _ in 0..2 {
            p.record_commit(e);
            p.record_abort(e);
        }
        assert_eq!(p.locks.mode(e), LockMode::Pessimistic);
        assert_eq!(p.locks.stats().adaptive_flips, 1);
        // More hot windows while already pessimistic flip nothing.
        for _ in 0..8 {
            p.record_abort(e);
        }
        assert_eq!(p.locks.stats().adaptive_flips, 1);
    }

    #[test]
    fn calm_window_stays_optimistic() {
        let p = policy(4, 0.5, Duration::from_secs(3600));
        let e = EntityId(1);
        for _ in 0..12 {
            p.record_commit(e);
        }
        assert_eq!(p.locks.mode(e), LockMode::Optimistic);
        assert_eq!(p.locks.stats().adaptive_flips, 0);
    }

    #[test]
    fn cooldown_flips_back_to_optimistic() {
        let p = policy(2, 0.5, Duration::from_millis(1));
        let e = EntityId(1);
        p.record_abort(e);
        p.record_abort(e);
        assert_eq!(p.locks.mode(e), LockMode::Pessimistic);
        std::thread::sleep(Duration::from_millis(5));
        // The next outcome observes the elapsed cool-down and reverts.
        p.record_commit(e);
        assert_eq!(p.locks.mode(e), LockMode::Optimistic);
        assert_eq!(p.locks.stats().adaptive_flips, 2);
    }

    #[test]
    fn pinned_tables_are_left_alone() {
        let p = policy(2, 0.5, Duration::from_secs(3600));
        let e = EntityId(1);
        p.locks.set_policy(e, dt_txn::LockPolicy::Optimistic);
        for _ in 0..10 {
            p.record_abort(e);
        }
        assert_eq!(p.locks.mode(e), LockMode::Optimistic);
        assert_eq!(p.locks.stats().adaptive_flips, 0);
    }
}
