//! Morsel-style parallel partition scans.
//!
//! A pinned [`TableSnapshot`] is a list of immutable `Arc`'d partitions, so
//! scanning parallelizes trivially: worker threads pull partition indices
//! from a shared atomic cursor (the "morsel" dispenser — no pre-chunking,
//! so a thread that drew cheap pruned partitions just pulls more) and each
//! produces that partition's filtered batch. Zone-map pruning happens on
//! the worker before any column data is touched. Results are reassembled
//! in partition order, so a parallel scan returns byte-identical batches
//! to a sequential one.
//!
//! Scoped threads keep this dependency-free and borrow-friendly: workers
//! borrow the snapshot and filter straight off the caller's stack.

use std::sync::atomic::{AtomicUsize, Ordering};

use dt_common::{Batch, PredicateSet};
use dt_storage::TableSnapshot;

/// Scan `snap` as columnar batches (zone-map-pruned by `filter`), fanning
/// the partitions out over up to `threads` workers. Falls back to the
/// sequential scan when the parallelism cannot pay for itself (one thread,
/// or fewer partitions than would keep two threads busy).
pub fn scan_batches_parallel(
    snap: &TableSnapshot,
    filter: Option<&PredicateSet>,
    threads: usize,
) -> Vec<Batch> {
    let n = snap.partition_count();
    let threads = threads.min(n);
    if threads <= 1 {
        return snap.scan_batches(filter);
    }
    let cursor = AtomicUsize::new(0);
    let mut found: Vec<(usize, Batch)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if let Some(b) = snap.partition_batch(i, filter) {
                            got.push((i, b));
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    // Partition order == scan order; reassemble it.
    found.sort_by_key(|(i, _)| *i);
    found.into_iter().map(|(_, b)| b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{row, CmpOp, Column, ColumnPredicate, DataType, Schema, Timestamp, TxnId, Value};
    use dt_storage::TableStore;

    fn snapshot_with(n: i64) -> TableSnapshot {
        let t = TableStore::with_partition_capacity(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            Timestamp::EPOCH,
            TxnId(0),
            8,
        );
        t.commit_change(
            (0..n).map(|i| row!(i)).collect(),
            vec![],
            Timestamp::from_secs(1),
            TxnId(1),
        )
        .unwrap();
        t.snapshot_latest()
    }

    #[test]
    fn parallel_scan_matches_sequential_scan() {
        let snap = snapshot_with(100);
        assert!(snap.partition_count() > 1);
        for threads in [1, 2, 4, 16] {
            let rows: Vec<_> = scan_batches_parallel(&snap, None, threads)
                .iter()
                .flat_map(|b| b.to_rows())
                .collect();
            assert_eq!(rows, snap.scan(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_scan_prunes_and_filters_like_sequential() {
        let snap = snapshot_with(100);
        let f = PredicateSet::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::GtEq,
            literal: Value::Int(90),
        }]);
        let expect: Vec<_> = (90..100i64).map(|i| row!(i)).collect();
        for threads in [1, 3, 8] {
            let rows: Vec<_> = scan_batches_parallel(&snap, Some(&f), threads)
                .iter()
                .flat_map(|b| b.to_rows())
                .collect();
            assert_eq!(rows, expect, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_partitions_is_fine() {
        let snap = snapshot_with(3); // single partition
        let rows: Vec<_> = scan_batches_parallel(&snap, None, 64)
            .iter()
            .flat_map(|b| b.to_rows())
            .collect();
        assert_eq!(rows.len(), 3);
    }
}
