//! Parallel DAG refresh (PR 8): refresh a whole dependency DAG of dynamic
//! tables concurrently, level by level.
//!
//! The paper's scheduler (§5.2) aligns every DT in a DAG to shared grid
//! timestamps; this module supplies the execution engine that exploits the
//! alignment. A round works in three phases:
//!
//! 1. **Level** — one topological level order over the due set
//!    ([`dt_scheduler::Scheduler::level_order`]); every DT in a level
//!    depends only on levels already installed.
//! 2. **Pin + delta** — each worker admits its DT (per-DT transaction
//!    lock, §5.3), pins the refresh environment (upstream store handles +
//!    frontier) under a brief engine **read** lock, then computes its
//!    delta completely lock-free, staging the result as a
//!    [`dt_storage::PreparedChange`] against the DT's pinned base version.
//! 3. **Group install** — the O(metadata) install rides a dedicated
//!    [`dt_txn::CommitQueue`]: one leader drains every staged refresh of
//!    the level under a single engine write lock acquisition, validates
//!    each under its table's [`dt_storage::CommitGuard`], and installs —
//!    so a whole level lands in one or two lock acquisitions instead of N.
//!
//! A DT that fails, conflicts, or is suspended prunes its downstream cone
//! for the round (§3.3.3): descendants cannot produce a consistent result
//! at the round timestamp without it, and they retry next round.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dt_catalog::DtState;
use dt_common::{DtError, DtResult, EntityId, Timestamp};
use dt_plan::LogicalPlan;
use dt_scheduler::{RefreshAction, RefreshOutcome};
use dt_storage::{PreparedChange, TableStore};
use dt_txn::{CommitQueue, Frontier, Txn};

use crate::database::EngineState;
use crate::durability::{SideEffect, WalRecord};
use crate::providers::VersionSemantics;
use crate::refresh::{action_label, compute_refresh, RefreshLogEntry};
use crate::Engine;

/// Refresh-pipeline telemetry: how the parallel refresh path has used the
/// engine write lock so far. Captured with [`Engine::refresh_stats`].
///
/// The load-bearing relation mirrors [`crate::CommitStats`]: with group
/// install, a level of N refreshes completes under fewer than N engine
/// write lock acquisitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshStats {
    /// Refreshes recorded in the refresh log (serial and parallel alike).
    pub refreshes: u64,
    /// Times the refresh install path acquired the engine write lock —
    /// one per group-install batch.
    pub install_lock_acquisitions: u64,
    /// Largest group-install batch landed under one acquisition.
    pub max_batch: u64,
    /// Refresh installs that went through the group-install queue.
    pub group_submitted: u64,
    /// Parallel rounds driven by [`Engine::refresh_all_parallel`].
    pub parallel_rounds: u64,
    /// Current worker-pool size for parallel rounds.
    pub workers: u64,
}

/// State shared by every handle of one engine that serves the parallel
/// refresh path *outside* the engine lock: the group-install queue
/// (submitters hold no engine lock while enqueueing) and the telemetry
/// counters. The dedicated queue keeps refresh installs from interleaving
/// into DML group-commit batches — the two paths contend only on the
/// engine write lock itself.
pub(crate) struct RefreshShared {
    pub(crate) queue: CommitQueue<RefreshInstall, DtResult<InstalledRefresh>>,
    install_lock_acquisitions: AtomicU64,
    max_batch: AtomicU64,
    rounds: AtomicU64,
    threads: AtomicUsize,
}

impl RefreshShared {
    pub(crate) fn new() -> Self {
        let default_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RefreshShared {
            queue: CommitQueue::new(),
            install_lock_acquisitions: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            threads: AtomicUsize::new(default_threads),
        }
    }

    /// Record one engine-write-lock acquisition installing `batch` refreshes.
    fn record_batch(&self, batch: usize) {
        self.install_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(batch as u64, Ordering::Relaxed);
    }
}

/// A fully staged refresh awaiting its O(metadata) install — the queue
/// request type. Built by [`Engine::prepare_refresh`].
pub(crate) struct RefreshInstall {
    dt: EntityId,
    refresh_ts: Timestamp,
    txn: Txn,
    started: Instant,
    fixed_units: f64,
    kind: InstallKind,
}

enum InstallKind {
    /// The delta computed and staged; install validates and publishes it.
    Staged {
        store: Arc<TableStore>,
        /// `None` for NO_DATA: only the data timestamp advances. Boxed
        /// to keep the `Failed` variant small.
        prep: Option<Box<PreparedChange>>,
        outcome: RefreshOutcome,
        source_rows: usize,
        new_frontier: Frontier,
        upstream: Vec<EntityId>,
        /// Query evolution detected at prepare: the new fingerprint and
        /// upstream set, applied to the catalog at install (§5.4).
        evolved: Option<(u64, Vec<EntityId>)>,
        /// The bound plan, carried only when DVS validation is on.
        /// Boxed to keep the `Failed` variant small.
        validate_plan: Option<Box<LogicalPlan>>,
    },
    /// The refresh failed with a user error at prepare time; install
    /// records the failure (error counter, suspension policy, log) so
    /// failure bookkeeping serializes with everything else.
    Failed { error: String },
}

/// The result of one installed (or recorded-failed) refresh.
#[derive(Debug, Clone)]
pub struct InstalledRefresh {
    /// The DT refreshed.
    pub dt: EntityId,
    /// The data timestamp refreshed to.
    pub refresh_ts: Timestamp,
    /// The storage commit timestamp (= `refresh_ts` for NO_DATA/failed).
    pub commit_ts: Timestamp,
    /// Action label ("no_data", "full", "incremental", "reinitialize",
    /// "failed").
    pub action: &'static str,
    /// Delta rows installed.
    pub changed_rows: usize,
    /// DT size after the refresh.
    pub dt_rows: usize,
    /// The user error, when `action == "failed"`.
    pub error: Option<String>,
}

/// A refresh whose row work is done and staged, holding the DT's refresh
/// lock. [`PreparedRefresh::install`] publishes it through the
/// group-install queue; dropping without installing aborts the refresh
/// transaction and releases the lock, installing nothing.
pub struct PreparedRefresh {
    engine: Engine,
    request: Option<RefreshInstall>,
}

impl PreparedRefresh {
    /// The DT this refresh targets.
    pub fn dt(&self) -> EntityId {
        self.request.as_ref().expect("not yet installed").dt
    }

    /// True when the prepare phase classified this refresh as failed (a
    /// user error); install will record the failure rather than publish.
    pub fn is_failed(&self) -> bool {
        matches!(
            self.request.as_ref().expect("not yet installed").kind,
            InstallKind::Failed { .. }
        )
    }

    /// Install through the group-install queue. Blocks until a leader (this
    /// thread or another) lands the batch containing this refresh. Returns
    /// `Err(DtError::Conflict)` when validation lost — the DT's version
    /// moved past the prepared base, or a table read by the refresh was
    /// dropped mid-round; the refresh transaction is aborted and nothing
    /// was installed.
    pub fn install(mut self) -> DtResult<InstalledRefresh> {
        let request = self.request.take().expect("already installed");
        let txn = request.txn.clone();
        let engine = self.engine.clone();
        let inner = self.engine.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            engine.refresh.queue.submit(request, move |batch| {
                install_refresh_batch(&inner, batch)
            })
        }));
        match result {
            Ok(outcome) => outcome,
            Err(panic) => {
                // A poisoned queue (a leader panicked mid-batch) leaves the
                // refresh unpublished; release the DT lock before unwinding.
                let _ = self.engine.inspect(|st| st.txn_manager().abort(&txn));
                std::panic::resume_unwind(panic)
            }
        }
    }
}

impl Drop for PreparedRefresh {
    fn drop(&mut self) {
        if let Some(req) = self.request.take() {
            let _ = self.engine.inspect(|st| st.txn_manager().abort(&req.txn));
        }
    }
}

/// Per-DT status within one parallel round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundStatus {
    /// Installed (including NO_DATA) — the DT advanced to the round's
    /// data timestamp. `at_micros` is the wall-clock offset from round
    /// start to install completion (the DT's actual lag at that instant).
    Installed {
        /// Action label.
        action: &'static str,
        /// Delta rows installed.
        changed_rows: usize,
        /// Wall-clock micros from round start to install.
        at_micros: u64,
    },
    /// Failed with a recorded user error; its cone was pruned.
    Failed(String),
    /// Skipped on a typed conflict (locked by an overlapping round, or a
    /// table it reads was dropped mid-round); its cone was pruned.
    Conflict(String),
    /// Skipped because an ancestor was unavailable this round.
    Pruned,
}

/// The report of one [`Engine::refresh_all_parallel`] round.
#[derive(Debug, Clone)]
pub struct RefreshRoundReport {
    /// The shared data timestamp every DT in the round refreshed to.
    pub refresh_ts: Timestamp,
    /// Topological levels executed.
    pub levels: usize,
    /// DTs installed (including NO_DATA).
    pub refreshed: usize,
    /// Of `refreshed`, how many were NO_DATA.
    pub no_data: usize,
    /// DTs whose refresh failed with a recorded user error.
    pub failed: usize,
    /// DTs skipped on a typed conflict.
    pub conflicts: usize,
    /// DTs pruned because an ancestor was unavailable.
    pub pruned: usize,
    /// Per-DT status, in completion order within each level.
    pub outcomes: Vec<(EntityId, RoundStatus)>,
}

impl Engine {
    /// Set the worker-pool size for [`Engine::refresh_all_parallel`]
    /// (clamped to at least 1; defaults to the host's available
    /// parallelism).
    pub fn set_refresh_threads(&self, n: usize) {
        self.refresh.threads.store(n.max(1), Ordering::Relaxed);
    }

    /// Current worker-pool size for parallel refresh rounds.
    pub fn refresh_threads(&self) -> usize {
        self.refresh.threads.load(Ordering::Relaxed).max(1)
    }

    /// Refresh-pipeline telemetry. No engine lock is taken.
    pub fn refresh_stats(&self) -> RefreshStats {
        let q = self.refresh.queue.stats();
        RefreshStats {
            refreshes: self.refresh_log().len() as u64,
            install_lock_acquisitions: self
                .refresh
                .install_lock_acquisitions
                .load(Ordering::Relaxed),
            max_batch: self.refresh.max_batch.load(Ordering::Relaxed),
            group_submitted: q.submitted,
            parallel_rounds: self.refresh.rounds.load(Ordering::Relaxed),
            workers: self.refresh_threads() as u64,
        }
    }

    /// Refresh installs currently enqueued behind the in-flight
    /// group-install batch (telemetry; tests use it to observe batching).
    pub fn pending_refresh_installs(&self) -> usize {
        self.refresh.queue.pending()
    }

    /// Prepare one refresh of `dt` to `refresh_ts`: admit (per-DT lock),
    /// pin a refresh environment under a brief engine **read** lock, and
    /// compute + stage the delta lock-free. Returns `Err` on admission
    /// conflicts (another round holds the DT) and internal errors; user
    /// errors (binding/evaluation) return a failed [`PreparedRefresh`]
    /// whose install records the failure.
    pub fn prepare_refresh(&self, dt: EntityId, refresh_ts: Timestamp) -> DtResult<PreparedRefresh> {
        let started = Instant::now();
        // Phase 1 — under the engine read lock: resolve, admit, bind, pin.
        let st = self.state.read();
        let fixed_units = st.config.cost_model.fixed_units;
        let entity = st
            .catalog()
            .get(dt)
            .map_err(|_| DtError::Conflict(format!("refresh target {dt} was dropped")))?;
        if !entity.is_live() {
            return Err(DtError::Conflict(format!(
                "refresh target {dt} was dropped"
            )));
        }
        let meta = entity
            .as_dt()
            .ok_or_else(|| DtError::internal(format!("{dt} is not a DT")))?
            .clone();

        // Admit: the per-DT refresh lock (§5.3) — overlapping rounds
        // serialize here, conflict-fast.
        let txn = st.txn_manager().begin_at(refresh_ts);
        if let Err(e) = st.txn_manager().try_lock(&txn, dt) {
            let _ = st.txn_manager().abort(&txn);
            return Err(e);
        }
        // Staleness: an overlapping round with a newer timestamp may have
        // already refreshed this DT past `refresh_ts` (frontiers only move
        // forward). Conflict out; the DT needs nothing from this round.
        // The per-DT lock held from here through install keeps the
        // frontier frozen, so this check cannot race.
        if let Some(prev) = st.frontiers.get(&dt) {
            if prev.refresh_ts >= refresh_ts {
                let _ = st.txn_manager().abort(&txn);
                return Err(DtError::Conflict(format!(
                    "a newer refresh of {dt} (ts {}) already installed at or past {refresh_ts}",
                    prev.refresh_ts
                )));
            }
        }
        let failed = |error: DtError| {
            Ok(PreparedRefresh {
                engine: self.clone(),
                request: Some(RefreshInstall {
                    dt,
                    refresh_ts,
                    txn: txn.clone(),
                    started,
                    fixed_units,
                    kind: InstallKind::Failed {
                        error: error.to_string(),
                    },
                }),
            })
        };
        let abort = |e: DtError| {
            let _ = st.txn_manager().abort(&txn);
            Err(e)
        };

        // Bind the defining query against the live catalog (§5.4); a
        // dropped upstream surfaces here as a user error that fails the
        // refresh without poisoning the round.
        let bound = (|| {
            let parsed = dt_sql::parse(&meta.definition_sql)?;
            let dt_sql::ast::Statement::Query(q) = parsed else {
                return Err(DtError::internal("DT definition is not a query"));
            };
            st.bind_query(&q)
        })();
        let bound = match bound {
            Ok(b) => b,
            // A `Catalog` error here means an upstream no longer resolves
            // (dropped since the last round) — user-fixable (§3.3.3), so
            // it fails this DT's refresh instead of poisoning the round.
            Err(e) if e.is_user_error() || matches!(e, DtError::Catalog(_)) => return failed(e),
            Err(e) => return abort(e),
        };
        let plan = bound.plan;
        let upstream_now = plan.scanned_entities();
        let fingerprint_now = st.catalog().fingerprint(&upstream_now);
        let evolved = fingerprint_now != meta.definition_fingerprint;
        let prev = st.frontiers.get(&dt).cloned();
        let env = match st.refresh_env(dt, &upstream_now) {
            Ok(env) => env,
            Err(e) => return abort(e),
        };
        let validate = st.config.validate_dvs && st.config.semantics == VersionSemantics::Dvs;
        drop(st);

        // Phase 2 — no lock: compute the delta against the pinned env and
        // stage it against the DT's pinned base version.
        match compute_refresh(
            &env,
            dt,
            refresh_ts,
            false,
            evolved,
            meta.refresh_mode,
            &plan,
            prev.as_ref(),
        ) {
            Ok(computed) => Ok(PreparedRefresh {
                engine: self.clone(),
                request: Some(RefreshInstall {
                    dt,
                    refresh_ts,
                    txn,
                    started,
                    fixed_units,
                    kind: InstallKind::Staged {
                        store: Arc::clone(&env.tables[&dt]),
                        prep: computed.prep.map(Box::new),
                        outcome: computed.outcome,
                        source_rows: computed.source_rows,
                        new_frontier: computed.new_frontier,
                        upstream: upstream_now,
                        evolved: evolved.then_some((fingerprint_now, plan.scanned_entities())),
                        validate_plan: validate.then(|| Box::new(plan)),
                    },
                }),
            }),
            Err(e) if e.is_user_error() => {
                let engine = self.clone();
                Ok(PreparedRefresh {
                    engine,
                    request: Some(RefreshInstall {
                        dt,
                        refresh_ts,
                        txn,
                        started,
                        fixed_units,
                        kind: InstallKind::Failed {
                            error: e.to_string(),
                        },
                    }),
                })
            }
            Err(e) => {
                let _ = self.inspect(|st| st.txn_manager().abort(&txn));
                Err(e)
            }
        }
    }

    /// Refresh every active, initialized dynamic table to one shared data
    /// timestamp, level-parallel (§5.2's whole-DAG alignment: unchanged
    /// cones land as free NO_DATA refreshes). Suspended or uninitialized
    /// DTs — and their downstream cones — sit the round out. Returns the
    /// per-DT report; `Err` only on internal invariant violations.
    pub fn refresh_all_parallel(&self) -> DtResult<RefreshRoundReport> {
        // Choose the round timestamp and level the due set under a brief
        // read lock. The HLC tick orders the round after every commit that
        // has already landed; base rows committing after it surface in the
        // next round.
        let (refresh_ts, levels, upstream_of, pre_pruned) = {
            let st = self.state.read();
            let refresh_ts = st.txn_manager().hlc().tick();
            let mut eligible = Vec::new();
            let mut unavailable = Vec::new();
            for id in st.scheduler().registered() {
                let sched = st.scheduler().state(id).expect("registered");
                let live = st
                    .catalog()
                    .get(id)
                    .map(|e| e.is_live())
                    .unwrap_or(false);
                if live && !sched.suspended && st.frontiers.contains_key(&id) {
                    eligible.push(id);
                } else {
                    unavailable.push(id);
                }
            }
            // A suspended/uninitialized parent prunes its cone up front.
            let mut pre_pruned = BTreeSet::new();
            for root in &unavailable {
                pre_pruned.extend(st.scheduler().downstream_cone(*root, &eligible));
            }
            let included: Vec<EntityId> = eligible
                .iter()
                .copied()
                .filter(|id| !pre_pruned.contains(id))
                .collect();
            let levels = st.scheduler().level_order(&included);
            let upstream_of: BTreeMap<EntityId, Vec<EntityId>> = included
                .iter()
                .map(|id| {
                    (
                        *id,
                        st.scheduler().state(*id).expect("registered").upstream.clone(),
                    )
                })
                .collect();
            (refresh_ts, levels, upstream_of, pre_pruned)
        };
        self.refresh.rounds.fetch_add(1, Ordering::Relaxed);

        let round_started = Instant::now();
        let mut report = RefreshRoundReport {
            refresh_ts,
            levels: levels.len(),
            refreshed: 0,
            no_data: 0,
            failed: 0,
            conflicts: 0,
            pruned: 0,
            outcomes: Vec::new(),
        };
        for dt in pre_pruned {
            report.pruned += 1;
            report.outcomes.push((dt, RoundStatus::Pruned));
        }

        // DTs that did not land this round; their descendants prune.
        let mut unavailable: BTreeSet<EntityId> = BTreeSet::new();
        let mut internal_error: Option<DtError> = None;
        for level in levels {
            // Prune descendants of anything that failed an earlier level.
            let mut runnable = Vec::with_capacity(level.len());
            for dt in level {
                let blocked = upstream_of
                    .get(&dt)
                    .map(|ups| ups.iter().any(|u| unavailable.contains(u)))
                    .unwrap_or(false);
                if blocked {
                    unavailable.insert(dt);
                    report.pruned += 1;
                    report.outcomes.push((dt, RoundStatus::Pruned));
                } else {
                    runnable.push(dt);
                }
            }
            if runnable.is_empty() {
                continue;
            }

            // Execute the level on the worker pool: each worker claims DTs
            // off a shared cursor, prepares lock-free, and submits to the
            // group-install queue — so an entire level gravitates into one
            // or two install batches.
            let workers = self.refresh_threads().min(runnable.len()).max(1);
            let cursor = AtomicUsize::new(0);
            let results: parking_lot::Mutex<Vec<(EntityId, DtResult<RoundStatus>)>> =
                parking_lot::Mutex::new(Vec::with_capacity(runnable.len()));
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&dt) = runnable.get(i) else { break };
                        let status = self.round_step(dt, refresh_ts, round_started);
                        results.lock().push((dt, status));
                    });
                }
            });

            for (dt, status) in results.into_inner() {
                match status {
                    Ok(st @ RoundStatus::Installed { action, .. }) => {
                        report.refreshed += 1;
                        if action == "no_data" {
                            report.no_data += 1;
                        }
                        report.outcomes.push((dt, st));
                    }
                    Ok(st @ RoundStatus::Failed(_)) => {
                        report.failed += 1;
                        unavailable.insert(dt);
                        report.outcomes.push((dt, st));
                    }
                    Ok(st @ RoundStatus::Conflict(_)) => {
                        report.conflicts += 1;
                        unavailable.insert(dt);
                        report.outcomes.push((dt, st));
                    }
                    Ok(RoundStatus::Pruned) => unreachable!("workers never prune"),
                    Err(e) => {
                        if internal_error.is_none() {
                            internal_error = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = internal_error {
                return Err(e);
            }
        }
        Ok(report)
    }

    /// One worker step of a round: prepare + install one DT, classifying
    /// conflicts and recorded failures into a [`RoundStatus`].
    fn round_step(
        &self,
        dt: EntityId,
        refresh_ts: Timestamp,
        round_started: Instant,
    ) -> DtResult<RoundStatus> {
        let prepared = match self.prepare_refresh(dt, refresh_ts) {
            Ok(p) => p,
            Err(e) if e.is_conflict() => return Ok(RoundStatus::Conflict(e.to_string())),
            Err(e) => return Err(e),
        };
        match prepared.install() {
            Ok(installed) => Ok(match installed.error {
                Some(error) => RoundStatus::Failed(error),
                None => RoundStatus::Installed {
                    action: installed.action,
                    changed_rows: installed.changed_rows,
                    at_micros: round_started.elapsed().as_micros() as u64,
                },
            }),
            Err(e) if e.is_conflict() => Ok(RoundStatus::Conflict(e.to_string())),
            Err(e) => Err(e),
        }
    }
}

/// Leader body of the group-install queue: one engine write lock
/// acquisition lands the whole batch.
fn install_refresh_batch(
    engine: &Engine,
    batch: Vec<RefreshInstall>,
) -> Vec<DtResult<InstalledRefresh>> {
    let mut st = engine.state.write();
    engine.refresh.record_batch(batch.len());
    let mut wal_records = Vec::new();
    let mut outcomes: Vec<DtResult<InstalledRefresh>> = batch
        .into_iter()
        .map(|req| install_one(&mut st, req, &mut wal_records))
        .collect();
    // One append + fsync for the whole round's installs, before the write
    // lock drops (same discipline as the DML leader). On failure the
    // installs are already in the chains — fail every acknowledgement.
    if let Err(e) = st.wal_append(&wal_records) {
        for outcome in &mut outcomes {
            if outcome.is_ok() {
                *outcome = Err(e.clone());
            }
        }
    }
    outcomes
}

/// Install one staged refresh under the engine write lock the leader
/// already holds. Mirrors the §5.3 commit rules of the serial path and the
/// PR-5 liveness guard: every entity the refresh read must still be live,
/// else the refresh aborts with a typed [`DtError::Conflict`] — its cone
/// prunes, the round survives.
fn install_one(
    st: &mut EngineState,
    req: RefreshInstall,
    wal_records: &mut Vec<WalRecord>,
) -> DtResult<InstalledRefresh> {
    let RefreshInstall {
        dt,
        refresh_ts,
        txn,
        started,
        fixed_units,
        kind,
    } = req;

    let (store, prep, outcome, source_rows, new_frontier, upstream, evolved, validate_plan) =
        match kind {
            InstallKind::Staged {
                store,
                prep,
                outcome,
                source_rows,
                new_frontier,
                upstream,
                evolved,
                validate_plan,
            } => (
                store,
                prep,
                outcome,
                source_rows,
                new_frontier,
                upstream,
                evolved,
                validate_plan,
            ),
            InstallKind::Failed { error } => {
                // Record the user failure with the engine serialized, like
                // the serial path does: error counter, suspension policy,
                // log. The transaction installs nothing.
                st.txn.abort(&txn)?;
                let _ = st.catalog.record_dt_error(dt);
                let outcome = RefreshOutcome {
                    action: RefreshAction::Failed(error.clone()),
                    changed_rows: 0,
                    dt_rows: 0,
                    work_units: fixed_units,
                };
                let ended = st.now();
                if let Ok(true) = st.scheduler.report(dt, refresh_ts, &outcome, ended) {
                    let _ = st
                        .catalog
                        .set_dt_state(dt, DtState::SuspendedOnErrors, ended);
                }
                // The failure mutated the catalog (error counter, possibly
                // SuspendedOnErrors) — log it with the rest of the batch.
                if st.wal_enabled() {
                    wal_records.push(WalRecord::Catalog {
                        stamp: st.txn.hlc().tick(),
                        catalog: st.catalog.to_bytes(),
                        meta: st.engine_meta(),
                        side_effect: SideEffect::None,
                    });
                }
                st.refresh_log.push(RefreshLogEntry {
                    dt,
                    refresh_ts,
                    action: "failed",
                    changed_rows: 0,
                    dt_rows: 0,
                    initial: false,
                    duration_micros: started.elapsed().as_micros() as u64,
                    source_rows: 0,
                });
                return Ok(InstalledRefresh {
                    dt,
                    refresh_ts,
                    commit_ts: refresh_ts,
                    action: "failed",
                    changed_rows: 0,
                    dt_rows: 0,
                    error: Some(error),
                });
            }
        };

    let abort = |st: &EngineState, e: DtError| {
        let _ = st.txn_manager().abort(&txn);
        Err(e)
    };

    // 0. The refresh transaction must still be active.
    if !st.txn_manager().is_active(&txn) {
        return Err(DtError::Txn(format!(
            "refresh transaction {} is not active",
            txn.id
        )));
    }

    // 1. Liveness — the PR-5 commit guard: the DT and everything it read
    //    must still exist. A base table dropped mid-round aborts this
    //    refresh (and, via the round driver, its cone) with a typed
    //    conflict instead of poisoning the round.
    for id in std::iter::once(dt).chain(upstream.iter().copied()) {
        let live = st
            .catalog
            .get(id)
            .map(|e| e.is_live())
            .unwrap_or(false);
        if !live {
            return abort(
                st,
                DtError::Conflict(format!(
                    "entity {id} read by the refresh of {dt} was dropped mid-round"
                )),
            );
        }
    }

    // 2. Validate + install under the table's commit guard (first
    //    committer wins), commit timestamp floored past both the table's
    //    chain and the refresh timestamp.
    let mut wal_install = None;
    let commit_ts = match prep {
        Some(prep) => {
            let guard = store.commit_guard();
            if let Err(e) = guard.validate_prepared(&prep) {
                drop(guard);
                return abort(st, e);
            }
            let floor = guard.latest_commit_ts().max(refresh_ts);
            let commit_ts = st.txn_manager().hlc().tick_after(floor);
            if st.wal_enabled() {
                wal_install = Some(prep.install_record());
            }
            guard.install_validated(*prep, commit_ts, txn.id);
            commit_ts
        }
        // NO_DATA: nothing to install, only metadata advances.
        None => st.txn_manager().hlc().tick_after(refresh_ts),
    };
    st.txn.commit_at(&txn, commit_ts)?;

    // 3. Metadata, exactly as the serial path records it.
    if let Some((fingerprint, upstream_now)) = evolved {
        if let Ok(m) = st.catalog.get_mut(dt) {
            if let Some(m) = m.as_dt_mut() {
                m.definition_fingerprint = fingerprint;
                m.upstream = upstream_now;
            }
        }
    }
    let version = store.latest_version();
    st.refresh_map.record(dt, refresh_ts, version, commit_ts);
    if let Some(prev) = st.frontiers.get(&dt) {
        debug_assert!(
            new_frontier.refresh_ts >= prev.refresh_ts,
            "frontier moved backwards"
        );
    }
    let frontier_pairs: Vec<_> = new_frontier.iter().collect();
    st.frontiers.insert(dt, new_frontier);
    st.catalog.record_dt_success(dt)?;
    let ended = st.now();
    let _ = st.scheduler.report(dt, refresh_ts, &outcome, ended);
    // Catalog bytes are captured *after* the success bookkeeping so the
    // record carries the error-counter reset and any evolution update.
    if st.wal_enabled() {
        wal_records.push(WalRecord::Refresh {
            dt,
            txn: txn.id,
            refresh_ts,
            commit_ts,
            install: wal_install.map(|rec| (commit_ts, rec)),
            version,
            frontier: frontier_pairs,
            catalog: st.catalog.to_bytes(),
        });
    }

    // 4. DVS validation (§6.1 level 4), when configured.
    if let Some(plan) = &validate_plan {
        if !matches!(outcome.action, RefreshAction::Failed(_)) {
            st.validate_dvs_invariant(dt, refresh_ts, plan)?;
        }
    }

    st.refresh_log.push(RefreshLogEntry {
        dt,
        refresh_ts,
        action: action_label(&outcome.action),
        changed_rows: outcome.changed_rows,
        dt_rows: outcome.dt_rows,
        initial: false,
        duration_micros: started.elapsed().as_micros() as u64,
        source_rows,
    });
    Ok(InstalledRefresh {
        dt,
        refresh_ts,
        commit_ts,
        action: action_label(&outcome.action),
        changed_rows: outcome.changed_rows,
        dt_rows: outcome.dt_rows,
        error: None,
    })
}
