//! Write-path providers: resolving table versions for refreshes and DML.
//!
//! Interactive queries no longer come through here — they run lock-free
//! against a [`crate::ReadSnapshot`] (which implements
//! [`TableProvider`] itself). These borrowed providers serve the paths
//! that already hold the engine write lock: refresh evaluation with DVS
//! or persisted semantics ([`SnapshotProvider`]) and DML subqueries over
//! the latest state ([`LatestProvider`]).

use std::collections::HashMap;
use std::sync::Arc;

use dt_common::{DtError, DtResult, EntityId, Row, Timestamp};
use dt_exec::TableProvider;
use dt_storage::TableStore;
use dt_txn::RefreshTsMap;

/// How DT versions are resolved when read by a refresh (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VersionSemantics {
    /// Delayed view semantics: a DT read by a refresh at data timestamp
    /// `t` resolves to the version created by that DT's refresh at the
    /// *same* `t` (exact lookup in the refresh-timestamp map; a miss fails
    /// the refresh — production validation #1 of §6.1).
    #[default]
    Dvs,
    /// Persisted table semantics (the baseline §4 argues against): read
    /// whatever version is persisted as of the refresh's start.
    Persisted,
}

/// Which entities are DTs and where every entity's storage lives.
pub struct StorageView<'a> {
    /// Per-entity storage.
    pub tables: &'a HashMap<EntityId, Arc<TableStore>>,
    /// Entities that are DTs (their storage includes the `$ROW_ID` column,
    /// which scans strip).
    pub dt_entities: &'a dyn Fn(EntityId) -> bool,
    /// The refresh-timestamp → version map.
    pub refresh_map: &'a RefreshTsMap,
}

/// Strip the leading `$ROW_ID` column from stored DT rows.
pub fn strip_row_ids(rows: Vec<Row>) -> Vec<Row> {
    rows.into_iter()
        .map(|r| Row::new(r.values()[1..].to_vec()))
        .collect()
}

/// A provider that resolves every entity as of a data timestamp, applying
/// the chosen semantics for DT reads.
pub struct SnapshotProvider<'a> {
    view: StorageView<'a>,
    /// The data timestamp to resolve at.
    pub at: Timestamp,
    semantics: VersionSemantics,
}

impl<'a> SnapshotProvider<'a> {
    /// Build a provider at `at`.
    pub fn new(view: StorageView<'a>, at: Timestamp, semantics: VersionSemantics) -> Self {
        SnapshotProvider {
            view,
            at,
            semantics,
        }
    }
}

impl TableProvider for SnapshotProvider<'_> {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        let store = self
            .view
            .tables
            .get(&entity)
            .ok_or_else(|| DtError::Storage(format!("no storage for {entity}")))?;
        let is_dt = (self.view.dt_entities)(entity);
        let version = if is_dt {
            match self.semantics {
                VersionSemantics::Dvs => self.view.refresh_map.exact_version_for(entity, self.at)?,
                VersionSemantics::Persisted => store
                    .version_at(self.at)
                    .ok_or_else(|| DtError::Storage(format!("no version of {entity}")))?,
            }
        } else {
            // Base tables resolve by commit timestamp (§5.3).
            store
                .version_at(self.at)
                .ok_or_else(|| DtError::Storage(format!("no version of {entity} at {}", self.at)))?
        };
        let rows = store.scan(version)?;
        Ok(if is_dt { strip_row_ids(rows) } else { rows })
    }
}

/// A provider for interactive queries: every entity at its latest committed
/// version ("our implementation simply reads the current data", §4). DTs
/// that are not yet initialized error (§3.1).
pub struct LatestProvider<'a> {
    view: StorageView<'a>,
    /// Entities known to be uninitialized DTs.
    pub uninitialized: &'a dyn Fn(EntityId) -> bool,
}

impl<'a> LatestProvider<'a> {
    /// Build a latest-version provider.
    pub fn new(view: StorageView<'a>, uninitialized: &'a dyn Fn(EntityId) -> bool) -> Self {
        LatestProvider {
            view,
            uninitialized,
        }
    }
}

impl TableProvider for LatestProvider<'_> {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        if (self.uninitialized)(entity) {
            return Err(DtError::NotInitialized(format!(
                "dynamic table {entity} has not been initialized yet"
            )));
        }
        let store = self
            .view
            .tables
            .get(&entity)
            .ok_or_else(|| DtError::Storage(format!("no storage for {entity}")))?;
        let rows = store.scan(store.latest_version())?;
        Ok(if (self.view.dt_entities)(entity) {
            strip_row_ids(rows)
        } else {
            rows
        })
    }
}
