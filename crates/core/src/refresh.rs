//! The refresh engine (§5.3–§5.5): action selection, differentiation,
//! merge, commit, and the production validations.

use std::collections::HashMap;

use dt_catalog::RefreshMode;
use dt_common::{DtError, DtResult, EntityId, Row, Timestamp, Value, VersionId};
use dt_exec::TableProvider;
use dt_ivm::{assign_change_rows, delta, delta_unconsolidated, ChangeProvider, DeltaContext, StoredRows};
use dt_plan::LogicalPlan;
use dt_scheduler::{RefreshAction, RefreshOutcome};
use dt_storage::ChangeSet;
use dt_txn::Frontier;

use crate::database::EngineState;
use crate::providers::{strip_row_ids, SnapshotProvider, StorageView, VersionSemantics};

/// One executed refresh, for telemetry and the §6.3 statistics. `Copy`:
/// entries are a few machine words, so handing them out by value is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshLogEntry {
    /// The DT refreshed.
    pub dt: EntityId,
    /// The refresh (data) timestamp.
    pub refresh_ts: Timestamp,
    /// Action label ("no_data", "full", "incremental", "reinitialize",
    /// "failed").
    pub action: &'static str,
    /// Output changed rows (inserts + deletes).
    pub changed_rows: usize,
    /// DT size after the refresh.
    pub dt_rows: usize,
    /// Whether this was an initialization.
    pub initial: bool,
}

/// The refresh log: an append-only record of every refresh executed,
/// behind its own lock so telemetry readers never contend with the engine
/// lock. Cloning the handle is O(1) (an `Arc` inside); the engine hands
/// out handles via [`crate::Engine::refresh_log`] instead of copying the
/// whole history.
#[derive(Clone, Default)]
pub struct RefreshLog {
    inner: std::sync::Arc<parking_lot::RwLock<Vec<RefreshLogEntry>>>,
}

impl RefreshLog {
    /// Append one entry (engine-internal; called at most once per refresh).
    pub(crate) fn push(&self, entry: RefreshLogEntry) {
        self.inner.write().push(entry);
    }

    /// Number of refreshes recorded.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no refresh has run yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// The most recent entry, if any.
    pub fn last(&self) -> Option<RefreshLogEntry> {
        self.inner.read().last().copied()
    }

    /// The last `n` entries, oldest first — the bounded way to check
    /// recent refresh activity.
    pub fn tail(&self, n: usize) -> Vec<RefreshLogEntry> {
        let log = self.inner.read();
        log[log.len().saturating_sub(n)..].to_vec()
    }

    /// A copy of the full history (for offline statistics; prefer
    /// [`RefreshLog::tail`] when only recent entries matter).
    pub fn entries(&self) -> Vec<RefreshLogEntry> {
        self.inner.read().clone()
    }

    /// How many recorded refreshes ran `action` ("no_data", "full",
    /// "incremental", "reinitialize", "failed").
    pub fn count_action(&self, action: &str) -> usize {
        self.inner
            .read()
            .iter()
            .filter(|e| e.action == action)
            .count()
    }
}

impl std::fmt::Debug for RefreshLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshLog").field("len", &self.len()).finish()
    }
}

/// Per-source change sets gathered for an interval.
struct IntervalChanges {
    per_entity: HashMap<EntityId, ChangeSet>,
}

impl ChangeProvider for IntervalChanges {
    fn changes(&self, entity: EntityId) -> DtResult<ChangeSet> {
        self.per_entity
            .get(&entity)
            .cloned()
            .ok_or_else(|| DtError::internal(format!("no change set gathered for {entity}")))
    }
}

impl EngineState {
    /// Execute one refresh of `dt` to data timestamp `refresh_ts`.
    /// User errors become a `Failed` outcome (and bump the DT's error
    /// counter); internal invariant violations propagate as `Err`.
    pub fn run_refresh(
        &mut self,
        dt: EntityId,
        refresh_ts: Timestamp,
        initial: bool,
    ) -> DtResult<RefreshOutcome> {
        match self.try_refresh(dt, refresh_ts, initial) {
            Ok(outcome) => {
                self.catalog.record_dt_success(dt)?;
                self.log_refresh(dt, refresh_ts, &outcome, initial);
                Ok(outcome)
            }
            Err(e) if e.is_user_error() => {
                self.catalog.record_dt_error(dt)?;
                let outcome = RefreshOutcome {
                    action: RefreshAction::Failed(e.to_string()),
                    changed_rows: 0,
                    dt_rows: 0,
                    work_units: self.config.cost_model.fixed_units,
                };
                self.log_refresh(dt, refresh_ts, &outcome, initial);
                Ok(outcome)
            }
            Err(e) => Err(e),
        }
    }

    fn log_refresh(
        &mut self,
        dt: EntityId,
        refresh_ts: Timestamp,
        outcome: &RefreshOutcome,
        initial: bool,
    ) {
        let action = match &outcome.action {
            RefreshAction::NoData => "no_data",
            RefreshAction::Full => "full",
            RefreshAction::Incremental => "incremental",
            RefreshAction::Reinitialize => "reinitialize",
            RefreshAction::Failed(_) => "failed",
        };
        self.refresh_log.push(RefreshLogEntry {
            dt,
            refresh_ts,
            action,
            changed_rows: outcome.changed_rows,
            dt_rows: outcome.dt_rows,
            initial,
        });
    }

    fn try_refresh(
        &mut self,
        dt: EntityId,
        refresh_ts: Timestamp,
        initial: bool,
    ) -> DtResult<RefreshOutcome> {
        // 1. Rebind the defining query against the live catalog (§5.4).
        //    Binding failures (dropped upstream) are user errors that fail
        //    this refresh; once the upstream is restored, refreshes resume.
        let meta = self
            .catalog
            .get(dt)?
            .as_dt()
            .ok_or_else(|| DtError::internal(format!("{dt} is not a DT")))?
            .clone();
        let parsed = dt_sql::parse(&meta.definition_sql)?;
        let dt_sql::ast::Statement::Query(q) = parsed else {
            return Err(DtError::internal("DT definition is not a query"));
        };
        let bound = self.bind_query(&q)?;
        let plan = bound.plan;
        let upstream_now = plan.scanned_entities();

        // 2. Query evolution (§5.4): if the bound upstream set or any
        //    upstream schema changed, the stored results may be invalid —
        //    REINITIALIZE conservatively.
        let fingerprint_now = self.catalog.fingerprint(&upstream_now);
        let evolved = fingerprint_now != meta.definition_fingerprint;
        if evolved {
            let m = self.catalog.get_mut(dt)?.as_dt_mut().unwrap();
            m.definition_fingerprint = fingerprint_now;
            m.upstream = upstream_now.clone();
        }

        // 3. Lock the DT (§5.3: no concurrent refreshes of one DT).
        let txn = self.txn.begin_at(refresh_ts);
        self.txn.try_lock(&txn, dt)?;
        let result = self.refresh_locked(dt, refresh_ts, initial, evolved, &meta, &plan, &txn);
        match result {
            Ok(out) => {
                let commit_ts = self.txn.commit(&txn)?;
                // Record the refresh-ts → version mapping (§5.3) and the
                // new frontier.
                let version = self.tables[&dt].latest_version();
                self.refresh_map.record(dt, refresh_ts, version, commit_ts);
                let mut frontier = Frontier::at(refresh_ts);
                for up in &upstream_now {
                    frontier.set(*up, self.source_version_at(*up, refresh_ts)?);
                }
                // Refreshes only move frontiers forward.
                if let Some(prev) = self.frontiers.get(&dt) {
                    debug_assert!(
                        frontier.refresh_ts >= prev.refresh_ts,
                        "frontier moved backwards"
                    );
                }
                self.frontiers.insert(dt, frontier);

                // 4. DVS validation (§6.1 level 4): the stored contents
                //    must equal the defining query at the data timestamp.
                if self.config.validate_dvs
                    && self.config.semantics == VersionSemantics::Dvs
                    && !matches!(out.action, RefreshAction::Failed(_))
                {
                    self.validate_dvs_invariant(dt, refresh_ts, &plan)?;
                }
                Ok(out)
            }
            Err(e) => {
                self.txn.abort(&txn)?;
                Err(e)
            }
        }
    }

    /// The storage version of a source at a data timestamp (commit-time
    /// rule for base tables, exact refresh-timestamp rule for DTs — §5.3).
    fn source_version_at(&self, entity: EntityId, ts: Timestamp) -> DtResult<VersionId> {
        if self.is_dt(entity) && self.config.semantics == VersionSemantics::Dvs {
            self.refresh_map.exact_version_for(entity, ts)
        } else {
            self.tables
                .get(&entity)
                .ok_or_else(|| DtError::Storage(format!("no storage for {entity}")))?
                .version_at(ts)
                .ok_or_else(|| DtError::Storage(format!("no version of {entity} at {ts}")))
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn refresh_locked(
        &mut self,
        dt: EntityId,
        refresh_ts: Timestamp,
        initial: bool,
        evolved: bool,
        meta: &dt_catalog::DynamicTableMeta,
        plan: &LogicalPlan,
        txn: &dt_txn::Txn,
    ) -> DtResult<RefreshOutcome> {
        let upstream = plan.scanned_entities();

        // Decide the refresh action (§5.4).
        if !initial && !evolved {
            // NO_DATA: no source changed since the previous frontier.
            let prev = self
                .frontiers
                .get(&dt)
                .ok_or_else(|| DtError::internal("refresh of uninitialized DT"))?
                .clone();
            let mut unchanged = true;
            for up in &upstream {
                let from = prev
                    .get(*up)
                    .ok_or_else(|| DtError::internal(format!("no frontier entry for {up}")))?;
                let to = self.source_version_at(*up, refresh_ts)?;
                if !self.tables[up].unchanged_between(from.min(to), to)? {
                    unchanged = false;
                    break;
                }
            }
            if unchanged {
                // §3.3.2: uses negligible resources and no warehouse
                // compute; only the data timestamp advances.
                let dt_rows = self.tables[&dt].row_count_at(self.tables[&dt].latest_version())?;
                return Ok(RefreshOutcome {
                    action: RefreshAction::NoData,
                    changed_rows: 0,
                    dt_rows,
                    work_units: 0.0,
                });
            }
        }

        let full = initial || evolved || meta.refresh_mode == RefreshMode::Full;
        if full {
            let (rows, input_rows) = self.evaluate_at(plan, refresh_ts)?;
            let stored = StoredRows::initialize(rows);
            let mut out_rows = Vec::with_capacity(stored.len());
            for (id, r) in stored.pairs() {
                let mut vals = vec![Value::Str(id.clone())];
                vals.extend(r.values().iter().cloned());
                out_rows.push(Row::new(vals));
            }
            let changed = out_rows.len();
            let dt_rows = out_rows.len();
            self.tables[&dt].overwrite(out_rows, self.txn_commit_stamp(refresh_ts), txn.id)?;
            let action = if initial {
                RefreshAction::Full
            } else if evolved {
                RefreshAction::Reinitialize
            } else {
                RefreshAction::Full
            };
            return Ok(RefreshOutcome {
                action,
                changed_rows: changed,
                dt_rows,
                work_units: self.config.cost_model.units(input_rows + changed),
            });
        }

        // INCREMENTAL (§5.5).
        let prev = self.frontiers[&dt].clone();
        let mut per_entity = HashMap::new();
        let mut change_volume = 0usize;
        for up in &upstream {
            let from = prev
                .get(*up)
                .ok_or_else(|| DtError::internal(format!("no frontier entry for {up}")))?;
            let to = self.source_version_at(*up, refresh_ts)?;
            let mut cs = if to >= from {
                self.tables[up].changes_between(from, to)?
            } else {
                return Err(DtError::internal("source version regressed"));
            };
            if self.is_dt(*up) {
                // DT storage carries the $ROW_ID column; the defining query
                // sees only the payload. Strip ids and re-consolidate (a
                // row whose id churned but whose payload did not is not a
                // logical change).
                cs = ChangeSet::new(
                    strip_row_ids(cs.inserts().to_vec()),
                    strip_row_ids(cs.deletes().to_vec()),
                )
                .consolidate();
            }
            change_volume += cs.len();
            per_entity.insert(*up, cs);
        }
        // §5.5.2 insert-only specialization: when the plan structure
        // guarantees differentiation introduces no redundant actions and
        // every source change is pure inserts, the final consolidation
        // pass is provably a no-op and is skipped.
        let insert_only = per_entity.values().all(|cs| cs.deletes().is_empty())
            && dt_ivm::merge::is_insert_only_safe(plan);
        let changes = IntervalChanges { per_entity };

        let store = std::sync::Arc::clone(&self.tables[&dt]);
        let stored_pairs: Vec<(String, Row)> = store
            .scan(store.latest_version())?
            .into_iter()
            .map(|r| {
                let id = r.get(0).expect_str()?.to_string();
                Ok((id, Row::new(r.values()[1..].to_vec())))
            })
            .collect::<DtResult<_>>()?;
        let mut stored = StoredRows::from_pairs(stored_pairs);

        let d = {
            let is_dt = |id: EntityId| self.is_dt(id);
            let old_view = StorageView {
                tables: &self.tables,
                dt_entities: &is_dt,
                refresh_map: &self.refresh_map,
            };
            let new_view = StorageView {
                tables: &self.tables,
                dt_entities: &is_dt,
                refresh_map: &self.refresh_map,
            };
            // The "old" provider resolves each source at the previous
            // frontier version; implemented as a fixed-version provider.
            let old = FrontierProvider {
                db: self,
                frontier: &prev,
            };
            let _ = old_view;
            let new = SnapshotProvider::new(new_view, refresh_ts, self.config.semantics);
            let ctx = DeltaContext {
                old: &old,
                new: &new,
                changes: &changes,
                outer_join: self.config.outer_join,
            };
            if insert_only {
                delta_unconsolidated(plan, &ctx)?
            } else {
                delta(plan, &ctx)?
            }
        };

        // Merge: assign $ROW_IDs, validate the §6.1 invariants, apply.
        let change_rows = assign_change_rows(&stored, &d)?;
        stored.apply(&change_rows)?;
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for c in &change_rows {
            let mut vals = vec![Value::Str(c.row_id.clone())];
            vals.extend(c.row.values().iter().cloned());
            let row = Row::new(vals);
            match c.action {
                dt_ivm::MergeAction::Insert => inserts.push(row),
                dt_ivm::MergeAction::Delete => deletes.push(row),
            }
        }
        let changed = inserts.len() + deletes.len();
        store.commit_change(inserts, deletes, self.txn_commit_stamp(refresh_ts), txn.id)?;
        let dt_rows = stored.len();
        Ok(RefreshOutcome {
            action: RefreshAction::Incremental,
            changed_rows: changed,
            dt_rows,
            work_units: self.config.cost_model.units(change_volume + changed),
        })
    }

    /// Commit stamp for storage versions created by a refresh: strictly
    /// monotonic per table, at or after both the refresh timestamp and now.
    fn txn_commit_stamp(&self, refresh_ts: Timestamp) -> Timestamp {
        let hlc_now = self.txn.hlc().tick();
        hlc_now.max(refresh_ts)
    }

    /// Evaluate a plan at a data timestamp under the configured semantics;
    /// also returns the total input row count (for the cost model).
    pub(crate) fn evaluate_at(
        &self,
        plan: &LogicalPlan,
        ts: Timestamp,
    ) -> DtResult<(Vec<Row>, usize)> {
        let is_dt = |id: EntityId| self.is_dt(id);
        let view = StorageView {
            tables: &self.tables,
            dt_entities: &is_dt,
            refresh_map: &self.refresh_map,
        };
        let provider = SnapshotProvider::new(view, ts, self.config.semantics);
        let mut input_rows = 0usize;
        for e in plan.scanned_entities() {
            input_rows += provider.scan(e).map(|r| r.len()).unwrap_or(0);
        }
        let rows = dt_exec::execute(plan, &provider)?;
        Ok((rows, input_rows))
    }

    /// §6.1 level-4 validation: "if you run the defining query as of the
    /// data timestamp, you should get the same result as in the DT."
    fn validate_dvs_invariant(
        &self,
        dt: EntityId,
        refresh_ts: Timestamp,
        plan: &LogicalPlan,
    ) -> DtResult<()> {
        let store = &self.tables[&dt];
        let mut stored = strip_row_ids(store.scan(store.latest_version())?);
        stored.sort();
        let (mut expected, _) = self.evaluate_at(plan, refresh_ts)?;
        expected.sort();
        if stored != expected {
            return Err(DtError::internal(format!(
                "DVS violation on {dt} at {refresh_ts}: stored {} rows != query {} rows",
                stored.len(),
                expected.len()
            )));
        }
        Ok(())
    }
}

/// Resolves each source at the exact version recorded in a frontier — the
/// "previous data timestamp" side of the differentiation interval.
struct FrontierProvider<'a> {
    db: &'a EngineState,
    frontier: &'a Frontier,
}

impl TableProvider for FrontierProvider<'_> {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        let version = self
            .frontier
            .get(entity)
            .ok_or_else(|| DtError::internal(format!("no frontier entry for {entity}")))?;
        let store = self
            .db
            .tables
            .get(&entity)
            .ok_or_else(|| DtError::Storage(format!("no storage for {entity}")))?;
        let rows = store.scan(version)?;
        Ok(if self.db.is_dt(entity) {
            strip_row_ids(rows)
        } else {
            rows
        })
    }
}
