//! The refresh engine (§5.3–§5.5): action selection, differentiation,
//! merge, commit, and the production validations.
//!
//! Since PR 8 the row work of a refresh is split from its installation,
//! mirroring the optimistic transaction commit
//! ([`dt_storage::TableStore::prepare_change_at`] /
//! [`dt_storage::CommitGuard`]): `compute_refresh` runs against a pinned
//! `RefreshEnv` holding **no engine lock** and returns a
//! [`dt_storage::PreparedChange`]; only the O(metadata) install serializes.
//! The serial path ([`EngineState::run_refresh`]) and the parallel round
//! driver ([`crate::Engine::refresh_all_parallel`]) share this core.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use dt_catalog::RefreshMode;
use dt_common::{DtError, DtResult, EntityId, Row, Timestamp, Value, VersionId};
use dt_exec::TableProvider;
use dt_ivm::{
    assign_change_rows, delta, delta_unconsolidated, ChangeProvider, DeltaContext,
    OuterJoinStrategy, StoredRows,
};
use dt_plan::LogicalPlan;
use dt_scheduler::{CostModel, RefreshAction, RefreshOutcome};
use dt_storage::{ChangeSet, PreparedChange, TableStore};
use dt_txn::{Frontier, RefreshTsMap};

use crate::database::EngineState;
use crate::providers::{strip_row_ids, SnapshotProvider, StorageView, VersionSemantics};

/// One executed refresh, for telemetry and the §6.3 statistics. `Copy`:
/// entries are a few machine words, so handing them out by value is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshLogEntry {
    /// The DT refreshed.
    pub dt: EntityId,
    /// The refresh (data) timestamp.
    pub refresh_ts: Timestamp,
    /// Action label ("no_data", "full", "incremental", "reinitialize",
    /// "failed").
    pub action: &'static str,
    /// Output changed rows (inserts + deletes) — the delta installed.
    pub changed_rows: usize,
    /// DT size after the refresh.
    pub dt_rows: usize,
    /// Whether this was an initialization.
    pub initial: bool,
    /// Wall-clock duration of the refresh (prepare through install), in
    /// microseconds.
    pub duration_micros: u64,
    /// Source rows scanned: full query input rows for FULL/REINITIALIZE,
    /// source change rows consumed for INCREMENTAL, 0 for NO_DATA.
    pub source_rows: usize,
}

/// The refresh log: an append-only record of every refresh executed,
/// behind its own lock so telemetry readers never contend with the engine
/// lock. Cloning the handle is O(1) (an `Arc` inside); the engine hands
/// out handles via [`crate::Engine::refresh_log`] instead of copying the
/// whole history.
#[derive(Clone, Default)]
pub struct RefreshLog {
    inner: std::sync::Arc<parking_lot::RwLock<Vec<RefreshLogEntry>>>,
}

impl RefreshLog {
    /// Append one entry (engine-internal; called at most once per refresh).
    pub(crate) fn push(&self, entry: RefreshLogEntry) {
        self.inner.write().push(entry);
    }

    /// Number of refreshes recorded.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no refresh has run yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// The most recent entry, if any.
    pub fn last(&self) -> Option<RefreshLogEntry> {
        self.inner.read().last().copied()
    }

    /// The last `n` entries, oldest first — the bounded way to check
    /// recent refresh activity.
    pub fn tail(&self, n: usize) -> Vec<RefreshLogEntry> {
        let log = self.inner.read();
        log[log.len().saturating_sub(n)..].to_vec()
    }

    /// A copy of the full history (for offline statistics; prefer
    /// [`RefreshLog::tail`] when only recent entries matter).
    pub fn entries(&self) -> Vec<RefreshLogEntry> {
        self.inner.read().clone()
    }

    /// How many recorded refreshes ran `action` ("no_data", "full",
    /// "incremental", "reinitialize", "failed").
    pub fn count_action(&self, action: &str) -> usize {
        self.inner
            .read()
            .iter()
            .filter(|e| e.action == action)
            .count()
    }
}

impl std::fmt::Debug for RefreshLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshLog").field("len", &self.len()).finish()
    }
}

/// Per-source change sets gathered for an interval.
struct IntervalChanges {
    per_entity: HashMap<EntityId, ChangeSet>,
}

impl ChangeProvider for IntervalChanges {
    fn changes(&self, entity: EntityId) -> DtResult<ChangeSet> {
        self.per_entity
            .get(&entity)
            .cloned()
            .ok_or_else(|| DtError::internal(format!("no change set gathered for {entity}")))
    }
}

/// Everything a refresh's delta computation needs, pinned by `Arc` under a
/// brief engine lock so the computation itself runs with **no** lock held —
/// the write-side analogue of [`crate::ReadSnapshot`]. Versioned stores
/// never mutate in place, so a worker reading through these handles sees a
/// stable world no matter what commits land meanwhile.
pub(crate) struct RefreshEnv {
    /// Storage handles for the DT and every scanned source.
    pub(crate) tables: HashMap<EntityId, Arc<TableStore>>,
    /// Which of those entities are DTs (their storage carries `$ROW_ID`).
    pub(crate) dt_ids: BTreeSet<EntityId>,
    /// The refresh-timestamp → version map (interior-mutable, `&self`).
    pub(crate) refresh_map: Arc<RefreshTsMap>,
    /// DT version resolution semantics (§3.1.1).
    pub(crate) semantics: VersionSemantics,
    /// Outer-join differentiation strategy (§5.5.1).
    pub(crate) outer_join: OuterJoinStrategy,
    /// The §3.3.2 cost model.
    pub(crate) cost_model: CostModel,
}

impl RefreshEnv {
    fn is_dt(&self, id: EntityId) -> bool {
        self.dt_ids.contains(&id)
    }

    fn store(&self, id: EntityId) -> DtResult<&Arc<TableStore>> {
        self.tables
            .get(&id)
            .ok_or_else(|| DtError::Storage(format!("no storage for {id}")))
    }

    /// The storage version of a source at a data timestamp (commit-time
    /// rule for base tables, exact refresh-timestamp rule for DTs — §5.3).
    fn source_version_at(&self, entity: EntityId, ts: Timestamp) -> DtResult<VersionId> {
        if self.is_dt(entity) && self.semantics == VersionSemantics::Dvs {
            self.refresh_map.exact_version_for(entity, ts)
        } else {
            self.store(entity)?
                .version_at(ts)
                .ok_or_else(|| DtError::Storage(format!("no version of {entity} at {ts}")))
        }
    }

    /// Evaluate a plan at a data timestamp; also returns the total input
    /// row count (for the cost model and source-row telemetry).
    fn evaluate_at(&self, plan: &LogicalPlan, ts: Timestamp) -> DtResult<(Vec<Row>, usize)> {
        let is_dt = |id: EntityId| self.is_dt(id);
        let view = StorageView {
            tables: &self.tables,
            dt_entities: &is_dt,
            refresh_map: &self.refresh_map,
        };
        let provider = SnapshotProvider::new(view, ts, self.semantics);
        let mut input_rows = 0usize;
        for e in plan.scanned_entities() {
            input_rows += provider.scan(e).map(|r| r.len()).unwrap_or(0);
        }
        let rows = dt_exec::execute(plan, &provider)?;
        Ok((rows, input_rows))
    }
}

/// The output of [`compute_refresh`]: the staged storage change (if any),
/// the outcome for the scheduler, and the frontier the DT will advance to
/// once the change installs.
pub(crate) struct ComputedRefresh {
    /// Action + row/cost accounting, as the scheduler wants it reported.
    pub(crate) outcome: RefreshOutcome,
    /// The staged storage change; `None` for NO_DATA (only metadata moves).
    pub(crate) prep: Option<PreparedChange>,
    /// Source rows scanned (see [`RefreshLogEntry::source_rows`]).
    pub(crate) source_rows: usize,
    /// The frontier the DT advances to at install.
    pub(crate) new_frontier: Frontier,
}

/// The row work of one refresh, runnable with no engine lock held: decide
/// the action (§5.4), evaluate or differentiate (§5.5), and stage the
/// result against the DT's pinned latest version. User errors (binding
/// losses surface earlier; evaluation errors surface here) propagate as
/// `Err` for the caller to classify.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_refresh(
    env: &RefreshEnv,
    dt: EntityId,
    refresh_ts: Timestamp,
    initial: bool,
    evolved: bool,
    refresh_mode: RefreshMode,
    plan: &LogicalPlan,
    prev: Option<&Frontier>,
) -> DtResult<ComputedRefresh> {
    let upstream = plan.scanned_entities();
    let store = Arc::clone(env.store(dt)?);
    // Pin the base version every staged change validates against at
    // install time (first committer wins, like transactional DML).
    let base = store.latest_version();

    // Resolve each source's version at the refresh timestamp. These
    // resolutions are stable under concurrent commits — every later commit
    // is minted strictly after `refresh_ts` by the shared HLC — so the
    // frontier can be computed here, before the install.
    let mut new_frontier = Frontier::at(refresh_ts);
    let mut to_versions = Vec::with_capacity(upstream.len());
    for up in &upstream {
        let to = env.source_version_at(*up, refresh_ts)?;
        new_frontier.set(*up, to);
        to_versions.push((*up, to));
    }

    // Decide the refresh action (§5.4).
    if !initial && !evolved {
        // NO_DATA: no source changed since the previous frontier.
        let prev = prev.ok_or_else(|| DtError::internal("refresh of uninitialized DT"))?;
        let mut unchanged = true;
        for (up, to) in &to_versions {
            let from = prev
                .get(*up)
                .ok_or_else(|| DtError::internal(format!("no frontier entry for {up}")))?;
            if !env.store(*up)?.unchanged_between(from.min(*to), *to)? {
                unchanged = false;
                break;
            }
        }
        if unchanged {
            // §3.3.2: uses negligible resources and no warehouse
            // compute; only the data timestamp advances.
            let dt_rows = store.row_count_at(base)?;
            return Ok(ComputedRefresh {
                outcome: RefreshOutcome {
                    action: RefreshAction::NoData,
                    changed_rows: 0,
                    dt_rows,
                    work_units: 0.0,
                },
                prep: None,
                source_rows: 0,
                new_frontier,
            });
        }
    }

    let full = initial || evolved || refresh_mode == RefreshMode::Full;
    if full {
        let (rows, input_rows) = env.evaluate_at(plan, refresh_ts)?;
        let stored = StoredRows::initialize(rows);
        let mut out_rows = Vec::with_capacity(stored.len());
        for (id, r) in stored.pairs() {
            let mut vals = vec![Value::Str(id.clone())];
            vals.extend(r.values().iter().cloned());
            out_rows.push(Row::new(vals));
        }
        let changed = out_rows.len();
        let dt_rows = out_rows.len();
        let prep = store.prepare_overwrite_at(base, out_rows)?;
        let action = if evolved && !initial {
            RefreshAction::Reinitialize
        } else {
            RefreshAction::Full
        };
        return Ok(ComputedRefresh {
            outcome: RefreshOutcome {
                action,
                changed_rows: changed,
                dt_rows,
                work_units: env.cost_model.units(input_rows + changed),
            },
            prep: Some(prep),
            source_rows: input_rows,
            new_frontier,
        });
    }

    // INCREMENTAL (§5.5).
    let prev = prev.ok_or_else(|| DtError::internal("refresh of uninitialized DT"))?;
    let mut per_entity = HashMap::new();
    let mut change_volume = 0usize;
    for (up, to) in &to_versions {
        let from = prev
            .get(*up)
            .ok_or_else(|| DtError::internal(format!("no frontier entry for {up}")))?;
        let mut cs = if *to >= from {
            env.store(*up)?.changes_between(from, *to)?
        } else {
            return Err(DtError::internal("source version regressed"));
        };
        if env.is_dt(*up) {
            // DT storage carries the $ROW_ID column; the defining query
            // sees only the payload. Strip ids and re-consolidate (a
            // row whose id churned but whose payload did not is not a
            // logical change).
            cs = ChangeSet::new(
                strip_row_ids(cs.inserts().to_vec()),
                strip_row_ids(cs.deletes().to_vec()),
            )
            .consolidate();
        }
        change_volume += cs.len();
        per_entity.insert(*up, cs);
    }
    // §5.5.2 insert-only specialization: when the plan structure
    // guarantees differentiation introduces no redundant actions and
    // every source change is pure inserts, the final consolidation
    // pass is provably a no-op and is skipped.
    let insert_only = per_entity.values().all(|cs| cs.deletes().is_empty())
        && dt_ivm::merge::is_insert_only_safe(plan);
    let changes = IntervalChanges { per_entity };

    let stored_pairs: Vec<(String, Row)> = store
        .scan(base)?
        .into_iter()
        .map(|r| {
            let id = r.get(0).expect_str()?.to_string();
            Ok((id, Row::new(r.values()[1..].to_vec())))
        })
        .collect::<DtResult<_>>()?;
    let mut stored = StoredRows::from_pairs(stored_pairs);

    let d = {
        let is_dt = |id: EntityId| env.is_dt(id);
        let new_view = StorageView {
            tables: &env.tables,
            dt_entities: &is_dt,
            refresh_map: &env.refresh_map,
        };
        // The "old" provider resolves each source at the previous
        // frontier version; implemented as a fixed-version provider.
        let old = FrontierProvider {
            env,
            frontier: prev,
        };
        let new = SnapshotProvider::new(new_view, refresh_ts, env.semantics);
        let ctx = DeltaContext {
            old: &old,
            new: &new,
            changes: &changes,
            outer_join: env.outer_join,
        };
        if insert_only {
            delta_unconsolidated(plan, &ctx)?
        } else {
            delta(plan, &ctx)?
        }
    };

    // Merge: assign $ROW_IDs, validate the §6.1 invariants, stage.
    let change_rows = assign_change_rows(&stored, &d)?;
    stored.apply(&change_rows)?;
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for c in &change_rows {
        let mut vals = vec![Value::Str(c.row_id.clone())];
        vals.extend(c.row.values().iter().cloned());
        let row = Row::new(vals);
        match c.action {
            dt_ivm::MergeAction::Insert => inserts.push(row),
            dt_ivm::MergeAction::Delete => deletes.push(row),
        }
    }
    let changed = inserts.len() + deletes.len();
    let prep = store.prepare_change_at(base, inserts, deletes)?;
    let dt_rows = stored.len();
    Ok(ComputedRefresh {
        outcome: RefreshOutcome {
            action: RefreshAction::Incremental,
            changed_rows: changed,
            dt_rows,
            work_units: env.cost_model.units(change_volume + changed),
        },
        prep: Some(prep),
        source_rows: change_volume,
        new_frontier,
    })
}

impl EngineState {
    /// Pin a [`RefreshEnv`] for `dt` and its scanned sources: `Arc` clones
    /// of the storage handles and refresh map plus the config the delta
    /// computation needs. O(#sources); taken under whatever engine lock
    /// the caller already holds.
    pub(crate) fn refresh_env(&self, dt: EntityId, upstream: &[EntityId]) -> DtResult<RefreshEnv> {
        let mut tables = HashMap::with_capacity(upstream.len() + 1);
        let mut dt_ids = BTreeSet::new();
        for id in upstream.iter().copied().chain(std::iter::once(dt)) {
            let store = self
                .tables
                .get(&id)
                .ok_or_else(|| DtError::Storage(format!("no storage for {id}")))?;
            tables.insert(id, Arc::clone(store));
            if self.is_dt(id) {
                dt_ids.insert(id);
            }
        }
        Ok(RefreshEnv {
            tables,
            dt_ids,
            refresh_map: Arc::clone(&self.refresh_map),
            semantics: self.config.semantics,
            outer_join: self.config.outer_join,
            cost_model: self.config.cost_model,
        })
    }

    /// Execute one refresh of `dt` to data timestamp `refresh_ts`.
    /// User errors become a `Failed` outcome (and bump the DT's error
    /// counter); internal invariant violations propagate as `Err`.
    pub fn run_refresh(
        &mut self,
        dt: EntityId,
        refresh_ts: Timestamp,
        initial: bool,
    ) -> DtResult<RefreshOutcome> {
        let started = std::time::Instant::now();
        match self.try_refresh(dt, refresh_ts, initial) {
            Ok((outcome, source_rows, pending_wal)) => {
                self.catalog.record_dt_success(dt)?;
                // Logged after `record_dt_success` so the record's catalog
                // image carries the error-counter reset (and any evolution
                // fingerprint update from step 2).
                if let Some(pending) = pending_wal {
                    let record = pending.into_record(self.catalog.to_bytes());
                    self.wal_append(&[record])?;
                }
                self.log_refresh(dt, refresh_ts, &outcome, initial, started, source_rows);
                Ok(outcome)
            }
            Err(e) if e.is_user_error() => {
                self.catalog.record_dt_error(dt)?;
                self.wal_log_catalog(crate::durability::SideEffect::None)?;
                let outcome = RefreshOutcome {
                    action: RefreshAction::Failed(e.to_string()),
                    changed_rows: 0,
                    dt_rows: 0,
                    work_units: self.config.cost_model.fixed_units,
                };
                self.log_refresh(dt, refresh_ts, &outcome, initial, started, 0);
                Ok(outcome)
            }
            Err(e) => Err(e),
        }
    }

    fn log_refresh(
        &mut self,
        dt: EntityId,
        refresh_ts: Timestamp,
        outcome: &RefreshOutcome,
        initial: bool,
        started: std::time::Instant,
        source_rows: usize,
    ) {
        self.refresh_log.push(RefreshLogEntry {
            dt,
            refresh_ts,
            action: action_label(&outcome.action),
            changed_rows: outcome.changed_rows,
            dt_rows: outcome.dt_rows,
            initial,
            duration_micros: started.elapsed().as_micros() as u64,
            source_rows,
        });
    }

    fn try_refresh(
        &mut self,
        dt: EntityId,
        refresh_ts: Timestamp,
        initial: bool,
    ) -> DtResult<(RefreshOutcome, usize, Option<crate::durability::PendingRefreshWal>)> {
        // 1. Rebind the defining query against the live catalog (§5.4).
        //    Binding failures (dropped upstream) are user errors that fail
        //    this refresh; once the upstream is restored, refreshes resume.
        let meta = self
            .catalog
            .get(dt)?
            .as_dt()
            .ok_or_else(|| DtError::internal(format!("{dt} is not a DT")))?
            .clone();
        let parsed = dt_sql::parse(&meta.definition_sql)?;
        let dt_sql::ast::Statement::Query(q) = parsed else {
            return Err(DtError::internal("DT definition is not a query"));
        };
        let bound = self.bind_query(&q)?;
        let plan = bound.plan;
        let upstream_now = plan.scanned_entities();

        // 2. Query evolution (§5.4): if the bound upstream set or any
        //    upstream schema changed, the stored results may be invalid —
        //    REINITIALIZE conservatively.
        let fingerprint_now = self.catalog.fingerprint(&upstream_now);
        let evolved = fingerprint_now != meta.definition_fingerprint;
        if evolved {
            let m = self.catalog.get_mut(dt)?.as_dt_mut().unwrap();
            m.definition_fingerprint = fingerprint_now;
            m.upstream = upstream_now.clone();
        }

        // 3. Lock the DT (§5.3: no concurrent refreshes of one DT).
        let txn = self.txn.begin_at(refresh_ts);
        self.txn.try_lock(&txn, dt)?;

        // 4. Compute: the shared prepare core, against a pinned env. The
        //    serial path holds the engine write lock throughout, so the
        //    staged change cannot conflict at install.
        let prev = self.frontiers.get(&dt).cloned();
        let mut wal_install = None;
        let result = self
            .refresh_env(dt, &upstream_now)
            .and_then(|env| {
                compute_refresh(
                    &env,
                    dt,
                    refresh_ts,
                    initial,
                    evolved,
                    meta.refresh_mode,
                    &plan,
                    prev.as_ref(),
                )
            })
            .and_then(|computed| {
                if let Some(prep) = computed.prep {
                    let store = &self.tables[&dt];
                    let install_ts = self.txn_commit_stamp(refresh_ts);
                    if self.wal_enabled() {
                        wal_install = Some((install_ts, prep.install_record()));
                    }
                    store.install_prepared(prep, install_ts, txn.id)?;
                    Ok(ComputedRefresh {
                        prep: None,
                        ..computed
                    })
                } else {
                    Ok(computed)
                }
            });
        match result {
            Ok(computed) => {
                let commit_ts = self.txn.commit(&txn)?;
                // Record the refresh-ts → version mapping (§5.3) and the
                // new frontier.
                let version = self.tables[&dt].latest_version();
                self.refresh_map.record(dt, refresh_ts, version, commit_ts);
                // Refreshes only move frontiers forward.
                if let Some(prev) = self.frontiers.get(&dt) {
                    debug_assert!(
                        computed.new_frontier.refresh_ts >= prev.refresh_ts,
                        "frontier moved backwards"
                    );
                }
                let pending_wal =
                    self.wal_enabled()
                        .then(|| crate::durability::PendingRefreshWal {
                            dt,
                            txn: txn.id,
                            refresh_ts,
                            commit_ts,
                            install: wal_install.take(),
                            version,
                            frontier: computed.new_frontier.clone(),
                        });
                self.frontiers.insert(dt, computed.new_frontier);

                // 5. DVS validation (§6.1 level 4): the stored contents
                //    must equal the defining query at the data timestamp.
                if self.config.validate_dvs
                    && self.config.semantics == VersionSemantics::Dvs
                    && !matches!(computed.outcome.action, RefreshAction::Failed(_))
                {
                    self.validate_dvs_invariant(dt, refresh_ts, &plan)?;
                }
                Ok((computed.outcome, computed.source_rows, pending_wal))
            }
            Err(e) => {
                self.txn.abort(&txn)?;
                Err(e)
            }
        }
    }

    /// Commit stamp for storage versions created by a refresh: strictly
    /// monotonic per table, at or after both the refresh timestamp and now.
    fn txn_commit_stamp(&self, refresh_ts: Timestamp) -> Timestamp {
        let hlc_now = self.txn.hlc().tick();
        hlc_now.max(refresh_ts)
    }

    /// Evaluate a plan at a data timestamp under the configured semantics;
    /// also returns the total input row count (for the cost model).
    pub(crate) fn evaluate_at(
        &self,
        plan: &LogicalPlan,
        ts: Timestamp,
    ) -> DtResult<(Vec<Row>, usize)> {
        let is_dt = |id: EntityId| self.is_dt(id);
        let view = StorageView {
            tables: &self.tables,
            dt_entities: &is_dt,
            refresh_map: &self.refresh_map,
        };
        let provider = SnapshotProvider::new(view, ts, self.config.semantics);
        let mut input_rows = 0usize;
        for e in plan.scanned_entities() {
            input_rows += provider.scan(e).map(|r| r.len()).unwrap_or(0);
        }
        let rows = dt_exec::execute(plan, &provider)?;
        Ok((rows, input_rows))
    }

    /// §6.1 level-4 validation: "if you run the defining query as of the
    /// data timestamp, you should get the same result as in the DT."
    pub(crate) fn validate_dvs_invariant(
        &self,
        dt: EntityId,
        refresh_ts: Timestamp,
        plan: &LogicalPlan,
    ) -> DtResult<()> {
        let store = &self.tables[&dt];
        let mut stored = strip_row_ids(store.scan(store.latest_version())?);
        stored.sort();
        let (mut expected, _) = self.evaluate_at(plan, refresh_ts)?;
        expected.sort();
        if stored != expected {
            return Err(DtError::internal(format!(
                "DVS violation on {dt} at {refresh_ts}: stored {} rows != query {} rows",
                stored.len(),
                expected.len()
            )));
        }
        Ok(())
    }
}

/// The log label for a refresh action.
pub(crate) fn action_label(action: &RefreshAction) -> &'static str {
    match action {
        RefreshAction::NoData => "no_data",
        RefreshAction::Full => "full",
        RefreshAction::Incremental => "incremental",
        RefreshAction::Reinitialize => "reinitialize",
        RefreshAction::Failed(_) => "failed",
    }
}

/// Resolves each source at the exact version recorded in a frontier — the
/// "previous data timestamp" side of the differentiation interval.
struct FrontierProvider<'a> {
    env: &'a RefreshEnv,
    frontier: &'a Frontier,
}

impl TableProvider for FrontierProvider<'_> {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        let version = self
            .frontier
            .get(entity)
            .ok_or_else(|| DtError::internal(format!("no frontier entry for {entity}")))?;
        let rows = self.env.store(entity)?.scan(version)?;
        Ok(if self.env.is_dt(entity) {
            strip_row_ids(rows)
        } else {
            rows
        })
    }
}
