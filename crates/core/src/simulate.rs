//! The simulation driver: advances virtual time, lets the scheduler issue
//! refreshes, executes them on warehouses, and collects fleet statistics.

use dt_catalog::DtState;
use dt_common::{DtResult, Duration, EntityId, Timestamp};
use dt_scheduler::{RefreshAction, RefreshOutcome};

use crate::database::EngineState;

/// A refresh whose computation ran but whose virtual end time (warehouse
/// duration) lies in the future. Held in [`EngineState`] so it survives across
/// `run_scheduler_until` calls: a DT stays in-flight until its refresh's
/// virtual duration has elapsed, which is what makes slow refreshes skip
/// grid points (§3.3.3).
#[derive(Debug, Clone)]
pub struct PendingCompletion {
    /// Virtual completion time.
    pub ended: Timestamp,
    /// The DT refreshed.
    pub dt: EntityId,
    /// Its data timestamp.
    pub refresh_ts: Timestamp,
    /// The outcome to report to the scheduler at `ended`.
    pub outcome: RefreshOutcome,
}

/// Aggregate statistics of a simulation run (the §6.3 measurements).
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Total refreshes executed (including NO_DATA, excluding initial).
    pub refreshes: u64,
    /// NO_DATA refreshes.
    pub no_data: u64,
    /// Incremental refreshes.
    pub incremental: u64,
    /// Full refreshes.
    pub full: u64,
    /// Reinitializations.
    pub reinitialize: u64,
    /// Failed refreshes.
    pub failed: u64,
    /// Skipped grid points.
    pub skipped: u64,
    /// Warehouse credits consumed.
    pub credits: f64,
}

impl SimStats {
    /// Fraction of refreshes that moved no data (paper: >90%).
    pub fn no_data_fraction(&self) -> f64 {
        if self.refreshes == 0 {
            0.0
        } else {
            self.no_data as f64 / self.refreshes as f64
        }
    }
}

impl EngineState {
    /// Report every pending completion whose virtual end time has passed.
    fn settle_completions(&mut self, now: Timestamp) -> DtResult<()> {
        // Process in end-time order.
        self.pending_completions.sort_by_key(|p| p.ended);
        while self
            .pending_completions
            .first()
            .map(|p| p.ended <= now)
            .unwrap_or(false)
        {
            let p = self.pending_completions.remove(0);
            let suspended = self
                .scheduler
                .report(p.dt, p.refresh_ts, &p.outcome, p.ended)?;
            if suspended {
                self.catalog
                    .set_dt_state(p.dt, DtState::SuspendedOnErrors, p.ended)?;
                self.wal_log_catalog(crate::durability::SideEffect::None)?;
            }
        }
        Ok(())
    }

    /// Run the scheduler until the virtual clock reaches `end`. May be
    /// called repeatedly; refreshes still executing at `end` remain pending
    /// and complete during later calls.
    pub fn run_scheduler_until(&mut self, end: Timestamp) -> DtResult<SimStats> {
        let mut stats = SimStats::default();
        loop {
            let now = self.now();

            // 1. Complete refreshes whose virtual end time has passed.
            self.settle_completions(now)?;

            // 2. Initialize any DTs awaiting initialization.
            let to_init: Vec<EntityId> = self
                .catalog
                .dynamic_tables()
                .into_iter()
                .filter(|id| {
                    self.catalog
                        .get(*id)
                        .ok()
                        .and_then(|e| e.as_dt().map(|m| m.state == DtState::Initializing))
                        .unwrap_or(false)
                })
                .collect();
            for id in to_init {
                self.initialize_dt(id)?;
            }

            // 3. Issue due refreshes.
            for cmd in self.scheduler.due_refreshes(now) {
                stats.skipped += cmd.skipped;
                let outcome = self.run_refresh(cmd.dt, cmd.refresh_ts, false)?;
                stats.refreshes += 1;
                match &outcome.action {
                    RefreshAction::NoData => stats.no_data += 1,
                    RefreshAction::Full => stats.full += 1,
                    RefreshAction::Incremental => stats.incremental += 1,
                    RefreshAction::Reinitialize => stats.reinitialize += 1,
                    RefreshAction::Failed(_) => stats.failed += 1,
                }
                let duration = if outcome.work_units > 0.0 {
                    let wh = self.dt_warehouse[&cmd.dt].clone();
                    self.warehouses.get_mut(&wh)?.execute(now, outcome.work_units)
                } else {
                    Duration::ZERO
                };
                self.pending_completions.push(PendingCompletion {
                    ended: now.add(duration),
                    dt: cmd.dt,
                    refresh_ts: cmd.refresh_ts,
                    outcome,
                });
            }

            // 4. Advance virtual time to the next event, or stop at `end`.
            if now >= end {
                break;
            }
            let mut next = end;
            if let Some(p) = self.pending_completions.iter().map(|p| p.ended).min() {
                if p > now {
                    next = next.min(p);
                }
            }
            for id in self.scheduler.registered() {
                if let (Some(period), Some(st)) =
                    (self.scheduler.period_of(id), self.scheduler.state(id))
                {
                    if st.suspended || st.last_data_ts.is_none() {
                        continue;
                    }
                    let phase = Duration::ZERO;
                    let cur = dt_scheduler::periods::grid_at_or_before(now, period, phase);
                    let upcoming = cur.add(period);
                    if upcoming > now {
                        next = next.min(upcoming);
                    }
                }
            }
            if next <= now {
                next = now.add(Duration::from_secs(1));
            }
            self.clock.advance_to(next.min(end).max(now));
        }
        stats.credits = self.warehouses.total_credits();
        Ok(stats)
    }
}
