//! MVCC read snapshots: the lock-free query path.
//!
//! A [`ReadSnapshot`] is captured under a *brief* engine read lock — an
//! `Arc`'d [`CatalogSnapshot`] (cached by the catalog between mutations),
//! an `Arc<TableStore>` handle per table, a per-table [`VersionId`]
//! frontier, and an HLC read timestamp. Capture is O(tables) handle
//! clones (no row data, no binding), and the lock is released **before**
//! binding, planning, and execution. Storage is
//! already MVCC (every table is an immutable version chain ordered by
//! commit timestamp, §5.3), so a pinned reader is never disturbed by
//! writers appending new versions: a long SELECT no longer stalls — and is
//! no longer stalled by — refreshes or DML.
//!
//! Time travel falls out for free: [`crate::Engine::snapshot_at`] pins the
//! version each table had at a past instant (the snapshot-read rule of
//! §5.3) instead of the latest one, and the same execution path runs.

use std::collections::HashMap;
use std::sync::Arc;

use dt_catalog::{CatalogSnapshot, DtState, RefreshMode, TargetLagSpec};
use dt_common::{
    Batch, Column, DataType, DtError, DtResult, EntityId, PredicateSet, Row, Schema, Timestamp,
    Value, VersionId,
};
use dt_exec::TableProvider;
use dt_plan::{BindOutput, Binder, LogicalPlan, ResolvedRelation, Resolver};
use dt_sql::ast;
use dt_storage::TableStore;
use dt_txn::Frontier;

use crate::database::{reject_placeholders, EngineState, ExecResult, QueryResult};
use crate::providers::strip_row_ids;

/// One table pinned inside a [`ReadSnapshot`]: the shared store handle,
/// the version the snapshot resolves it at, and what kind of relation it
/// backs.
struct TableHandle {
    store: Arc<TableStore>,
    /// `None` when the table had no version at the pinned instant (time
    /// travel before the table's first commit).
    version: Option<VersionId>,
    /// DT storage carries a leading `$ROW_ID` column that scans strip.
    is_dt: bool,
    /// DTs that had not completed initialization at capture error on scan
    /// (§3.1) — latest-reads only; time travel resolves whatever existed.
    uninitialized: bool,
}

/// A consistent, immutable view of the whole engine for one reader:
/// catalog, per-table pinned versions, and a read timestamp. All methods
/// take `&self` and acquire **no engine lock** — capture the snapshot via
/// [`crate::Engine::snapshot`] / [`crate::Session::snapshot`] and query it
/// as long as you like while writers proceed.
pub struct ReadSnapshot {
    catalog: Arc<CatalogSnapshot>,
    tables: HashMap<EntityId, TableHandle>,
    /// Entity → pinned version for every table with a version at the
    /// pinned instant, keyed by the read timestamp (§5.3's frontier).
    frontier: Frontier,
    read_ts: Timestamp,
    /// Worker-thread budget for morsel-parallel partition scans (1 =
    /// sequential). Defaults to the host's available parallelism.
    scan_threads: usize,
}

/// Name resolution over the frozen catalog (+ DT payload schemas from the
/// pinned storage handles).
struct SnapshotResolver<'a> {
    snap: &'a ReadSnapshot,
}

impl Resolver for SnapshotResolver<'_> {
    fn resolve_relation(&self, name: &str) -> DtResult<ResolvedRelation> {
        let e = self.snap.catalog.resolve(name)?;
        match &e.kind {
            dt_catalog::EntityKind::Table { schema } => Ok(ResolvedRelation::Table {
                entity: e.id,
                schema: schema.clone(),
            }),
            dt_catalog::EntityKind::View { sql } => Ok(ResolvedRelation::View { sql: sql.clone() }),
            dt_catalog::EntityKind::DynamicTable(_) => {
                let schema = self.snap.dt_payload_schema(e.id)?;
                Ok(ResolvedRelation::Table {
                    entity: e.id,
                    schema,
                })
            }
        }
    }
}

impl EngineState {
    /// Capture a [`ReadSnapshot`]. `at = None` pins every table's latest
    /// version and a fresh HLC read timestamp; `at = Some(t)` pins the
    /// version visible at `t` (time travel, §5.3). Called under the engine
    /// read lock, which the caller releases immediately afterwards — the
    /// work here is O(tables) handle clones, no row data, no binding.
    pub fn capture_snapshot(&self, at: Option<Timestamp>) -> ReadSnapshot {
        self.capture(at, None)
    }

    /// Capture a [`ReadSnapshot`] covering only `entities` — O(entities)
    /// instead of O(all tables). The fast path for prepared statements,
    /// whose cached plan already names every table it scans; a point query
    /// doesn't pay for the rest of the catalog's storage handles.
    pub fn capture_snapshot_scoped(&self, entities: &[EntityId]) -> ReadSnapshot {
        self.capture(None, Some(entities))
    }

    fn capture(&self, at: Option<Timestamp>, scope: Option<&[EntityId]>) -> ReadSnapshot {
        let catalog = self.catalog.snapshot();
        let read_ts = at.unwrap_or_else(|| self.txn.read_timestamp());
        let pin = |tables: &mut HashMap<EntityId, TableHandle>,
                       id: EntityId,
                       store: &Arc<TableStore>| {
            let version = match at {
                None => Some(store.latest_version()),
                Some(t) => store.version_at(t),
            };
            let (is_dt, uninitialized) = match catalog.get(id).ok().and_then(|e| e.as_dt()) {
                Some(meta) => (true, at.is_none() && meta.state == DtState::Initializing),
                None => (false, false),
            };
            tables.insert(
                id,
                TableHandle {
                    store: Arc::clone(store),
                    version,
                    is_dt,
                    uninitialized,
                },
            );
        };
        let tables = match scope {
            Some(ids) => {
                let mut tables = HashMap::with_capacity(ids.len());
                for id in ids {
                    // Entities without storage are left out; scanning them
                    // errors exactly like an unknown entity would.
                    if let Some(store) = self.tables.get(id) {
                        pin(&mut tables, *id, store);
                    }
                }
                tables
            }
            None => {
                let mut tables = HashMap::with_capacity(self.tables.len());
                for (id, store) in &self.tables {
                    pin(&mut tables, *id, store);
                }
                tables
            }
        };
        let frontier = Frontier::from_sources(
            read_ts,
            tables
                .iter()
                .filter_map(|(id, h)| h.version.map(|v| (*id, v))),
        );
        ReadSnapshot {
            catalog,
            tables,
            frontier,
            read_ts,
            scan_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl ReadSnapshot {
    /// The HLC read timestamp this snapshot was pinned at (for latest
    /// reads, strictly after every commit visible in the snapshot).
    pub fn read_ts(&self) -> Timestamp {
        self.read_ts
    }

    /// The per-table version frontier: entity → pinned version, at the
    /// read timestamp (§5.3's frontier object, reused for reads).
    pub fn frontier(&self) -> &Frontier {
        &self.frontier
    }

    /// The frozen catalog view.
    pub fn catalog(&self) -> &Arc<CatalogSnapshot> {
        &self.catalog
    }

    /// The binding-relevant DDL generation at capture. Prepared statements
    /// compare this against the generation their plan was bound at.
    pub fn ddl_generation(&self) -> u64 {
        self.catalog.binding_generation()
    }

    /// The pinned version of `entity`, if it had one at the snapshot
    /// instant.
    pub fn version_of(&self, entity: EntityId) -> Option<VersionId> {
        self.frontier.get(entity)
    }

    /// The shared store handle of a pinned table — how a transaction's
    /// commit reaches the storage of the tables it buffered writes
    /// against without going back through the engine lock.
    pub(crate) fn table_store(&self, entity: EntityId) -> Option<Arc<TableStore>> {
        self.tables.get(&entity).map(|h| Arc::clone(&h.store))
    }

    /// The payload schema of a DT (stored schema minus `$ROW_ID`).
    fn dt_payload_schema(&self, id: EntityId) -> DtResult<Schema> {
        let handle = self
            .tables
            .get(&id)
            .ok_or_else(|| DtError::Storage(format!("no storage for {id}")))?;
        let cols = handle.store.schema().columns()[1..].to_vec();
        Ok(Schema::new(cols))
    }

    /// Cap (or expand) the worker-thread budget for morsel-parallel
    /// partition scans. `1` forces sequential scans; the default is the
    /// host's available parallelism.
    pub fn set_scan_threads(&mut self, threads: usize) {
        self.scan_threads = threads.max(1);
    }

    /// The current morsel-scan worker budget.
    pub fn scan_threads(&self) -> usize {
        self.scan_threads
    }

    /// Bind a query against the frozen catalog. No lock.
    pub fn bind_query(&self, q: &ast::Query) -> DtResult<BindOutput> {
        Binder::new(&SnapshotResolver { snap: self }).bind_query(q)
    }

    /// Execute a bound plan against the pinned table versions. No lock.
    /// Pushable filter conjuncts are moved into the scans first, so
    /// storage can prune partitions via zone maps and evaluate the rest
    /// vectorized.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> DtResult<Vec<Row>> {
        dt_exec::execute(&dt_plan::push_down_filters(plan), self)
    }

    /// Bind and execute a query AST with `params` bound to its `?`
    /// placeholders.
    pub fn execute_query_ast(&self, q: &ast::Query, params: &[Value]) -> DtResult<QueryResult> {
        if q.for_update {
            // A snapshot read retires as soon as it returns — there is no
            // transaction whose lifetime could hold the locks.
            return Err(DtError::Unsupported(
                "SELECT ... FOR UPDATE requires an explicit transaction".into(),
            ));
        }
        let out = self.bind_query(q)?;
        let plan = if params.is_empty() && out.plan.max_parameter().is_none() {
            out.plan
        } else {
            out.plan.bind_params(params)?
        };
        let rows = self.execute_plan(&plan)?;
        Ok(QueryResult::new(plan.schema(), rows))
    }

    /// Run a SELECT against the snapshot and return its rows + schema.
    pub fn query(&self, sql: &str) -> DtResult<QueryResult> {
        let stmt = dt_sql::parse(sql)?;
        reject_placeholders(&stmt)?;
        let ast::Statement::Query(q) = stmt else {
            return Err(DtError::Unsupported(
                "snapshot reads take a SELECT".into(),
            ));
        };
        self.execute_query_ast(&q, &[])
    }

    /// Run a SELECT and return sorted rows (deterministic comparisons).
    pub fn query_sorted(&self, sql: &str) -> DtResult<Vec<Row>> {
        Ok(self.query(sql)?.into_sorted_rows())
    }

    /// Parse and run any read-only statement (SELECT / EXPLAIN / SHOW
    /// DYNAMIC TABLES) against the snapshot.
    pub fn execute_read(&self, sql: &str) -> DtResult<ExecResult> {
        let stmt = dt_sql::parse(sql)?;
        reject_placeholders(&stmt)?;
        if !EngineState::is_read_statement(&stmt) {
            return Err(DtError::Unsupported(
                "snapshots serve read-only statements (SELECT / EXPLAIN / \
                 SHOW DYNAMIC TABLES); writes need a session"
                    .into(),
            ));
        }
        self.read_statement(&stmt, &[])
    }

    /// Execute a read-only statement (query / EXPLAIN / SHOW) with `params`
    /// bound to its `?` placeholders — the whole of bind, plan, and execute
    /// runs against this snapshot, with no engine lock.
    pub fn read_statement(&self, stmt: &ast::Statement, params: &[Value]) -> DtResult<ExecResult> {
        match stmt {
            ast::Statement::Query(q) => {
                Ok(ExecResult::Rows(self.execute_query_ast(q, params)?))
            }
            ast::Statement::Explain(q) => {
                let out = self.bind_query(q)?;
                let mode = if out.plan.is_differentiable() {
                    "incrementally maintainable"
                } else {
                    "full refresh only"
                };
                Ok(ExecResult::Ok(format!("{}({mode})", out.plan.explain())))
            }
            ast::Statement::ShowDynamicTables => {
                let rows = self.dynamic_tables_status()?;
                let schema = Arc::new(Schema::new(vec![
                    Column::new("name", DataType::Str),
                    Column::new("target_lag", DataType::Str),
                    Column::new("refresh_mode", DataType::Str),
                    Column::new("state", DataType::Str),
                    Column::new("warehouse", DataType::Str),
                    Column::new("rows", DataType::Int),
                    Column::new("errors", DataType::Int),
                ]));
                Ok(ExecResult::Rows(QueryResult::new(schema, rows)))
            }
            other => Err(DtError::internal(format!(
                "read_statement over non-read statement {other:?}"
            ))),
        }
    }

    /// Status rows for SHOW DYNAMIC TABLES, as of the snapshot.
    fn dynamic_tables_status(&self) -> DtResult<Vec<Row>> {
        let mut out = Vec::new();
        for &id in self.catalog.dynamic_tables() {
            let e = self.catalog.get(id)?;
            let meta = e.as_dt().expect("dynamic_tables returns DTs");
            let lag = match meta.target_lag {
                TargetLagSpec::Duration(d) => d.to_string(),
                TargetLagSpec::Downstream => "DOWNSTREAM".to_string(),
            };
            let mode = match meta.refresh_mode {
                RefreshMode::Full => "FULL",
                RefreshMode::Incremental => "INCREMENTAL",
            };
            let state = match meta.state {
                DtState::Initializing => "INITIALIZING",
                DtState::Active => "ACTIVE",
                DtState::Suspended => "SUSPENDED",
                DtState::SuspendedOnErrors => "SUSPENDED_ON_ERRORS",
            };
            let handle = self
                .tables
                .get(&id)
                .ok_or_else(|| DtError::Storage(format!("no storage for {id}")))?;
            let rows = match handle.version {
                Some(v) => handle.store.row_count_at(v)? as i64,
                None => 0,
            };
            out.push(Row::new(vec![
                Value::Str(e.name.clone()),
                Value::Str(lag),
                Value::Str(mode.into()),
                Value::Str(state.into()),
                Value::Str(meta.warehouse.clone()),
                Value::Int(rows),
                Value::Int(meta.error_count as i64),
            ]));
        }
        Ok(out)
    }

    /// The isolation level guaranteed for a query (§4): PL-SI when it
    /// reads a single DT and nothing else; PL-2 (Read Committed) otherwise.
    pub fn query_isolation_level(&self, sql: &str) -> DtResult<dt_isolation::IsolationLevel> {
        let stmt = dt_sql::parse(sql)?;
        reject_placeholders(&stmt)?;
        let ast::Statement::Query(q) = stmt else {
            return Err(DtError::Unsupported("not a query".into()));
        };
        let out = self.bind_query(&q)?;
        let scanned = out.plan.scanned_entities();
        let all_dts = scanned.iter().all(|e| self.catalog.is_dt(*e));
        Ok(if scanned.len() == 1 && all_dts {
            dt_isolation::IsolationLevel::Pl3
        } else {
            dt_isolation::IsolationLevel::Pl2
        })
    }
}

impl std::fmt::Debug for ReadSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadSnapshot")
            .field("read_ts", &self.read_ts)
            .field("tables", &self.tables.len())
            .field("ddl_generation", &self.ddl_generation())
            .finish()
    }
}

impl ReadSnapshot {
    /// Resolve `entity` to its pinned handle + version, with the scan-path
    /// error taxonomy (unknown entity, uninitialized DT, no version at the
    /// pinned instant).
    fn pinned(&self, entity: EntityId) -> DtResult<(&TableHandle, VersionId)> {
        let handle = self
            .tables
            .get(&entity)
            .ok_or_else(|| DtError::Storage(format!("no storage for {entity}")))?;
        if handle.uninitialized {
            return Err(DtError::NotInitialized(format!(
                "dynamic table {entity} has not been initialized yet"
            )));
        }
        let version = handle.version.ok_or_else(|| {
            DtError::Storage(format!("no version of {entity} at {}", self.read_ts))
        })?;
        Ok((handle, version))
    }
}

/// Scans resolve through the pinned handles: the store's internal lock is
/// held only long enough to clone the version's partition-handle list,
/// then rows stream out of immutable `Arc`'d partitions.
impl TableProvider for ReadSnapshot {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        let (handle, version) = self.pinned(entity)?;
        let rows = handle.store.snapshot(version)?.scan();
        Ok(if handle.is_dt {
            strip_row_ids(rows)
        } else {
            rows
        })
    }

    /// The columnar scan: batches slice the version's partitions zero-copy,
    /// the pushed-down filter prunes partitions via their zone maps before
    /// any column data is read, and partitions fan out over morsel workers
    /// when the snapshot's thread budget allows. DT storage's leading
    /// `$ROW_ID` column is invisible to plans, so the filter shifts one
    /// column right going in and the column is dropped coming out.
    fn scan_batches(
        &self,
        entity: EntityId,
        filter: Option<&PredicateSet>,
    ) -> DtResult<Vec<Batch>> {
        let (handle, version) = self.pinned(entity)?;
        let snap = handle.store.snapshot(version)?;
        let shifted = if handle.is_dt {
            filter.map(|f| f.shift_columns(1))
        } else {
            None
        };
        let effective = if handle.is_dt { shifted.as_ref() } else { filter };
        let batches = crate::morsel::scan_batches_parallel(&snap, effective, self.scan_threads);
        Ok(if handle.is_dt {
            batches.into_iter().map(Batch::drop_first_column).collect()
        } else {
            batches
        })
    }
}
