//! First-class transactions: snapshot-pinned reads plus buffered,
//! optimistically committed writes.
//!
//! [`crate::Session::begin`] returns a [`Transaction`] handle (SQL `BEGIN`
//! opens the same thing on the session itself). Every read inside the
//! transaction runs against **one** [`ReadSnapshot`] pinned at begin, so
//! re-reads are byte-identical no matter how many refreshes and DML
//! commits land concurrently. DML inside the transaction never touches
//! shared state: its row-level effect is computed against the pinned
//! snapshot overlaid with the transaction's own buffered writes
//! (read-your-own-writes), and buffered in a per-table write set.
//!
//! `COMMIT` applies the write set atomically under optimistic
//! first-committer-wins validation:
//!
//! 1. **Admission** — take `TxnManager` write locks on every touched table
//!    in one all-or-nothing step ([`dt_txn::TxnManager::try_lock_all`]).
//!    Per-table locks mean transactions over disjoint tables commit
//!    concurrently instead of serializing on one engine-wide lock; a held
//!    lock is an in-flight committer, i.e. a conflict.
//! 2. **Row work** — build each touched table's new version against the
//!    pinned base ([`dt_storage::TableStore::prepare_change_at`]) holding
//!    no lock at all: COW delete rewrites and partition minting happen
//!    while readers and other committers proceed.
//! 3. **Group-committed validation + install** — the prepared request
//!    enters the engine's [`dt_txn::CommitQueue`]; one **leader** drains
//!    the queue and takes the engine write lock *once for the whole
//!    batch* (admission guarantees batch-mates touch disjoint tables).
//!    Per transaction it validates **everything first** — all touched
//!    tables live in the catalog, every prepared base still the latest
//!    version, each check pinned by a per-table
//!    [`dt_storage::CommitGuard`] — then mints a commit timestamp past
//!    every touched version chain ([`dt_txn::Hlc::tick_after`]) and only
//!    then installs. Past validation nothing can fail, so a multi-table
//!    commit is all-or-nothing: no reader, time-travel query, or crash
//!    can ever surface half of it. Followers are woken with their
//!    individual commit/conflict outcomes.
//!
//! `ROLLBACK` (or dropping the handle) discards the write set and aborts
//! the transaction; locks are only ever held from `prepare_commit` on,
//! and every commit/abort path (including dropping a [`PreparedCommit`])
//! releases them, so an abandoned handle can never leak a `TxnManager`
//! lock.

use std::collections::BTreeMap;
use std::sync::Arc;

use dt_common::{DtError, DtResult, EntityId, Row, Schema, Timestamp, TxnId, Value};
use dt_exec::TableProvider;
use dt_plan::{BindOutput, LogicalPlan};
use dt_sql::ast;
use dt_storage::{PreparedChange, TableStore};
use dt_txn::Txn;

use crate::database::{EngineState, ExecResult, QueryResult};
use crate::dml::{self, DmlChange, DmlSource};
use crate::durability::WalRecord;
use crate::engine::Engine;
use crate::snapshot::ReadSnapshot;

/// True when an error is a serialization conflict: another transaction
/// committed (or is committing) a touched table first. Auto-commit
/// statements retry on these; explicit transactions surface them so the
/// application can re-run its logic against fresh data.
///
/// This is a compatibility shim over the typed check,
/// [`DtError::is_conflict`]: the engine now emits the structured
/// [`DtError::Conflict`] variant everywhere, and the legacy substring
/// match survives only for callers that still construct `DtError::Txn`
/// conflict strings by hand.
pub fn is_serialization_conflict(e: &DtError) -> bool {
    e.is_conflict()
        || e.is_deadlock()
        || matches!(e, DtError::Txn(m) if m.contains("conflict") || m.contains("is locked by"))
}

/// The buffered effect of a transaction on one table.
#[derive(Debug, Default)]
struct TableWrites {
    inserts: Vec<Row>,
    deletes: Vec<Row>,
}

impl TableWrites {
    /// Fold one statement's change in. A delete first cancels against the
    /// transaction's own pending inserts (deleting a row you inserted in
    /// this transaction leaves no trace), so the surviving delete list
    /// always refers to rows of the pinned base version.
    fn fold(&mut self, inserts: Vec<Row>, deletes: Vec<Row>) {
        for d in deletes {
            if let Some(pos) = self.inserts.iter().position(|r| *r == d) {
                self.inserts.remove(pos);
            } else {
                self.deletes.push(d);
            }
        }
        self.inserts.extend(inserts);
    }

    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// A [`dt_exec::TableProvider`] view of "the pinned snapshot plus this
/// transaction's buffered writes": base rows minus buffered deletes plus
/// buffered inserts. This is what gives DML statements inside a
/// transaction read-your-own-writes without publishing anything.
struct OverlayProvider<'a> {
    snap: &'a ReadSnapshot,
    writes: &'a BTreeMap<EntityId, TableWrites>,
}

impl TableProvider for OverlayProvider<'_> {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        let mut rows = self.snap.scan(entity)?;
        if let Some(w) = self.writes.get(&entity) {
            for d in &w.deletes {
                let pos = rows.iter().position(|r| r == d).ok_or_else(|| {
                    DtError::internal(
                        "buffered delete not present in the pinned base version",
                    )
                })?;
                rows.remove(pos);
            }
            rows.extend(w.inserts.iter().cloned());
        }
        Ok(rows)
    }
}

/// The [`DmlSource`] of a transaction: names resolve in the frozen
/// catalog, queries bind against the snapshot, and scans see the overlay.
struct TxnDmlSource<'a> {
    snap: &'a ReadSnapshot,
    writes: &'a BTreeMap<EntityId, TableWrites>,
}

impl TxnDmlSource<'_> {
    fn overlay(&self) -> OverlayProvider<'_> {
        OverlayProvider {
            snap: self.snap,
            writes: self.writes,
        }
    }
}

impl DmlSource for TxnDmlSource<'_> {
    fn target_table(&self, name: &str) -> DtResult<(EntityId, Schema)> {
        let e = self.snap.catalog().resolve(name)?;
        match &e.kind {
            dt_catalog::EntityKind::Table { schema } => Ok((e.id, schema.clone())),
            _ => Err(DtError::Unsupported(format!(
                "DML targets must be base tables; '{name}' is a {}",
                e.kind.label()
            ))),
        }
    }

    fn entity_name(&self, id: EntityId) -> DtResult<String> {
        Ok(self.snap.catalog().get(id)?.name.clone())
    }

    fn bind_query(&self, q: &ast::Query) -> DtResult<BindOutput> {
        self.snap.bind_query(q)
    }

    fn execute_plan(&self, plan: &LogicalPlan) -> DtResult<Vec<Row>> {
        dt_exec::execute(&dt_plan::push_down_filters(plan), &self.overlay())
    }

    fn scan_base(&self, id: EntityId) -> DtResult<Vec<Row>> {
        self.overlay().scan(id)
    }
}

/// An explicit transaction over one engine: repeatable snapshot reads and
/// buffered DML, committed atomically with first-committer-wins
/// validation. Obtain one from [`crate::Session::begin`] /
/// [`crate::Session::begin_at`] or with SQL `BEGIN` through
/// [`crate::Session::execute`]. Dropping the handle without committing
/// rolls the transaction back.
pub struct Transaction {
    engine: Engine,
    snapshot: ReadSnapshot,
    txn: Txn,
    writes: BTreeMap<EntityId, TableWrites>,
    done: bool,
}

impl Transaction {
    /// Open a transaction: pin a snapshot (latest state, or the state at
    /// `at` for time-travel transactions) and register the transaction
    /// with the manager at the snapshot's read timestamp.
    pub(crate) fn start(engine: Engine, at: Option<Timestamp>) -> Transaction {
        let (snapshot, txn) = {
            let st = engine.state.read();
            let snap = st.capture_snapshot(at);
            let txn = st.txn.begin_at(snap.read_ts());
            (snap, txn)
        };
        Transaction {
            engine,
            snapshot,
            txn,
            writes: BTreeMap::new(),
            done: false,
        }
    }

    /// Open a transaction with `entities` already locked pessimistically.
    /// The locks are taken *before* the snapshot is pinned, so the
    /// snapshot is guaranteed to see each locked table's latest version —
    /// no committer can move it while the locks are held. This is what
    /// autocommit retries use after losing to a pessimistic table: the
    /// retry plans against current state and cannot lose admission again.
    pub(crate) fn start_locked(engine: Engine, entities: &[EntityId]) -> DtResult<Transaction> {
        let txn = engine.state.read().txn.begin();
        if let Err(e) = engine.locks.lock_pessimistic(txn.id, entities.iter().copied()) {
            let _ = engine.state.read().txn.abort(&txn);
            return Err(e);
        }
        // Snapshot *after* the locks are held (see above). The manager
        // registered the transaction at `begin`, slightly before the
        // snapshot's read timestamp — an older registration only makes
        // GC watermarks more conservative, never incorrect.
        let snapshot = engine.state.read().capture_snapshot(None);
        Ok(Transaction {
            engine,
            snapshot,
            txn,
            writes: BTreeMap::new(),
            done: false,
        })
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.txn.id
    }

    /// The snapshot timestamp every read in this transaction resolves at.
    pub fn read_ts(&self) -> Timestamp {
        self.snapshot.read_ts()
    }

    /// The pinned snapshot (its frontier records the exact version of
    /// every table the transaction sees — and validates against at
    /// commit).
    pub fn snapshot(&self) -> &ReadSnapshot {
        &self.snapshot
    }

    /// Number of buffered row changes (inserts + deletes) awaiting commit.
    pub fn pending_changes(&self) -> usize {
        self.writes
            .values()
            .map(|w| w.inserts.len() + w.deletes.len())
            .sum()
    }

    /// The tables this transaction has buffered writes against.
    pub fn touched_tables(&self) -> Vec<EntityId> {
        self.writes.keys().copied().collect()
    }

    /// Execute one SQL statement inside the transaction: reads come from
    /// the pinned snapshot (overlaid with this transaction's own writes),
    /// DML is buffered until [`Transaction::commit`]. DDL, refreshes, and
    /// nested transaction control are rejected.
    pub fn execute(&mut self, sql: &str) -> DtResult<ExecResult> {
        let stmt = dt_sql::parse(sql)?;
        let placeholders = stmt.placeholder_count();
        if placeholders > 0 {
            return Err(DtError::Binding(format!(
                "statement has {placeholders} `?` placeholder(s); prepare it \
                 with Session::prepare and bind values at execute time"
            )));
        }
        self.execute_parsed(stmt, &[])
    }

    /// Run a query against the transaction's pinned snapshot (plus its own
    /// buffered writes) and return rows + schema.
    pub fn query(&self, sql: &str) -> DtResult<QueryResult> {
        let stmt = dt_sql::parse(sql)?;
        crate::database::reject_placeholders(&stmt)?;
        let ast::Statement::Query(q) = stmt else {
            return Err(DtError::Unsupported("not a query".into()));
        };
        self.run_query(&q, &[])
    }

    /// Run a query and return sorted rows (deterministic comparisons).
    pub fn query_sorted(&self, sql: &str) -> DtResult<Vec<Row>> {
        Ok(self.query(sql)?.into_sorted_rows())
    }

    /// Execute an already-parsed statement with `params` bound to its `?`
    /// placeholders. The session routes statements here while a SQL-level
    /// transaction is open; prepared statements join through the same
    /// door.
    pub(crate) fn execute_parsed(
        &mut self,
        stmt: ast::Statement,
        params: &[Value],
    ) -> DtResult<ExecResult> {
        match stmt {
            ast::Statement::Query(q) => Ok(ExecResult::Rows(self.run_query(&q, params)?)),
            ast::Statement::Explain(_) | ast::Statement::ShowDynamicTables => {
                self.snapshot.read_statement(&stmt, params)
            }
            ast::Statement::Insert {
                table,
                values,
                query,
            } => {
                let change =
                    dml::plan_insert(&self.dml_source(), &table, values, query, params)?;
                Ok(self.buffer(change))
            }
            ast::Statement::Delete { table, predicate } => {
                let change = dml::plan_delete(&self.dml_source(), &table, predicate, params)?;
                Ok(self.buffer(change))
            }
            ast::Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                let change = dml::plan_update(
                    &self.dml_source(),
                    &table,
                    assignments,
                    predicate,
                    params,
                )?;
                Ok(self.buffer(change))
            }
            ast::Statement::Begin => Err(DtError::Txn(
                "already in a transaction; nested BEGIN is not supported".into(),
            )),
            ast::Statement::Commit | ast::Statement::Rollback => Err(DtError::Unsupported(
                "on a Transaction handle, use Transaction::commit() / \
                 Transaction::rollback() (SQL COMMIT/ROLLBACK drive the \
                 session-scoped transaction opened with BEGIN)"
                    .into(),
            )),
            other => Err(DtError::Unsupported(format!(
                "{} is not allowed inside a transaction; commit or roll back \
                 first",
                statement_label(&other)
            ))),
        }
    }

    fn dml_source(&self) -> TxnDmlSource<'_> {
        TxnDmlSource {
            snap: &self.snapshot,
            writes: &self.writes,
        }
    }

    fn run_query(&self, q: &ast::Query, params: &[Value]) -> DtResult<QueryResult> {
        let out = self.snapshot.bind_query(q)?;
        if q.for_update {
            self.lock_for_update(&out.plan)?;
        }
        let plan = if params.is_empty() && out.plan.max_parameter().is_none() {
            out.plan
        } else {
            out.plan.bind_params(params)?
        };
        let provider = OverlayProvider {
            snap: &self.snapshot,
            writes: &self.writes,
        };
        let rows = dt_exec::execute(&dt_plan::push_down_filters(&plan), &provider)?;
        Ok(QueryResult::new(plan.schema(), rows))
    }

    /// `SELECT ... FOR UPDATE`: take the scanned base tables' admission
    /// locks **now**, pessimistically, and hold them until the transaction
    /// retires. Commit-time admission is re-entrant, so a later
    /// `prepare_commit` on the same tables just keeps the locks.
    ///
    /// Two subtleties:
    ///
    /// * The locks guarantee exclusion *from lock time on*, but this
    ///   transaction's snapshot was pinned at `BEGIN`. If a table's latest
    ///   version already moved past the snapshot, the rows being read are
    ///   stale and "locking" them would be a lie — that surfaces as a
    ///   typed conflict so the caller re-runs against fresh state (the
    ///   standard retry loop handles it).
    /// * Lock acquisition mid-transaction is exactly the mixed-mode edge
    ///   that can close a wait-for cycle; the manager's deadlock backstop
    ///   picks this transaction as the victim if so.
    fn lock_for_update(&self, plan: &LogicalPlan) -> DtResult<()> {
        let entities = plan.scanned_entities();
        for e in &entities {
            let ent = self.snapshot.catalog().get(*e)?;
            if !matches!(ent.kind, dt_catalog::EntityKind::Table { .. }) {
                return Err(DtError::Unsupported(format!(
                    "SELECT ... FOR UPDATE locks base tables; '{}' is a {}",
                    ent.name,
                    ent.kind.label()
                )));
            }
        }
        self.engine
            .locks
            .lock_pessimistic(self.txn.id, entities.iter().copied())?;
        for e in &entities {
            let latest = self
                .snapshot
                .table_store(*e)
                .map(|s| s.latest_version());
            if latest != self.snapshot.version_of(*e) {
                return Err(DtError::Conflict(format!(
                    "entity {e} changed after this transaction's snapshot; \
                     FOR UPDATE cannot lock stale rows — re-run the transaction"
                )));
            }
        }
        Ok(())
    }

    fn buffer(&mut self, change: DmlChange) -> ExecResult {
        let slot = self.writes.entry(change.entity).or_default();
        slot.fold(change.inserts, change.deletes);
        if slot.is_empty() {
            // A statement whose effect nets to zero against this
            // transaction's own pending writes leaves no write-set entry
            // (and therefore takes no lock and validates nothing at
            // commit).
            self.writes.remove(&change.entity);
        }
        ExecResult::Count(change.count)
    }

    /// Commit: apply the whole write set atomically at one HLC commit
    /// timestamp, under optimistic first-committer-wins validation.
    /// Returns the commit timestamp. On a write-write conflict the
    /// transaction aborts, the write set is discarded, and the error
    /// satisfies [`is_serialization_conflict`].
    ///
    /// The install rides the engine's **group-commit queue**: concurrent
    /// committers batch behind one leader, which takes the engine write
    /// lock once per batch and installs every transaction inside it (each
    /// at its own commit timestamp). See [`Transaction::prepare_commit`]
    /// for the staged form and [`Transaction::commit_unbatched`] for the
    /// one-lock-acquisition-per-commit path this replaces.
    pub fn commit(self) -> DtResult<Timestamp> {
        self.prepare_commit()?.commit()
    }

    /// Commit without group-commit batching: identical admission, row
    /// work, and all-or-nothing validate+install, but this committer takes
    /// the engine write lock itself instead of riding a leader's batch.
    /// Retained for comparison — `txn_commit_contention` benches it
    /// against the grouped path.
    pub fn commit_unbatched(self) -> DtResult<Timestamp> {
        self.prepare_commit()?.commit_unbatched()
    }

    /// Run the local phases of a commit — admission and row work — and
    /// return a [`PreparedCommit`] ready for the install phase. The two
    /// phases:
    ///
    /// 1. **Admission** — per-table `TxnManager` write locks, all or
    ///    nothing; a held lock is another in-flight committer, i.e. a
    ///    conflict.
    /// 2. **Row work** — each table's new version is built against the
    ///    pinned base holding no lock at all.
    ///
    /// On any failure the transaction aborts and its locks release.
    /// Splitting the commit here lets callers (and tests) stage many
    /// committers before any of them enters the install queue.
    pub fn prepare_commit(mut self) -> DtResult<PreparedCommit> {
        self.done = true;
        let touched: Vec<EntityId> = self.writes.keys().copied().collect();
        let mut modes: std::collections::HashMap<EntityId, dt_txn::LockMode> =
            std::collections::HashMap::new();
        if !touched.is_empty() {
            // Phase 1 — admission through the lock manager, holding **no
            // engine lock**: optimistic tables fail fast (first committer
            // wins, exactly as before), pessimistic tables park on their
            // FIFO wait-queue. Parking must not pin the engine read lock —
            // the current holder needs the engine *write* lock to install
            // and release, so a parked reader-lock holder would deadlock
            // the whole pipeline.
            match self
                .engine
                .locks
                .acquire_for_commit(self.txn.id, touched.iter().copied())
            {
                Ok(acquired) => modes.extend(acquired),
                Err(e) => {
                    for id in &touched {
                        self.engine.locking.record_abort(*id);
                    }
                    let _ = self.engine.state.read().txn.abort(&self.txn);
                    return Err(e);
                }
            }
        }

        // Phase 2 — row work, holding no lock at all: readers and
        // committers of other tables proceed concurrently. The write set
        // is moved, not cloned — commit owns `self`, and on any failure
        // the set is discarded anyway. `writes` is a BTreeMap, so the
        // prepared list comes out in ascending entity order — the order
        // the install phase acquires per-table commit guards in.
        let writes = std::mem::take(&mut self.writes);
        let mut prepared: Vec<(EntityId, Arc<TableStore>, PreparedChange)> =
            Vec::with_capacity(touched.len());
        for (id, w) in writes {
            let prep = (|| {
                let store = self.snapshot.table_store(id).ok_or_else(|| {
                    DtError::Storage(format!("no storage for {id} in the snapshot"))
                })?;
                let mut base = self.snapshot.version_of(id).ok_or_else(|| {
                    DtError::Storage(format!(
                        "no version of {id} at the transaction's snapshot"
                    ))
                })?;
                // Pessimistic rebase: a waiter admitted after parking has,
                // by construction, a stale snapshot — the writer it waited
                // for installed a newer version. The held admission lock
                // pins `latest` (no one else can move it), so a pure-insert
                // write set commutes and can simply re-base; rebasing would
                // silently misapply deletes/updates planned against rows
                // that may have changed, so those surface a conflict that
                // points at `SELECT ... FOR UPDATE`.
                if modes.get(&id) == Some(&dt_txn::LockMode::Pessimistic) {
                    let latest = store.latest_version();
                    if latest != base {
                        if w.deletes.is_empty() {
                            base = latest;
                        } else {
                            return Err(DtError::Conflict(format!(
                                "table {id} changed while this transaction waited \
                                 for its lock and the write set contains deletes; \
                                 re-run, reading the rows with SELECT ... FOR UPDATE"
                            )));
                        }
                    }
                }
                let p = store.prepare_change_at(base, w.inserts, w.deletes)?;
                Ok::<_, DtError>((id, store, p))
            })();
            match prep {
                Ok(sp) => prepared.push(sp),
                Err(e) => {
                    if is_serialization_conflict(&e) {
                        for (id, _, _) in &prepared {
                            self.engine.locking.record_abort(*id);
                        }
                        self.engine.locking.record_abort(id);
                    }
                    let _ = self.engine.state.read().txn.abort(&self.txn);
                    return Err(e);
                }
            }
        }

        Ok(PreparedCommit {
            engine: self.engine.clone(),
            request: Some(CommitRequest {
                txn: self.txn.clone(),
                prepared,
            }),
        })
    }

    /// Roll back: discard every buffered write and abort the transaction.
    pub fn rollback(mut self) -> DtResult<()> {
        self.done = true;
        self.writes.clear();
        self.engine.state.read().txn.abort(&self.txn)
    }
}

impl Drop for Transaction {
    /// A dropped transaction rolls back: the write set dies with the
    /// handle and the manager marks the transaction aborted. No lock can
    /// leak — locks are only held inside `commit`, which always releases
    /// them on both outcomes.
    fn drop(&mut self) {
        if !self.done {
            let _ = self.engine.state.read().txn.abort(&self.txn);
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.txn.id)
            .field("read_ts", &self.snapshot.read_ts())
            .field("touched_tables", &self.writes.len())
            .field("pending_changes", &self.pending_changes())
            .finish()
    }
}

/// A transaction's install-ready commit: admission passed (per-table
/// locks held) and every table's new version is built. Produced by
/// [`Transaction::prepare_commit`]; consumed by [`PreparedCommit::commit`]
/// (group-committed) or [`PreparedCommit::commit_unbatched`]. Dropping it
/// without committing aborts the transaction and releases its locks.
pub struct PreparedCommit {
    engine: Engine,
    request: Option<CommitRequest>,
}

impl PreparedCommit {
    /// The id of the transaction being committed.
    pub fn txn_id(&self) -> TxnId {
        self.request.as_ref().expect("present until consumed").txn.id
    }

    /// Number of tables this commit will install into.
    pub fn table_count(&self) -> usize {
        self.request.as_ref().expect("present until consumed").prepared.len()
    }

    /// Finish the commit through the engine's group-commit queue: enqueue
    /// the request and block until a leader — possibly this thread —
    /// installs the batch containing it. Returns this transaction's
    /// commit timestamp, or its individual conflict outcome.
    pub fn commit(mut self) -> DtResult<Timestamp> {
        let request = self.request.take().expect("present until consumed");
        if request.prepared.is_empty() {
            // Read-only transaction: nothing to validate or install.
            return self.engine.state.read().txn.commit(&request.txn);
        }
        let txn = request.txn.clone();
        let engine = self.engine.clone();
        let submitted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.engine
                .commit
                .queue
                .submit(request, move |batch| install_batch(&engine, batch))
        }));
        match submitted {
            Ok(outcome) => outcome,
            Err(payload) => {
                // The queue poisoned this request (a leader panicked with
                // it in the doomed batch, or this thread led and its own
                // processing panicked). The panic propagates — but first
                // the transaction must abort, or its per-table admission
                // locks would stay held forever and every future commit
                // on those tables would conflict.
                let _ = self.engine.state.read().txn.abort(&txn);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Finish the commit alone: take the engine write lock for this one
    /// transaction instead of riding a batch. Same validation and
    /// atomicity guarantees; one lock acquisition per commit.
    pub fn commit_unbatched(mut self) -> DtResult<Timestamp> {
        let request = self.request.take().expect("present until consumed");
        if request.prepared.is_empty() {
            return self.engine.state.read().txn.commit(&request.txn);
        }
        install_batch(&self.engine, vec![request])
            .pop()
            .expect("one outcome per request")
    }

    /// Abandon the prepared commit: abort the transaction and release its
    /// per-table locks (dropping the handle does the same).
    pub fn abort(mut self) {
        if let Some(request) = self.request.take() {
            let _ = self.engine.state.read().txn.abort(&request.txn);
        }
    }
}

impl Drop for PreparedCommit {
    fn drop(&mut self) {
        if let Some(request) = self.request.take() {
            let _ = self.engine.state.read().txn.abort(&request.txn);
        }
    }
}

impl std::fmt::Debug for PreparedCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedCommit")
            .field("consumed", &self.request.is_none())
            .finish()
    }
}

/// One transaction's install-ready state, as it travels through the
/// group-commit queue: the manager handle plus each touched table's store
/// and prepared (row work done) change, in ascending entity order.
pub(crate) struct CommitRequest {
    txn: Txn,
    prepared: Vec<(EntityId, Arc<TableStore>, PreparedChange)>,
}

/// The group-commit leader's batch install: take the engine write lock
/// **once**, then validate+install every transaction in the batch — each
/// at its own HLC commit timestamp — returning one outcome per request in
/// order. Admission guarantees the batch's transactions touch disjoint
/// table sets, so outcomes are independent: one transaction's conflict
/// abort never disturbs its batch-mates.
fn install_batch(engine: &Engine, batch: Vec<CommitRequest>) -> Vec<DtResult<Timestamp>> {
    let st = engine.state.write();
    engine.commit.record_batch(batch.len());
    // Each request's touched tables, captured before the requests are
    // consumed — the adaptive policy is fed per-table outcomes below.
    let table_sets: Vec<Vec<EntityId>> = batch
        .iter()
        .map(|r| r.prepared.iter().map(|(id, _, _)| *id).collect())
        .collect();
    let mut wal_records = Vec::new();
    let mut outcomes: Vec<DtResult<Timestamp>> = batch
        .into_iter()
        .map(|request| {
            let outcome = validate_and_install(&st, request, &mut wal_records);
            engine.commit.record_outcome(&outcome);
            outcome
        })
        .collect();
    // Feed the adaptive policy from the validation outcomes (not the WAL
    // result below: an fsync failure is a durability problem, not
    // contention, and must not flip tables pessimistic).
    for (tables, outcome) in table_sets.iter().zip(&outcomes) {
        for id in tables {
            match outcome {
                Ok(_) => engine.locking.record_commit(*id),
                Err(e) if is_serialization_conflict(e) => engine.locking.record_abort(*id),
                Err(_) => {}
            }
        }
    }
    // WAL the whole batch with one fsync *before* the write lock drops:
    // the installs above are invisible until then, so durable strictly
    // precedes both acknowledged and visible. If the append fails, the
    // versions are already in the chains — fail every acknowledgement so
    // no caller treats a possibly-lost commit as durable.
    if let Err(e) = st.wal_append(&wal_records) {
        for outcome in &mut outcomes {
            if outcome.is_ok() {
                *outcome = Err(e.clone());
            }
        }
    }
    outcomes
}

/// Validate one transaction completely, then install it infallibly —
/// the all-or-nothing core of the commit path. Under the engine write
/// lock (held by the caller for the whole batch):
///
/// 1. Every touched table must still exist in the catalog. A concurrent
///    DROP leaves the store behind for UNDROP, so the version check alone
///    would "commit" writes into an orphaned store and silently lose
///    them.
/// 2. Every table's [`dt_storage::CommitGuard`] is acquired (ascending
///    entity order) and every prepared change validated against it: the
///    base must still be the latest version (first committer wins). The
///    guards also exclude writers that drive stores directly, bypassing
///    the engine lock.
/// 3. The commit timestamp is minted **after** validation with
///    [`dt_txn::Hlc::tick_after`], floored past every guarded table's
///    latest commit timestamp — so it can never regress behind a version
///    chain it extends.
/// 4. Only then does anything install — and by construction nothing can
///    fail from here on, so a multi-table commit is either fully
///    installed or not at all. No reader can capture a snapshot between
///    two installs (the engine write lock is held), so no half-applied
///    state is ever observable *or* persistable.
fn validate_and_install(
    st: &EngineState,
    request: CommitRequest,
    wal_records: &mut Vec<WalRecord>,
) -> DtResult<Timestamp> {
    let CommitRequest { txn, prepared } = request;
    let mut ids = Vec::with_capacity(prepared.len());
    let mut stores = Vec::with_capacity(prepared.len());
    let mut preps = Vec::with_capacity(prepared.len());
    for (id, store, prep) in prepared {
        ids.push(id);
        stores.push(store);
        preps.push(prep);
    }
    let abort = |e: DtError| {
        let _ = st.txn_manager().abort(&txn);
        Err(e)
    };

    // 0. The transaction itself must still be active. It can be retired
    //    out from under a queued commit only by driving the manager
    //    directly, but the check belongs in the validation phase all the
    //    same: it is what lets the final `commit_at` below run after the
    //    installs without any realistic way to fail — an inversion that
    //    would publish versions while reporting the commit failed.
    if !st.txn_manager().is_active(&txn) {
        return Err(DtError::Txn(format!(
            "transaction {} is not active",
            txn.id
        )));
    }

    // 1. Catalog: all touched tables live.
    for id in &ids {
        let live = st
            .catalog()
            .get(*id)
            .map(|e| e.dropped_at.is_none())
            .unwrap_or(false);
        if !live {
            return abort(DtError::Conflict(format!(
                "touched table {id} was dropped after this transaction began"
            )));
        }
    }

    // 2. Guard every store (ascending entity order), validate every
    //    prepared change — *before* installing anything.
    let guards: Vec<dt_storage::CommitGuard<'_>> =
        stores.iter().map(|s| s.commit_guard()).collect();
    for (prep, guard) in preps.iter().zip(&guards) {
        if let Err(e) = guard.validate_prepared(prep) {
            drop(guards);
            return abort(e);
        }
    }

    // 3. Commit timestamp, floored past every touched chain.
    let floor = guards
        .iter()
        .map(|g| g.latest_commit_ts())
        .max()
        .expect("non-empty prepared set");
    let commit_ts = st.txn_manager().hlc().tick_after(floor);

    // 4. Install — infallible post-validation. The physical install
    //    records are extracted first; the leader WALs the whole batch
    //    before the engine write lock drops.
    if st.wal_enabled() {
        wal_records.push(WalRecord::DmlCommit {
            commit_ts,
            txn: txn.id,
            tables: ids
                .iter()
                .zip(&preps)
                .map(|(id, prep)| (*id, prep.install_record()))
                .collect(),
        });
    }
    for (prep, guard) in preps.into_iter().zip(&guards) {
        guard.install_validated(prep, commit_ts, txn.id);
    }
    drop(guards);

    st.txn_manager().commit_at(&txn, commit_ts)?;
    Ok(commit_ts)
}

fn statement_label(stmt: &ast::Statement) -> &'static str {
    match stmt {
        ast::Statement::CreateTable { .. } => "CREATE TABLE",
        ast::Statement::CreateView { .. } => "CREATE VIEW",
        ast::Statement::CreateDynamicTable(_) => "CREATE DYNAMIC TABLE",
        ast::Statement::Drop { .. } => "DROP",
        ast::Statement::Undrop { .. } => "UNDROP",
        ast::Statement::Clone { .. } => "CLONE",
        ast::Statement::AlterDynamicTable { .. } => "ALTER DYNAMIC TABLE",
        ast::Statement::AlterTableLocking { .. } => "ALTER TABLE ... SET LOCKING",
        _ => "this statement",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DbConfig;

    #[test]
    fn transaction_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Transaction>();
    }

    #[test]
    fn conflict_classifier_matches_typed_and_legacy_errors() {
        // The typed variant is the source of truth...
        assert!(is_serialization_conflict(&DtError::Conflict(
            "entity e3 is locked by t7".into()
        )));
        assert!(is_serialization_conflict(&DtError::conflict(
            "first committer wins"
        )));
        // ...and the legacy substring shim still recognizes hand-built
        // `Txn` conflict strings.
        assert!(is_serialization_conflict(&DtError::Txn(
            "entity e3 is locked by t7".into()
        )));
        assert!(is_serialization_conflict(&DtError::Txn(
            "write-write conflict: ...".into()
        )));
        assert!(!is_serialization_conflict(&DtError::Txn(
            "transaction t9 is not active".into()
        )));
        assert!(!is_serialization_conflict(&DtError::Unsupported("x".into())));
    }

    #[test]
    fn net_zero_statement_leaves_no_write_set_entry() {
        let engine = Engine::new(DbConfig::default());
        let session = engine.session();
        session.execute("CREATE TABLE t (k INT)").unwrap();
        let mut txn = session.begin();
        txn.execute("INSERT INTO t VALUES (1)").unwrap();
        txn.execute("DELETE FROM t WHERE k = 1").unwrap();
        assert_eq!(txn.pending_changes(), 0);
        assert!(txn.touched_tables().is_empty());
        txn.commit().unwrap();
    }
}
