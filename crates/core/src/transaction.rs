//! First-class transactions: snapshot-pinned reads plus buffered,
//! optimistically committed writes.
//!
//! [`crate::Session::begin`] returns a [`Transaction`] handle (SQL `BEGIN`
//! opens the same thing on the session itself). Every read inside the
//! transaction runs against **one** [`ReadSnapshot`] pinned at begin, so
//! re-reads are byte-identical no matter how many refreshes and DML
//! commits land concurrently. DML inside the transaction never touches
//! shared state: its row-level effect is computed against the pinned
//! snapshot overlaid with the transaction's own buffered writes
//! (read-your-own-writes), and buffered in a per-table write set.
//!
//! `COMMIT` applies the write set atomically under optimistic
//! first-committer-wins validation:
//!
//! 1. **Admission** — take `TxnManager` write locks on every touched table
//!    in one all-or-nothing step ([`dt_txn::TxnManager::try_lock_all`]).
//!    Per-table locks mean transactions over disjoint tables commit
//!    concurrently instead of serializing on one engine-wide lock; a held
//!    lock is an in-flight committer, i.e. a conflict.
//! 2. **Row work** — build each touched table's new version against the
//!    pinned base ([`dt_storage::TableStore::prepare_change_at`]) holding
//!    no lock at all: COW delete rewrites and partition minting happen
//!    while readers and other committers proceed.
//! 3. **Validation + install** — under the engine write lock, but only
//!    for an O(metadata) moment: verify no touched table's version moved
//!    past the begin frontier (else abort with a conflict — first
//!    committer wins), mint one HLC commit timestamp, and install every
//!    table's prepared version at that single timestamp. Readers capture
//!    snapshots under the engine read lock, so no reader can ever observe
//!    a half-applied transaction.
//!
//! `ROLLBACK` (or dropping the handle) discards the write set and aborts
//! the transaction; locks are only ever held inside `commit`, so an
//! abandoned handle can never leak a `TxnManager` lock.

use std::collections::BTreeMap;
use std::sync::Arc;

use dt_common::{DtError, DtResult, EntityId, Row, Schema, Timestamp, TxnId, Value};
use dt_exec::TableProvider;
use dt_plan::{BindOutput, LogicalPlan};
use dt_sql::ast;
use dt_storage::{PreparedChange, TableStore};
use dt_txn::Txn;

use crate::database::{ExecResult, QueryResult};
use crate::dml::{self, DmlChange, DmlSource};
use crate::engine::Engine;
use crate::snapshot::ReadSnapshot;

/// True when an error is a serialization conflict: another transaction
/// committed (or is committing) a touched table first. Auto-commit
/// statements retry on these; explicit transactions surface them so the
/// application can re-run its logic against fresh data.
pub fn is_serialization_conflict(e: &DtError) -> bool {
    matches!(e, DtError::Txn(m) if m.contains("conflict") || m.contains("is locked by"))
}

/// The buffered effect of a transaction on one table.
#[derive(Debug, Default)]
struct TableWrites {
    inserts: Vec<Row>,
    deletes: Vec<Row>,
}

impl TableWrites {
    /// Fold one statement's change in. A delete first cancels against the
    /// transaction's own pending inserts (deleting a row you inserted in
    /// this transaction leaves no trace), so the surviving delete list
    /// always refers to rows of the pinned base version.
    fn fold(&mut self, inserts: Vec<Row>, deletes: Vec<Row>) {
        for d in deletes {
            if let Some(pos) = self.inserts.iter().position(|r| *r == d) {
                self.inserts.remove(pos);
            } else {
                self.deletes.push(d);
            }
        }
        self.inserts.extend(inserts);
    }

    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// A [`dt_exec::TableProvider`] view of "the pinned snapshot plus this
/// transaction's buffered writes": base rows minus buffered deletes plus
/// buffered inserts. This is what gives DML statements inside a
/// transaction read-your-own-writes without publishing anything.
struct OverlayProvider<'a> {
    snap: &'a ReadSnapshot,
    writes: &'a BTreeMap<EntityId, TableWrites>,
}

impl TableProvider for OverlayProvider<'_> {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        let mut rows = self.snap.scan(entity)?;
        if let Some(w) = self.writes.get(&entity) {
            for d in &w.deletes {
                let pos = rows.iter().position(|r| r == d).ok_or_else(|| {
                    DtError::internal(
                        "buffered delete not present in the pinned base version",
                    )
                })?;
                rows.remove(pos);
            }
            rows.extend(w.inserts.iter().cloned());
        }
        Ok(rows)
    }
}

/// The [`DmlSource`] of a transaction: names resolve in the frozen
/// catalog, queries bind against the snapshot, and scans see the overlay.
struct TxnDmlSource<'a> {
    snap: &'a ReadSnapshot,
    writes: &'a BTreeMap<EntityId, TableWrites>,
}

impl TxnDmlSource<'_> {
    fn overlay(&self) -> OverlayProvider<'_> {
        OverlayProvider {
            snap: self.snap,
            writes: self.writes,
        }
    }
}

impl DmlSource for TxnDmlSource<'_> {
    fn target_table(&self, name: &str) -> DtResult<(EntityId, Schema)> {
        let e = self.snap.catalog().resolve(name)?;
        match &e.kind {
            dt_catalog::EntityKind::Table { schema } => Ok((e.id, schema.clone())),
            _ => Err(DtError::Unsupported(format!(
                "DML targets must be base tables; '{name}' is a {}",
                e.kind.label()
            ))),
        }
    }

    fn entity_name(&self, id: EntityId) -> DtResult<String> {
        Ok(self.snap.catalog().get(id)?.name.clone())
    }

    fn bind_query(&self, q: &ast::Query) -> DtResult<BindOutput> {
        self.snap.bind_query(q)
    }

    fn execute_plan(&self, plan: &LogicalPlan) -> DtResult<Vec<Row>> {
        dt_exec::execute(plan, &self.overlay())
    }

    fn scan_base(&self, id: EntityId) -> DtResult<Vec<Row>> {
        self.overlay().scan(id)
    }
}

/// An explicit transaction over one engine: repeatable snapshot reads and
/// buffered DML, committed atomically with first-committer-wins
/// validation. Obtain one from [`crate::Session::begin`] /
/// [`crate::Session::begin_at`] or with SQL `BEGIN` through
/// [`crate::Session::execute`]. Dropping the handle without committing
/// rolls the transaction back.
pub struct Transaction {
    engine: Engine,
    snapshot: ReadSnapshot,
    txn: Txn,
    writes: BTreeMap<EntityId, TableWrites>,
    done: bool,
}

impl Transaction {
    /// Open a transaction: pin a snapshot (latest state, or the state at
    /// `at` for time-travel transactions) and register the transaction
    /// with the manager at the snapshot's read timestamp.
    pub(crate) fn start(engine: Engine, at: Option<Timestamp>) -> Transaction {
        let (snapshot, txn) = {
            let st = engine.state.read();
            let snap = st.capture_snapshot(at);
            let txn = st.txn.begin_at(snap.read_ts());
            (snap, txn)
        };
        Transaction {
            engine,
            snapshot,
            txn,
            writes: BTreeMap::new(),
            done: false,
        }
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.txn.id
    }

    /// The snapshot timestamp every read in this transaction resolves at.
    pub fn read_ts(&self) -> Timestamp {
        self.snapshot.read_ts()
    }

    /// The pinned snapshot (its frontier records the exact version of
    /// every table the transaction sees — and validates against at
    /// commit).
    pub fn snapshot(&self) -> &ReadSnapshot {
        &self.snapshot
    }

    /// Number of buffered row changes (inserts + deletes) awaiting commit.
    pub fn pending_changes(&self) -> usize {
        self.writes
            .values()
            .map(|w| w.inserts.len() + w.deletes.len())
            .sum()
    }

    /// The tables this transaction has buffered writes against.
    pub fn touched_tables(&self) -> Vec<EntityId> {
        self.writes.keys().copied().collect()
    }

    /// Execute one SQL statement inside the transaction: reads come from
    /// the pinned snapshot (overlaid with this transaction's own writes),
    /// DML is buffered until [`Transaction::commit`]. DDL, refreshes, and
    /// nested transaction control are rejected.
    pub fn execute(&mut self, sql: &str) -> DtResult<ExecResult> {
        let stmt = dt_sql::parse(sql)?;
        let placeholders = stmt.placeholder_count();
        if placeholders > 0 {
            return Err(DtError::Binding(format!(
                "statement has {placeholders} `?` placeholder(s); prepare it \
                 with Session::prepare and bind values at execute time"
            )));
        }
        self.execute_parsed(stmt, &[])
    }

    /// Run a query against the transaction's pinned snapshot (plus its own
    /// buffered writes) and return rows + schema.
    pub fn query(&self, sql: &str) -> DtResult<QueryResult> {
        let stmt = dt_sql::parse(sql)?;
        crate::database::reject_placeholders(&stmt)?;
        let ast::Statement::Query(q) = stmt else {
            return Err(DtError::Unsupported("not a query".into()));
        };
        self.run_query(&q, &[])
    }

    /// Run a query and return sorted rows (deterministic comparisons).
    pub fn query_sorted(&self, sql: &str) -> DtResult<Vec<Row>> {
        Ok(self.query(sql)?.into_sorted_rows())
    }

    /// Execute an already-parsed statement with `params` bound to its `?`
    /// placeholders. The session routes statements here while a SQL-level
    /// transaction is open; prepared statements join through the same
    /// door.
    pub(crate) fn execute_parsed(
        &mut self,
        stmt: ast::Statement,
        params: &[Value],
    ) -> DtResult<ExecResult> {
        match stmt {
            ast::Statement::Query(q) => Ok(ExecResult::Rows(self.run_query(&q, params)?)),
            ast::Statement::Explain(_) | ast::Statement::ShowDynamicTables => {
                self.snapshot.read_statement(&stmt, params)
            }
            ast::Statement::Insert {
                table,
                values,
                query,
            } => {
                let change =
                    dml::plan_insert(&self.dml_source(), &table, values, query, params)?;
                Ok(self.buffer(change))
            }
            ast::Statement::Delete { table, predicate } => {
                let change = dml::plan_delete(&self.dml_source(), &table, predicate, params)?;
                Ok(self.buffer(change))
            }
            ast::Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                let change = dml::plan_update(
                    &self.dml_source(),
                    &table,
                    assignments,
                    predicate,
                    params,
                )?;
                Ok(self.buffer(change))
            }
            ast::Statement::Begin => Err(DtError::Txn(
                "already in a transaction; nested BEGIN is not supported".into(),
            )),
            ast::Statement::Commit | ast::Statement::Rollback => Err(DtError::Unsupported(
                "on a Transaction handle, use Transaction::commit() / \
                 Transaction::rollback() (SQL COMMIT/ROLLBACK drive the \
                 session-scoped transaction opened with BEGIN)"
                    .into(),
            )),
            other => Err(DtError::Unsupported(format!(
                "{} is not allowed inside a transaction; commit or roll back \
                 first",
                statement_label(&other)
            ))),
        }
    }

    fn dml_source(&self) -> TxnDmlSource<'_> {
        TxnDmlSource {
            snap: &self.snapshot,
            writes: &self.writes,
        }
    }

    fn run_query(&self, q: &ast::Query, params: &[Value]) -> DtResult<QueryResult> {
        let out = self.snapshot.bind_query(q)?;
        let plan = if params.is_empty() && out.plan.max_parameter().is_none() {
            out.plan
        } else {
            out.plan.bind_params(params)?
        };
        let provider = OverlayProvider {
            snap: &self.snapshot,
            writes: &self.writes,
        };
        let rows = dt_exec::execute(&plan, &provider)?;
        Ok(QueryResult::new(plan.schema(), rows))
    }

    fn buffer(&mut self, change: DmlChange) -> ExecResult {
        let slot = self.writes.entry(change.entity).or_default();
        slot.fold(change.inserts, change.deletes);
        if slot.is_empty() {
            // A statement whose effect nets to zero against this
            // transaction's own pending writes leaves no write-set entry
            // (and therefore takes no lock and validates nothing at
            // commit).
            self.writes.remove(&change.entity);
        }
        ExecResult::Count(change.count)
    }

    /// Commit: apply the whole write set atomically at one HLC commit
    /// timestamp, under optimistic first-committer-wins validation.
    /// Returns the commit timestamp. On a write-write conflict the
    /// transaction aborts, the write set is discarded, and the error
    /// satisfies [`is_serialization_conflict`].
    pub fn commit(mut self) -> DtResult<Timestamp> {
        self.done = true;
        let touched: Vec<EntityId> = self.writes.keys().copied().collect();
        if touched.is_empty() {
            // Read-only transaction: nothing to validate or install.
            return self.engine.state.read().txn.commit(&self.txn);
        }

        // Phase 1 — admission: per-table write locks, all or nothing. A
        // held lock is another transaction mid-commit on a shared table:
        // fail fast instead of doing row work that cannot win.
        {
            let st = self.engine.state.read();
            if let Err(e) = st.txn.try_lock_all(&self.txn, touched.iter().copied()) {
                let _ = st.txn.abort(&self.txn);
                return Err(e);
            }
        }

        // Phase 2 — row work, holding no lock at all: build each table's
        // new version against the pinned base. Readers and committers of
        // other tables proceed concurrently. The write set is moved, not
        // cloned — commit owns `self`, and on any failure the set is
        // discarded anyway.
        let writes = std::mem::take(&mut self.writes);
        let mut prepared: Vec<(Arc<TableStore>, PreparedChange)> =
            Vec::with_capacity(touched.len());
        for (id, w) in writes {
            let prep = (|| {
                let store = self.snapshot.table_store(id).ok_or_else(|| {
                    DtError::Storage(format!("no storage for {id} in the snapshot"))
                })?;
                let base = self.snapshot.version_of(id).ok_or_else(|| {
                    DtError::Storage(format!(
                        "no version of {id} at the transaction's snapshot"
                    ))
                })?;
                let p = store.prepare_change_at(base, w.inserts, w.deletes)?;
                Ok::<_, DtError>((store, p))
            })();
            match prep {
                Ok(sp) => prepared.push(sp),
                Err(e) => {
                    let _ = self.engine.state.read().txn.abort(&self.txn);
                    return Err(e);
                }
            }
        }

        // Phase 3 — validate + install under the engine write lock, but
        // only for an O(metadata) moment: no reader can capture a snapshot
        // between two installs, so a multi-table commit is never observed
        // half-applied.
        let st = self.engine.state.write();
        for &id in &touched {
            // The table must still exist: a concurrent DROP leaves the
            // store (and its version chain) behind for UNDROP, so the
            // version check alone would "commit" writes into an orphaned
            // store and silently lose them.
            let live = st
                .catalog()
                .get(id)
                .map(|e| e.dropped_at.is_none())
                .unwrap_or(false);
            if !live {
                let _ = st.txn.abort(&self.txn);
                return Err(DtError::Txn(format!(
                    "write conflict: touched table {id} was dropped after \
                     this transaction began"
                )));
            }
        }
        for (store, p) in &prepared {
            let latest = store.latest_version();
            if latest != p.base() {
                let _ = st.txn.abort(&self.txn);
                return Err(DtError::Txn(format!(
                    "write-write conflict: a touched table moved from version \
                     {} to {latest} after this transaction began (first \
                     committer wins)",
                    p.base()
                )));
            }
        }
        let commit_ts = st.txn.hlc().tick();
        for (store, p) in prepared {
            if let Err(e) = store.install_prepared(p, commit_ts, self.txn.id) {
                let _ = st.txn.abort(&self.txn);
                return Err(e);
            }
        }
        st.txn.commit_at(&self.txn, commit_ts)?;
        Ok(commit_ts)
    }

    /// Roll back: discard every buffered write and abort the transaction.
    pub fn rollback(mut self) -> DtResult<()> {
        self.done = true;
        self.writes.clear();
        self.engine.state.read().txn.abort(&self.txn)
    }
}

impl Drop for Transaction {
    /// A dropped transaction rolls back: the write set dies with the
    /// handle and the manager marks the transaction aborted. No lock can
    /// leak — locks are only held inside `commit`, which always releases
    /// them on both outcomes.
    fn drop(&mut self) {
        if !self.done {
            let _ = self.engine.state.read().txn.abort(&self.txn);
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.txn.id)
            .field("read_ts", &self.snapshot.read_ts())
            .field("touched_tables", &self.writes.len())
            .field("pending_changes", &self.pending_changes())
            .finish()
    }
}

fn statement_label(stmt: &ast::Statement) -> &'static str {
    match stmt {
        ast::Statement::CreateTable { .. } => "CREATE TABLE",
        ast::Statement::CreateView { .. } => "CREATE VIEW",
        ast::Statement::CreateDynamicTable(_) => "CREATE DYNAMIC TABLE",
        ast::Statement::Drop { .. } => "DROP",
        ast::Statement::Undrop { .. } => "UNDROP",
        ast::Statement::Clone { .. } => "CLONE",
        ast::Statement::AlterDynamicTable { .. } => "ALTER DYNAMIC TABLE",
        _ => "this statement",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DbConfig;

    #[test]
    fn transaction_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Transaction>();
    }

    #[test]
    fn conflict_classifier_matches_lock_and_validation_errors() {
        assert!(is_serialization_conflict(&DtError::Txn(
            "entity e3 is locked by t7".into()
        )));
        assert!(is_serialization_conflict(&DtError::Txn(
            "write-write conflict: ...".into()
        )));
        assert!(!is_serialization_conflict(&DtError::Txn(
            "transaction t9 is not active".into()
        )));
        assert!(!is_serialization_conflict(&DtError::Unsupported("x".into())));
    }

    #[test]
    fn net_zero_statement_leaves_no_write_set_entry() {
        let engine = Engine::new(DbConfig::default());
        let session = engine.session();
        session.execute("CREATE TABLE t (k INT)").unwrap();
        let mut txn = session.begin();
        txn.execute("INSERT INTO t VALUES (1)").unwrap();
        txn.execute("DELETE FROM t WHERE k = 1").unwrap();
        assert_eq!(txn.pending_changes(), 0);
        assert!(txn.touched_tables().is_empty());
        txn.commit().unwrap();
    }
}
