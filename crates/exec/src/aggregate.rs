//! Grouped aggregation.

use std::collections::{BTreeMap, HashSet};

use dt_common::{Batch, DtError, DtResult, Row, Value};
use dt_plan::{AggExpr, AggFunc, ScalarExpr};

/// One aggregate's running state.
enum AccState {
    Count(i64),
    Sum { sum: Value, any: bool },
    MinMax { best: Option<Value>, is_min: bool },
    Avg { sum: f64, n: i64 },
    Distinct(HashSet<Value>),
}

/// A running accumulator for one aggregate expression.
pub struct Accumulator {
    func: AggFunc,
    state: AccState,
}

impl Accumulator {
    /// Fresh accumulator for an aggregate.
    pub fn new(a: &AggExpr) -> Accumulator {
        let state = if a.distinct {
            AccState::Distinct(HashSet::new())
        } else {
            match a.func {
                AggFunc::Count | AggFunc::CountIf => AccState::Count(0),
                AggFunc::Sum => AccState::Sum {
                    sum: Value::Int(0),
                    any: false,
                },
                AggFunc::Min => AccState::MinMax {
                    best: None,
                    is_min: true,
                },
                AggFunc::Max => AccState::MinMax {
                    best: None,
                    is_min: false,
                },
                AggFunc::Avg => AccState::Avg { sum: 0.0, n: 0 },
            }
        };
        Accumulator {
            func: a.func,
            state,
        }
    }

    /// Fold one input value (already the evaluated argument; `None` means
    /// the aggregate has no argument, i.e. `count(*)`).
    pub fn update(&mut self, v: Option<&Value>) -> DtResult<()> {
        match &mut self.state {
            AccState::Count(n) => match self.func {
                AggFunc::Count => {
                    // count(*) counts rows; count(x) counts non-null x.
                    match v {
                        None => *n += 1,
                        Some(x) if !x.is_null() => *n += 1,
                        _ => {}
                    }
                }
                AggFunc::CountIf => {
                    if v.map(|x| x.is_true()).unwrap_or(false) {
                        *n += 1;
                    }
                }
                _ => return Err(DtError::internal("count state for non-count func")),
            },
            AccState::Sum { sum, any } => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *sum = if *any { sum.add(x)? } else { x.clone() };
                        *any = true;
                    }
                }
            }
            AccState::MinMax { best, is_min } => {
                if let Some(x) = v {
                    if !x.is_null() {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                if *is_min {
                                    x < b
                                } else {
                                    x > b
                                }
                            }
                        };
                        if better {
                            *best = Some(x.clone());
                        }
                    }
                }
            }
            AccState::Avg { sum, n } => {
                if let Some(x) = v {
                    match x {
                        Value::Null => {}
                        Value::Int(i) => {
                            *sum += *i as f64;
                            *n += 1;
                        }
                        Value::Float(f) => {
                            *sum += f;
                            *n += 1;
                        }
                        other => {
                            return Err(DtError::Type(format!("avg over {other}")));
                        }
                    }
                }
            }
            AccState::Distinct(set) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        set.insert(x.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finish(self) -> DtResult<Value> {
        Ok(match self.state {
            AccState::Count(n) => Value::Int(n),
            AccState::Sum { sum, any } => {
                if any {
                    sum
                } else {
                    Value::Null
                }
            }
            AccState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AccState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AccState::Distinct(set) => match self.func {
                AggFunc::Count => Value::Int(set.len() as i64),
                AggFunc::Sum => {
                    let mut acc = Value::Int(0);
                    let mut any = false;
                    for v in set {
                        acc = if any { acc.add(&v)? } else { v };
                        any = true;
                    }
                    if any {
                        acc
                    } else {
                        Value::Null
                    }
                }
                AggFunc::Avg => {
                    let mut sum = 0.0;
                    let mut n = 0i64;
                    for v in set {
                        match v {
                            Value::Int(i) => {
                                sum += i as f64;
                                n += 1;
                            }
                            Value::Float(f) => {
                                sum += f;
                                n += 1;
                            }
                            _ => return Err(DtError::Type("avg distinct non-numeric".into())),
                        }
                    }
                    if n == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum / n as f64)
                    }
                }
                AggFunc::Min => set.into_iter().min().unwrap_or(Value::Null),
                AggFunc::Max => set.into_iter().max().unwrap_or(Value::Null),
                AggFunc::CountIf => {
                    return Err(DtError::Unsupported("count_if(distinct ...)".into()))
                }
            },
        })
    }
}

/// Execute a grouped aggregation. Output rows: group keys then aggregate
/// values, one row per group. With no group keys this is a scalar
/// aggregation producing exactly one row (even over empty input).
pub fn execute_aggregate(
    rows: &[Row],
    group_exprs: &[ScalarExpr],
    aggregates: &[AggExpr],
) -> DtResult<Vec<Row>> {
    // BTreeMap keyed on the group-key tuple gives deterministic output order.
    let mut groups: BTreeMap<Vec<Value>, Vec<Accumulator>> = BTreeMap::new();
    for r in rows {
        fold_row(&mut groups, r, group_exprs, aggregates)?;
    }
    finish_groups(groups, group_exprs, aggregates)
}

/// The batch-consuming form of [`execute_aggregate`]: accumulators fold
/// directly off the selected rows of each batch, without materializing an
/// intermediate row vector. Output is identical (group order is the key
/// tuple's total order either way).
pub fn execute_aggregate_batches(
    batches: &[Batch],
    group_exprs: &[ScalarExpr],
    aggregates: &[AggExpr],
) -> DtResult<Vec<Row>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<Accumulator>> = BTreeMap::new();
    for b in batches {
        for i in 0..b.len() {
            if b.is_selected(i) {
                fold_row(&mut groups, &b.row(i), group_exprs, aggregates)?;
            }
        }
    }
    finish_groups(groups, group_exprs, aggregates)
}

fn fold_row(
    groups: &mut BTreeMap<Vec<Value>, Vec<Accumulator>>,
    r: &Row,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggExpr],
) -> DtResult<()> {
    let mut key = Vec::with_capacity(group_exprs.len());
    for e in group_exprs {
        key.push(e.eval(r)?);
    }
    let accs = groups
        .entry(key)
        .or_insert_with(|| aggregates.iter().map(Accumulator::new).collect());
    for (acc, a) in accs.iter_mut().zip(aggregates) {
        let arg = match &a.arg {
            Some(e) => Some(e.eval(r)?),
            None => None,
        };
        acc.update(arg.as_ref())?;
    }
    Ok(())
}

fn finish_groups(
    groups: BTreeMap<Vec<Value>, Vec<Accumulator>>,
    group_exprs: &[ScalarExpr],
    aggregates: &[AggExpr],
) -> DtResult<Vec<Row>> {
    if groups.is_empty() && group_exprs.is_empty() {
        // Scalar aggregation over the empty bag yields one row of identities.
        let accs: Vec<Accumulator> = aggregates.iter().map(Accumulator::new).collect();
        let mut vals = Vec::with_capacity(aggregates.len());
        for acc in accs {
            vals.push(acc.finish()?);
        }
        return Ok(vec![Row::new(vals)]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut vals = key;
        for acc in accs {
            vals.push(acc.finish()?);
        }
        out.push(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;

    fn agg(func: AggFunc, arg: Option<ScalarExpr>, distinct: bool) -> AggExpr {
        AggExpr {
            func,
            arg,
            distinct,
            name: "a".into(),
        }
    }

    #[test]
    fn sum_ignores_nulls_and_is_null_when_empty() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Null]),
            row!(1i64, 5i64),
        ];
        let out = execute_aggregate(
            &rows,
            &[ScalarExpr::col(0)],
            &[agg(AggFunc::Sum, Some(ScalarExpr::col(1)), false)],
        )
        .unwrap();
        assert_eq!(out, vec![row!(1i64, 5i64)]);

        let all_null = vec![Row::new(vec![Value::Int(1), Value::Null])];
        let out = execute_aggregate(
            &all_null,
            &[ScalarExpr::col(0)],
            &[agg(AggFunc::Sum, Some(ScalarExpr::col(1)), false)],
        )
        .unwrap();
        assert_eq!(out[0].get(1), &Value::Null);
    }

    #[test]
    fn scalar_aggregate_over_empty_input() {
        let out = execute_aggregate(
            &[],
            &[],
            &[
                agg(AggFunc::Count, None, false),
                agg(AggFunc::Sum, Some(ScalarExpr::col(0)), false),
            ],
        )
        .unwrap();
        assert_eq!(out, vec![Row::new(vec![Value::Int(0), Value::Null])]);
    }

    #[test]
    fn count_star_vs_count_column() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Null]),
            row!(1i64, 2i64),
        ];
        let out = execute_aggregate(
            &rows,
            &[ScalarExpr::col(0)],
            &[
                agg(AggFunc::Count, None, false),
                agg(AggFunc::Count, Some(ScalarExpr::col(1)), false),
            ],
        )
        .unwrap();
        assert_eq!(out, vec![row!(1i64, 2i64, 1i64)]);
    }

    #[test]
    fn min_max_distinct() {
        let rows = vec![row!(1i64, 5i64), row!(1i64, 5i64), row!(1i64, 2i64)];
        let out = execute_aggregate(
            &rows,
            &[ScalarExpr::col(0)],
            &[
                agg(AggFunc::Min, Some(ScalarExpr::col(1)), false),
                agg(AggFunc::Max, Some(ScalarExpr::col(1)), false),
                agg(AggFunc::Sum, Some(ScalarExpr::col(1)), true),
            ],
        )
        .unwrap();
        assert_eq!(out, vec![row!(1i64, 2i64, 5i64, 7i64)]);
    }
}
