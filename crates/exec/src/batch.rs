//! The batch-at-a-time pipeline: operators consume and produce columnar
//! [`Batch`]es; rows are materialized only at operator boundaries that are
//! inherently row-shaped (joins, window functions, sorting) and at the top
//! of the plan, so `ExecResult` and the SQL surface are unchanged.
//!
//! Filters evaluate vectorized wherever the predicate (or a prefix of its
//! conjunction) is provably error-free — comparisons of columns and
//! literals composed with `AND`/`OR`/`NOT`/`IS NULL`/`IN (list)` — using Kleene
//! true/false mask pairs so three-valued logic matches the row interpreter
//! bit for bit. Anything else (arithmetic that can divide by zero, CASE,
//! function calls) falls back to row-at-a-time evaluation over the still
//! selected rows only, which preserves the row path's error behavior
//! exactly: a conjunct is only ever skipped for a row when an earlier
//! conjunct already evaluated to definite FALSE, the same rows the row
//! interpreter's `AND` short-circuit would skip.

use std::sync::Arc;

use dt_common::{Batch, ColumnPredicate, ColumnVec, CmpOp, DtResult, Row, Value};
use dt_plan::expr::BinOp;
use dt_plan::{LogicalPlan, ScalarExpr};

use crate::aggregate::execute_aggregate_batches;
use crate::executor::{project_rows, sort_rows, TableProvider};
use crate::join::execute_join_batches;
use crate::window::execute_window;

/// Execute a plan as a batch pipeline, returning its result batches (batch
/// order is the result order; within a batch, selected rows in physical
/// order).
pub fn execute_batches(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
) -> DtResult<Vec<Batch>> {
    match plan {
        LogicalPlan::TableScan {
            entity, pushdown, ..
        } => provider.scan_batches(*entity, pushdown.as_ref().filter(|p| !p.is_empty())),
        LogicalPlan::SingleRow => Ok(vec![Batch::zero_width(1)]),
        LogicalPlan::Filter { input, predicate } => {
            let mut batches = execute_batches(input, provider)?;
            for b in &mut batches {
                filter_batch(b, predicate)?;
            }
            Ok(batches)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let batches = execute_batches(input, provider)?;
            batches.iter().map(|b| project_batch(b, exprs)).collect()
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            ..
        } => {
            let l = execute_batches(left, provider)?;
            let r = execute_batches(right, provider)?;
            let rows = execute_join_batches(
                &l,
                &r,
                left.schema().len(),
                right.schema().len(),
                *join_type,
                on,
            )?;
            Ok(rows_to_batches(rows))
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(execute_batches(i, provider)?);
            }
            Ok(out)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            ..
        } => {
            let batches = execute_batches(input, provider)?;
            let rows = execute_aggregate_batches(&batches, group_exprs, aggregates)?;
            Ok(rows_to_batches(rows))
        }
        LogicalPlan::Distinct { input } => {
            let batches = execute_batches(input, provider)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for b in &batches {
                for r in b.to_rows() {
                    if seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
            }
            Ok(rows_to_batches(out))
        }
        LogicalPlan::Window { input, exprs, .. } => {
            let rows = flatten(execute_batches(input, provider)?);
            Ok(rows_to_batches(execute_window(&rows, exprs)?))
        }
        LogicalPlan::Sort { input, keys } => {
            let rows = flatten(execute_batches(input, provider)?);
            Ok(rows_to_batches(sort_rows(rows, keys)?))
        }
        LogicalPlan::Limit { input, n } => {
            let batches = execute_batches(input, provider)?;
            let mut remaining = *n as usize;
            let mut out = Vec::new();
            for mut b in batches {
                if remaining == 0 {
                    break;
                }
                let live = b.live_count();
                if live <= remaining {
                    remaining -= live;
                    out.push(b);
                } else {
                    // Deselect everything past the first `remaining` live rows.
                    let mut keep = vec![false; b.len()];
                    let mut taken = 0usize;
                    for (i, k) in keep.iter_mut().enumerate() {
                        if taken == remaining {
                            break;
                        }
                        if b.is_selected(i) {
                            *k = true;
                            taken += 1;
                        }
                    }
                    b.set_selection(Some(keep));
                    out.push(b);
                    remaining = 0;
                }
            }
            Ok(out)
        }
    }
}

/// Materialize all selected rows of all batches, in order.
pub fn flatten(batches: Vec<Batch>) -> Vec<Row> {
    let mut out = Vec::new();
    for b in &batches {
        out.extend(b.to_rows());
    }
    out
}

fn rows_to_batches(rows: Vec<Row>) -> Vec<Batch> {
    if rows.is_empty() {
        return Vec::new();
    }
    let arity = rows[0].len();
    vec![Batch::from_rows(arity, &rows)]
}

// ---------------------------------------------------------------------------
// Filter: vectorized Kleene masks with exact row-path fallback.

/// A Kleene truth-mask pair over a batch's physical slots: `t[i]` = the
/// predicate is definitely TRUE for slot `i`, `f[i]` = definitely FALSE;
/// neither = NULL. (Both never hold.)
struct Mask {
    t: Vec<bool>,
    f: Vec<bool>,
}

impl Mask {
    fn constant(n: usize, v: Option<bool>) -> Mask {
        Mask {
            t: vec![v == Some(true); n],
            f: vec![v == Some(false); n],
        }
    }

    fn not(self) -> Mask {
        Mask {
            t: self.f,
            f: self.t,
        }
    }

    fn and(mut self, rhs: &Mask) -> Mask {
        for i in 0..self.t.len() {
            self.t[i] = self.t[i] && rhs.t[i];
            self.f[i] = self.f[i] || rhs.f[i];
        }
        self
    }

    fn or(mut self, rhs: &Mask) -> Mask {
        for i in 0..self.t.len() {
            self.t[i] = self.t[i] || rhs.t[i];
            self.f[i] = self.f[i] && rhs.f[i];
        }
        self
    }
}

/// Narrow `batch`'s selection to rows where `predicate` is true, with the
/// row interpreter's exact result *and error* semantics.
fn filter_batch(batch: &mut Batch, predicate: &ScalarExpr) -> DtResult<()> {
    let mut conjuncts = Vec::new();
    split_conjuncts(predicate, &mut conjuncts);

    // Longest prefix of conjuncts that evaluates vectorized. The split is a
    // prefix (not an arbitrary subset) so the residual is only skipped for
    // rows an earlier conjunct decided FALSE — exactly the rows the row
    // path's left-to-right AND short-circuit would skip.
    let mut prefix: Option<Mask> = None;
    let mut vectorized = 0usize;
    for c in &conjuncts {
        match vector_mask(c, batch) {
            Some(m) => {
                prefix = Some(match prefix {
                    None => m,
                    Some(p) => p.and(&m),
                });
                vectorized += 1;
            }
            None => break,
        }
    }
    let residual = rejoin_conjuncts(&conjuncts[vectorized..]);

    let mut keep = vec![false; batch.len()];
    match (prefix, residual) {
        (Some(mask), None) => {
            for (i, k) in keep.iter_mut().enumerate() {
                *k = batch.is_selected(i) && mask.t[i];
            }
        }
        (Some(mask), Some(rest)) => {
            for (i, k) in keep.iter_mut().enumerate() {
                if !batch.is_selected(i) || mask.f[i] {
                    continue;
                }
                // Rows where the prefix is TRUE or NULL both evaluate the
                // residual in the row path (NULL AND x still evaluates x),
                // so evaluate it here too — for its errors — and keep the
                // row only when the whole conjunction is true.
                let ok = rest.eval(&batch.row(i))?.is_true();
                *k = mask.t[i] && ok;
            }
        }
        (None, residual) => {
            let rest = residual.unwrap_or(ScalarExpr::Literal(Value::Bool(true)));
            for (i, k) in keep.iter_mut().enumerate() {
                if batch.is_selected(i) {
                    *k = rest.eval(&batch.row(i))?.is_true();
                }
            }
        }
    }
    batch.set_selection(Some(keep));
    Ok(())
}

fn split_conjuncts(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    if let ScalarExpr::Binary { left, op, right } = e {
        if *op == BinOp::And {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
            return;
        }
    }
    out.push(e.clone());
}

fn rejoin_conjuncts(conjuncts: &[ScalarExpr]) -> Option<ScalarExpr> {
    let mut it = conjuncts.iter().cloned();
    let first = it.next()?;
    Some(it.fold(first, |acc, c| ScalarExpr::Binary {
        left: Box::new(acc),
        op: BinOp::And,
        right: Box::new(c),
    }))
}

fn cmp_of(op: BinOp) -> Option<CmpOp> {
    Some(match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::NotEq => CmpOp::NotEq,
        BinOp::Lt => CmpOp::Lt,
        BinOp::LtEq => CmpOp::LtEq,
        BinOp::Gt => CmpOp::Gt,
        BinOp::GtEq => CmpOp::GtEq,
        _ => return None,
    })
}

/// Evaluate `e` as a vectorized Kleene mask over `batch`, or `None` when
/// `e` is outside the provably error-free grammar (comparisons over
/// in-range columns and literals, composed with AND/OR/NOT/IS NULL and
/// IN over literal lists).
fn vector_mask(e: &ScalarExpr, batch: &Batch) -> Option<Mask> {
    let n = batch.len();
    match e {
        ScalarExpr::Literal(Value::Bool(b)) => Some(Mask::constant(n, Some(*b))),
        ScalarExpr::Literal(Value::Null) => Some(Mask::constant(n, None)),
        ScalarExpr::Not(inner) => Some(vector_mask(inner, batch)?.not()),
        ScalarExpr::IsNull { expr, negated } => match &**expr {
            ScalarExpr::Column(i) if *i < batch.arity() => {
                let col = batch.column(*i);
                let t: Vec<bool> = (0..n).map(|r| col.is_null(r) != *negated).collect();
                let f = t.iter().map(|b| !b).collect();
                Some(Mask { t, f })
            }
            ScalarExpr::Literal(v) => Some(Mask::constant(n, Some(v.is_null() != *negated))),
            _ => None,
        },
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let lits: Vec<&Value> = list
                .iter()
                .map(|e| match e {
                    ScalarExpr::Literal(v) => Some(v),
                    _ => None,
                })
                .collect::<Option<_>>()?;
            let has_null = lits.iter().any(|v| v.is_null());
            match &**expr {
                ScalarExpr::Column(i) if *i < batch.arity() => {
                    Some(in_list_mask(batch.column(*i), &lits, has_null, *negated, n))
                }
                ScalarExpr::Literal(v) => {
                    let one = ColumnVec::from_values(vec![v.clone()]);
                    let m = in_list_mask(&one, &lits, has_null, *negated, 1);
                    Some(Mask::constant(
                        n,
                        match (m.t[0], m.f[0]) {
                            (true, _) => Some(true),
                            (_, true) => Some(false),
                            _ => None,
                        },
                    ))
                }
                _ => None,
            }
        }
        ScalarExpr::Binary { left, op, right } => {
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = vector_mask(left, batch)?;
                let r = vector_mask(right, batch)?;
                return Some(if *op == BinOp::And { l.and(&r) } else { l.or(&r) });
            }
            let cmp = cmp_of(*op)?;
            cmp_mask(left, cmp, right, batch)
        }
        _ => None,
    }
}

/// Mask for `col [NOT] IN (literals)` with SQL's three-valued semantics:
/// TRUE on any equal candidate, NULL when the operand is NULL or when no
/// candidate matched but one was NULL, FALSE otherwise (both flipped by
/// `negated`).
fn in_list_mask(col: &ColumnVec, lits: &[&Value], has_null: bool, negated: bool, n: usize) -> Mask {
    let mut m = Mask::constant(n, None);
    for r in 0..n {
        let v = col.get(r);
        if v.is_null() {
            continue;
        }
        let hit = lits.iter().any(|c| v.sql_eq(c) == Value::Bool(true));
        match (hit, has_null) {
            (true, _) => {
                if negated {
                    m.f[r] = true;
                } else {
                    m.t[r] = true;
                }
            }
            (false, true) => {}
            (false, false) => {
                if negated {
                    m.t[r] = true;
                } else {
                    m.f[r] = true;
                }
            }
        }
    }
    m
}

/// Mask for `left CMP right` where each side is a column or literal.
fn cmp_mask(left: &ScalarExpr, op: CmpOp, right: &ScalarExpr, batch: &Batch) -> Option<Mask> {
    let n = batch.len();
    match (left, right) {
        (ScalarExpr::Column(i), ScalarExpr::Literal(v)) if *i < batch.arity() => {
            Some(column_lit_mask(batch.column(*i), op, v, n))
        }
        (ScalarExpr::Literal(v), ScalarExpr::Column(i)) if *i < batch.arity() => {
            Some(column_lit_mask(batch.column(*i), op.flip(), v, n))
        }
        (ScalarExpr::Column(i), ScalarExpr::Column(j))
            if *i < batch.arity() && *j < batch.arity() =>
        {
            let (a, b) = (batch.column(*i), batch.column(*j));
            let mut m = Mask::constant(n, None);
            for r in 0..n {
                if let Some(o) = a.get(r).sql_cmp(&b.get(r)) {
                    if op.accepts(o) {
                        m.t[r] = true;
                    } else {
                        m.f[r] = true;
                    }
                }
            }
            Some(m)
        }
        (ScalarExpr::Literal(a), ScalarExpr::Literal(b)) => {
            Some(Mask::constant(n, a.sql_cmp(b).map(|o| op.accepts(o))))
        }
        _ => None,
    }
}

fn column_lit_mask(col: &ColumnVec, op: CmpOp, lit: &Value, n: usize) -> Mask {
    if lit.is_null() {
        // NULL literal: the comparison is NULL for every row.
        return Mask::constant(n, None);
    }
    let pred = ColumnPredicate {
        column: 0,
        op,
        literal: lit.clone(),
    };
    let mut t = vec![true; n];
    pred.and_mask(col, &mut t);
    // With a non-NULL literal the comparison is NULL exactly when the
    // column slot is NULL; everything else not-true is definite FALSE.
    let f = (0..n).map(|i| !t[i] && !col.is_null(i)).collect();
    Mask { t, f }
}

// ---------------------------------------------------------------------------
// Projection.

/// Project a batch. When every output expression is a bare column or a
/// literal the projection is a zero-copy column permutation (plus constant
/// splats); otherwise rows are materialized and evaluated.
fn project_batch(batch: &Batch, exprs: &[ScalarExpr]) -> DtResult<Batch> {
    let simple = exprs.iter().all(|e| match e {
        ScalarExpr::Column(i) => *i < batch.arity(),
        ScalarExpr::Literal(_) => true,
        _ => false,
    });
    if simple {
        let dense = batch.compact();
        let n = dense.len();
        let columns = exprs
            .iter()
            .map(|e| match e {
                ScalarExpr::Column(i) => Arc::clone(dense.column(*i)),
                ScalarExpr::Literal(v) => {
                    Arc::new(ColumnVec::from_values(vec![v.clone(); n]))
                }
                _ => unreachable!("checked simple"),
            })
            .collect();
        return Ok(Batch::new(columns, n));
    }
    let rows = project_rows(&batch.to_rows(), exprs)?;
    Ok(Batch::from_rows(exprs.len(), &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;

    fn int_batch(vals: &[Option<i64>]) -> Batch {
        let rows: Vec<Row> = vals
            .iter()
            .map(|v| Row::new(vec![v.map(Value::Int).unwrap_or(Value::Null)]))
            .collect();
        Batch::from_rows(1, &rows)
    }

    fn col_gt(i: usize, lit: i64) -> ScalarExpr {
        ScalarExpr::Binary {
            left: Box::new(ScalarExpr::col(i)),
            op: BinOp::Gt,
            right: Box::new(ScalarExpr::lit(lit)),
        }
    }

    #[test]
    fn vectorized_filter_matches_row_semantics() {
        let mut b = int_batch(&[Some(1), None, Some(5), Some(3)]);
        filter_batch(&mut b, &col_gt(0, 2)).unwrap();
        assert_eq!(b.to_rows(), vec![row!(5i64), row!(3i64)]);
    }

    #[test]
    fn kleene_or_with_null_operand() {
        // x > 2 OR NULL: true where x > 2, else NULL (not true).
        let pred = ScalarExpr::Binary {
            left: Box::new(col_gt(0, 2)),
            op: BinOp::Or,
            right: Box::new(ScalarExpr::Literal(Value::Null)),
        };
        let mut b = int_batch(&[Some(1), Some(5)]);
        filter_batch(&mut b, &pred).unwrap();
        assert_eq!(b.to_rows(), vec![row!(5i64)]);
    }

    #[test]
    fn not_of_comparison_keeps_nulls_out() {
        // NOT (x > 2): NULL rows stay NULL, so stay filtered out.
        let pred = ScalarExpr::Not(Box::new(col_gt(0, 2)));
        let mut b = int_batch(&[Some(1), None, Some(5)]);
        filter_batch(&mut b, &pred).unwrap();
        assert_eq!(b.to_rows(), vec![row!(1i64)]);
    }

    #[test]
    fn is_null_vectorizes() {
        let pred = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::col(0)),
            negated: false,
        };
        let mut b = int_batch(&[Some(1), None]);
        filter_batch(&mut b, &pred).unwrap();
        assert_eq!(b.to_rows(), vec![Row::new(vec![Value::Null])]);
    }

    #[test]
    fn in_list_vectorizes_with_three_valued_semantics() {
        let in_list = |list: Vec<ScalarExpr>, negated| ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list,
            negated,
        };
        // x IN (1, 3): plain membership; NULL operand never passes.
        let pred = in_list(vec![ScalarExpr::lit(1i64), ScalarExpr::lit(3i64)], false);
        let mut b = int_batch(&[Some(1), None, Some(2), Some(3)]);
        filter_batch(&mut b, &pred).unwrap();
        assert_eq!(b.to_rows(), vec![row!(1i64), row!(3i64)]);
        // x IN (1, NULL): a NULL candidate turns misses into NULL, so only
        // the definite hit survives.
        let pred = in_list(
            vec![ScalarExpr::lit(1i64), ScalarExpr::Literal(Value::Null)],
            false,
        );
        let mut b = int_batch(&[Some(1), Some(2), None]);
        filter_batch(&mut b, &pred).unwrap();
        assert_eq!(b.to_rows(), vec![row!(1i64)]);
        // x NOT IN (1, NULL): hits become definite FALSE, misses NULL —
        // nothing survives.
        let pred = in_list(
            vec![ScalarExpr::lit(1i64), ScalarExpr::Literal(Value::Null)],
            true,
        );
        let mut b = int_batch(&[Some(1), Some(2), None]);
        filter_batch(&mut b, &pred).unwrap();
        assert_eq!(b.to_rows(), Vec::<Row>::new());
        // x NOT IN (1, 3) without NULLs behaves as the complement.
        let pred = in_list(vec![ScalarExpr::lit(1i64), ScalarExpr::lit(3i64)], true);
        let mut b = int_batch(&[Some(1), Some(2), None, Some(3)]);
        filter_batch(&mut b, &pred).unwrap();
        assert_eq!(b.to_rows(), vec![row!(2i64)]);
        // NOT (x IN ...) mask-negation path agrees with the direct form.
        let direct = in_list(vec![ScalarExpr::lit(2i64)], true);
        let negation = ScalarExpr::Not(Box::new(in_list(vec![ScalarExpr::lit(2i64)], false)));
        let mut a = int_batch(&[Some(1), Some(2), None]);
        let mut b = int_batch(&[Some(1), Some(2), None]);
        filter_batch(&mut a, &direct).unwrap();
        filter_batch(&mut b, &negation).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn residual_errors_surface_only_for_rows_passing_the_prefix() {
        // x > 2 AND 1/(x-3) > 0: the row path short-circuits the division
        // for x=1 (prefix false) but evaluates — and errors — for x=3.
        let div = ScalarExpr::Binary {
            left: Box::new(ScalarExpr::Binary {
                left: Box::new(ScalarExpr::lit(1i64)),
                op: BinOp::Div,
                right: Box::new(ScalarExpr::Binary {
                    left: Box::new(ScalarExpr::col(0)),
                    op: BinOp::Sub,
                    right: Box::new(ScalarExpr::lit(3i64)),
                }),
            }),
            op: BinOp::Gt,
            right: Box::new(ScalarExpr::lit(0i64)),
        };
        let and = |l: ScalarExpr, r: ScalarExpr| ScalarExpr::Binary {
            left: Box::new(l),
            op: BinOp::And,
            right: Box::new(r),
        };
        // Only prefix-false rows: no error, row filtered by prefix.
        let mut ok = int_batch(&[Some(1), Some(2)]);
        filter_batch(&mut ok, &and(col_gt(0, 2), div.clone())).unwrap();
        assert!(ok.to_rows().is_empty());
        // A row passing the prefix with x=3 must error, as in the row path.
        let mut bad = int_batch(&[Some(1), Some(3)]);
        let err = filter_batch(&mut bad, &and(col_gt(0, 2), div));
        assert!(err.is_err());
    }

    #[test]
    fn zero_copy_projection_shares_columns() {
        let b = int_batch(&[Some(1), Some(2)]);
        let p = project_batch(&b, &[ScalarExpr::col(0), ScalarExpr::lit(7i64)]).unwrap();
        assert!(Arc::ptr_eq(p.column(0), b.column(0)));
        assert_eq!(p.to_rows(), vec![row!(1i64, 7i64), row!(2i64, 7i64)]);
    }

    #[test]
    fn limit_truncates_within_a_batch() {
        use dt_common::EntityId;
        use std::sync::Arc as StdArc;
        let mut p = crate::executor::MapProvider::new();
        p.insert(EntityId(1), vec![row!(1i64), row!(2i64), row!(3i64)]);
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::TableScan {
                entity: EntityId(1),
                name: "t".into(),
                schema: StdArc::new(dt_common::Schema::new(vec![dt_common::Column::new(
                    "x",
                    dt_common::DataType::Int,
                )])),
                pushdown: None,
            }),
            n: 2,
        };
        let out = flatten(execute_batches(&plan, &p).unwrap());
        assert_eq!(out, vec![row!(1i64), row!(2i64)]);
    }
}
