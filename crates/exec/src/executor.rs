//! The interpreter.

use std::collections::HashMap;

use dt_common::{Batch, DtError, DtResult, EntityId, PredicateSet, Row};
use dt_plan::{LogicalPlan, ScalarExpr};

use crate::aggregate::execute_aggregate;
use crate::join::execute_join;
use crate::window::execute_window;

/// Supplies the rows of stored relations at the snapshot being queried.
///
/// The executor never sees engine state: the engine's read path hands it a
/// pinned snapshot handle (per-table version + shared storage), refreshes
/// hand it a version-resolving view, and tests hand it an in-memory map.
pub trait TableProvider {
    /// All rows of `entity` at this provider's snapshot.
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>>;

    /// The same relation as columnar batches, with `filter` (a pushed-down
    /// conjunction) already applied. Providers with columnar storage
    /// override this to return partition slices zero-copy and to skip
    /// partitions whose zone maps prove no row can match; the default
    /// shreds `scan` and filters row-equivalently, so every provider is
    /// batch-capable.
    fn scan_batches(
        &self,
        entity: EntityId,
        filter: Option<&PredicateSet>,
    ) -> DtResult<Vec<Batch>> {
        let rows = self.scan(entity)?;
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut batch = Batch::from_rows(rows[0].len(), &rows);
        if let Some(f) = filter {
            f.apply(&mut batch);
        }
        Ok(vec![batch])
    }
}

/// References to providers are providers (lets callers pass `&snapshot`
/// without re-wrapping). Forwards `scan_batches` explicitly so provider
/// overrides survive the indirection.
impl<P: TableProvider + ?Sized> TableProvider for &P {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        (**self).scan(entity)
    }

    fn scan_batches(
        &self,
        entity: EntityId,
        filter: Option<&PredicateSet>,
    ) -> DtResult<Vec<Batch>> {
        (**self).scan_batches(entity, filter)
    }
}

/// Shared snapshot handles are providers: an `Arc`'d snapshot can be
/// cloned across threads and scanned from each without re-capturing.
impl<P: TableProvider + ?Sized> TableProvider for std::sync::Arc<P> {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        (**self).scan(entity)
    }

    fn scan_batches(
        &self,
        entity: EntityId,
        filter: Option<&PredicateSet>,
    ) -> DtResult<Vec<Batch>> {
        (**self).scan_batches(entity, filter)
    }
}

/// A provider backed by an in-memory map (tests and deltas).
#[derive(Debug, Clone, Default)]
pub struct MapProvider {
    tables: HashMap<EntityId, Vec<Row>>,
}

impl MapProvider {
    /// Empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register rows for an entity.
    pub fn insert(&mut self, entity: EntityId, rows: Vec<Row>) {
        self.tables.insert(entity, rows);
    }
}

impl TableProvider for MapProvider {
    fn scan(&self, entity: EntityId) -> DtResult<Vec<Row>> {
        self.tables
            .get(&entity)
            .cloned()
            .ok_or_else(|| DtError::Storage(format!("no rows registered for {entity}")))
    }
}

/// Execute a plan, returning its result bag (row order unspecified).
///
/// This is the batch pipeline: operators run batch-at-a-time over columnar
/// [`Batch`]es (vectorized filters, zero-copy projections, zone-map
/// pruning at the scan) and rows are materialized once at the top, so the
/// result is row-shaped exactly as before.
pub fn execute(plan: &LogicalPlan, provider: &dyn TableProvider) -> DtResult<Vec<Row>> {
    Ok(crate::batch::flatten(crate::batch::execute_batches(
        plan, provider,
    )?))
}

/// Execute a plan with the legacy row-at-a-time interpreter.
///
/// Kept as the differential baseline for the batch pipeline: both must
/// produce identical rows in identical order for every plan. Pushed-down
/// scan predicates are honored row-at-a-time so the two paths accept the
/// same (optimized) plans.
pub fn execute_rows(plan: &LogicalPlan, provider: &dyn TableProvider) -> DtResult<Vec<Row>> {
    match plan {
        LogicalPlan::TableScan {
            entity, pushdown, ..
        } => {
            let mut rows = provider.scan(*entity)?;
            if let Some(ps) = pushdown {
                if !ps.is_empty() {
                    rows.retain(|r| ps.matches_row(r));
                }
            }
            Ok(rows)
        }
        LogicalPlan::SingleRow => Ok(vec![Row::empty()]),
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute_rows(input, provider)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                if predicate.eval(&r)?.is_true() {
                    out.push(r);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = execute_rows(input, provider)?;
            project_rows(&rows, exprs)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            ..
        } => {
            let l = execute_rows(left, provider)?;
            let r = execute_rows(right, provider)?;
            execute_join(
                &l,
                &r,
                left.schema().len(),
                right.schema().len(),
                *join_type,
                on,
            )
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(execute_rows(i, provider)?);
            }
            Ok(out)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            ..
        } => {
            let rows = execute_rows(input, provider)?;
            execute_aggregate(&rows, group_exprs, aggregates)
        }
        LogicalPlan::Distinct { input } => {
            let rows = execute_rows(input, provider)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for r in rows {
                if seen.insert(r.clone()) {
                    out.push(r);
                }
            }
            Ok(out)
        }
        LogicalPlan::Window { input, exprs, .. } => {
            let rows = execute_rows(input, provider)?;
            execute_window(&rows, exprs)
        }
        LogicalPlan::Sort { input, keys } => {
            let rows = execute_rows(input, provider)?;
            sort_rows(rows, keys)
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = execute_rows(input, provider)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
    }
}

/// Evaluate a projection list over rows.
pub fn project_rows(rows: &[Row], exprs: &[ScalarExpr]) -> DtResult<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let mut vals = Vec::with_capacity(exprs.len());
        for e in exprs {
            vals.push(e.eval(r)?);
        }
        out.push(Row::new(vals));
    }
    Ok(out)
}

pub(crate) fn sort_rows(mut rows: Vec<Row>, keys: &[(ScalarExpr, bool)]) -> DtResult<Vec<Row>> {
    // Precompute key tuples to avoid re-evaluating during comparison and to
    // surface evaluation errors eagerly.
    let mut keyed: Vec<(Vec<dt_common::Value>, Row)> = Vec::with_capacity(rows.len());
    for r in rows.drain(..) {
        let mut k = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            k.push(e.eval(&r)?);
        }
        keyed.push((k, r));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            let o = ka[i].cmp(&kb[i]);
            let o = if *desc { o.reverse() } else { o };
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

/// Execute and sort the result (for deterministic comparisons — the DVS
/// validation compares result *multisets*).
pub fn execute_sorted(plan: &LogicalPlan, provider: &dyn TableProvider) -> DtResult<Vec<Row>> {
    let mut rows = execute(plan, provider)?;
    rows.sort();
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{row, Column, DataType, Schema, Value};
    use dt_plan::{Binder, ResolvedRelation, Resolver};

    /// A fixture database: `nums(x INT, y INT)` and `names(id INT, s STRING)`.
    struct Fixture;

    impl Resolver for Fixture {
        fn resolve_relation(&self, name: &str) -> DtResult<ResolvedRelation> {
            let (id, schema) = match name {
                "nums" => (
                    EntityId(1),
                    Schema::new(vec![
                        Column::new("x", DataType::Int),
                        Column::new("y", DataType::Int),
                    ]),
                ),
                "names" => (
                    EntityId(2),
                    Schema::new(vec![
                        Column::new("id", DataType::Int),
                        Column::new("s", DataType::Str),
                    ]),
                ),
                _ => return Err(DtError::Catalog("unknown".into())),
            };
            Ok(ResolvedRelation::Table { entity: id, schema })
        }
    }

    fn provider() -> MapProvider {
        let mut p = MapProvider::new();
        p.insert(
            EntityId(1),
            vec![row!(1i64, 10i64), row!(2i64, 20i64), row!(3i64, 30i64), row!(2i64, 5i64)],
        );
        p.insert(
            EntityId(2),
            vec![row!(1i64, "one"), row!(2i64, "two"), row!(9i64, "nine")],
        );
        p
    }

    fn run(sql: &str) -> Vec<Row> {
        let stmt = dt_sql::parse(sql).unwrap();
        let dt_sql::ast::Statement::Query(q) = stmt else {
            panic!()
        };
        let out = Binder::new(&Fixture).bind_query(&q).unwrap();
        execute_sorted(&out.plan, &provider()).unwrap()
    }

    #[test]
    fn filter_and_project() {
        let rows = run("SELECT x + y AS s FROM nums WHERE x >= 2");
        assert_eq!(rows, vec![row!(7i64), row!(22i64), row!(33i64)]);
    }

    #[test]
    fn inner_join_hash_path() {
        let rows = run("SELECT n.x, m.s FROM nums n JOIN names m ON n.x = m.id");
        assert_eq!(
            rows,
            vec![row!(1i64, "one"), row!(2i64, "two"), row!(2i64, "two")]
        );
    }

    #[test]
    fn left_join_pads_nulls() {
        let rows = run("SELECT n.x, m.s FROM nums n LEFT JOIN names m ON n.x = m.id");
        assert_eq!(rows.len(), 4);
        assert!(rows.contains(&Row::new(vec![Value::Int(3), Value::Null])));
    }

    #[test]
    fn right_join_mirrors_left() {
        let rows = run("SELECT m.id, m.s FROM nums n RIGHT JOIN names m ON n.x = m.id");
        // Unmatched right row (9, 'nine') must appear once.
        assert!(rows.contains(&row!(9i64, "nine")));
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn full_join_pads_both_sides() {
        let rows = run("SELECT n.x, m.id FROM nums n FULL OUTER JOIN names m ON n.x = m.id");
        assert!(rows.contains(&Row::new(vec![Value::Int(3), Value::Null])));
        assert!(rows.contains(&Row::new(vec![Value::Null, Value::Int(9)])));
    }

    #[test]
    fn non_equi_join_nested_loop() {
        let rows = run("SELECT n.x, m.id FROM nums n JOIN names m ON n.x < m.id");
        // x<id pairs: (1,2),(1,9),(2,9),(2,9),(3,9)
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn group_by_with_aggs() {
        let rows = run("SELECT x, count(*) c, sum(y) s FROM nums GROUP BY x");
        assert_eq!(
            rows,
            vec![
                row!(1i64, 1i64, 10i64),
                row!(2i64, 2i64, 25i64),
                row!(3i64, 1i64, 30i64)
            ]
        );
    }

    #[test]
    fn count_distinct_and_avg() {
        let rows = run("SELECT count(distinct x), avg(y) FROM nums GROUP BY true");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(3));
        assert_eq!(rows[0].get(1), &Value::Float(16.25));
    }

    #[test]
    fn count_if_aggregate() {
        let rows = run("SELECT x, count_if(y > 8) FROM nums GROUP BY x");
        assert_eq!(
            rows,
            vec![row!(1i64, 1i64), row!(2i64, 1i64), row!(3i64, 1i64)]
        );
    }

    #[test]
    fn distinct_dedupes() {
        let rows = run("SELECT DISTINCT x FROM nums");
        assert_eq!(rows, vec![row!(1i64), row!(2i64), row!(3i64)]);
    }

    #[test]
    fn union_all_is_bag_union() {
        let rows = run("SELECT x FROM nums UNION ALL SELECT x FROM nums");
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn having_filters_groups() {
        let rows = run("SELECT x, count(*) FROM nums GROUP BY x HAVING count(*) > 1");
        assert_eq!(rows, vec![row!(2i64, 2i64)]);
    }

    #[test]
    fn order_by_and_limit() {
        let stmt = dt_sql::parse("SELECT x, y FROM nums ORDER BY y DESC LIMIT 2").unwrap();
        let dt_sql::ast::Statement::Query(q) = stmt else {
            panic!()
        };
        let out = Binder::new(&Fixture).bind_query(&q).unwrap();
        // Don't sort: order matters here.
        let rows = execute(&out.plan, &provider()).unwrap();
        assert_eq!(rows, vec![row!(3i64, 30i64), row!(2i64, 20i64)]);
    }

    #[test]
    fn window_running_sum() {
        let rows = run(
            "SELECT x, sum(y) OVER (PARTITION BY x ORDER BY y) run FROM nums WHERE x = 2",
        );
        assert_eq!(rows, vec![row!(2i64, 5i64), row!(2i64, 25i64)]);
    }

    #[test]
    fn window_row_number_and_rank() {
        let rows = run("SELECT x, row_number() OVER (PARTITION BY x ORDER BY y) FROM nums");
        // Each x=1,3 partition has row 1; x=2 has rows 1,2.
        assert_eq!(
            rows,
            vec![
                row!(1i64, 1i64),
                row!(2i64, 1i64),
                row!(2i64, 2i64),
                row!(3i64, 1i64)
            ]
        );
    }

    #[test]
    fn window_whole_partition_without_order() {
        let rows = run("SELECT x, sum(y) OVER (PARTITION BY x) FROM nums WHERE x = 2");
        assert_eq!(rows, vec![row!(2i64, 25i64), row!(2i64, 25i64)]);
    }

    #[test]
    fn case_and_scalar_funcs_evaluate() {
        let rows = run(
            "SELECT CASE WHEN x > 1 THEN upper(s) ELSE lower(s) END FROM names m JOIN nums n ON m.id = n.x WHERE m.id = 1",
        );
        assert_eq!(rows, vec![row!("one")]);
    }

    #[test]
    fn evaluation_error_propagates() {
        let stmt = dt_sql::parse("SELECT y / (x - x) FROM nums").unwrap();
        let dt_sql::ast::Statement::Query(q) = stmt else {
            panic!()
        };
        let out = Binder::new(&Fixture).bind_query(&q).unwrap();
        let err = execute(&out.plan, &provider()).unwrap_err();
        assert!(err.is_user_error());
    }

    #[test]
    fn missing_table_is_storage_error() {
        let p = MapProvider::new();
        let plan = LogicalPlan::TableScan {
            entity: EntityId(99),
            name: "ghost".into(),
            schema: std::sync::Arc::new(Schema::empty()),
            pushdown: None,
        };
        assert!(matches!(execute(&plan, &p), Err(DtError::Storage(_))));
    }
}
