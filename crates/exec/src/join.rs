//! Join execution: hash join on extracted equi-keys with a nested-loop
//! fallback; all four join types.

use std::collections::HashMap;

use dt_common::{Batch, DtResult, Row, Value};
use dt_plan::expr::BinOp;
use dt_plan::{JoinType, ScalarExpr};

/// Equi-key pairs extracted from an ON condition: expressions over the left
/// row and the corresponding expressions over the right row.
struct EquiKeys {
    left: Vec<ScalarExpr>,
    /// Right-side expressions, rebased to the right row's own indices.
    right: Vec<ScalarExpr>,
    /// Conjuncts that are not simple equi-comparisons (evaluated on the
    /// concatenated row as a residual filter).
    residual: Vec<ScalarExpr>,
}

fn split_conjuncts(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    if let ScalarExpr::Binary { left, op, right } = e {
        if *op == BinOp::And {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
            return;
        }
    }
    out.push(e.clone());
}

fn side_of(e: &ScalarExpr, left_arity: usize) -> Option<bool> {
    // Some(true) = refs only left columns; Some(false) = only right;
    // None = mixed or no columns (no-column exprs treated as left-safe).
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    if cols.is_empty() {
        return Some(true);
    }
    let all_left = cols.iter().all(|c| *c < left_arity);
    let all_right = cols.iter().all(|c| *c >= left_arity);
    if all_left {
        Some(true)
    } else if all_right {
        Some(false)
    } else {
        None
    }
}

fn extract_equi_keys(on: &ScalarExpr, left_arity: usize) -> EquiKeys {
    let mut conjuncts = Vec::new();
    split_conjuncts(on, &mut conjuncts);
    let mut keys = EquiKeys {
        left: vec![],
        right: vec![],
        residual: vec![],
    };
    for c in conjuncts {
        if let ScalarExpr::Binary { left, op, right } = &c {
            if *op == BinOp::Eq {
                match (side_of(left, left_arity), side_of(right, left_arity)) {
                    (Some(true), Some(false)) => {
                        keys.left.push((**left).clone());
                        keys.right.push(right.map_columns(&|i| i - left_arity));
                        continue;
                    }
                    (Some(false), Some(true)) => {
                        keys.left.push((**right).clone());
                        keys.right.push(left.map_columns(&|i| i - left_arity));
                        continue;
                    }
                    _ => {}
                }
            }
        }
        keys.residual.push(c);
    }
    keys
}

fn eval_key(exprs: &[ScalarExpr], row: &Row) -> DtResult<Option<Vec<Value>>> {
    // SQL equi-join keys never match on NULL; a NULL key joins nothing.
    let mut k = Vec::with_capacity(exprs.len());
    for e in exprs {
        let v = e.eval(row)?;
        if v.is_null() {
            return Ok(None);
        }
        k.push(v);
    }
    Ok(Some(k))
}

/// Execute a join between materialized inputs.
pub fn execute_join(
    left: &[Row],
    right: &[Row],
    left_arity: usize,
    right_arity: usize,
    join_type: JoinType,
    on: &ScalarExpr,
) -> DtResult<Vec<Row>> {
    let keys = extract_equi_keys(on, left_arity);
    let mut out = Vec::new();
    let mut left_matched = vec![false; left.len()];
    let mut right_matched = vec![false; right.len()];

    if keys.left.is_empty() {
        // Nested loop.
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                let joined = l.concat(r);
                if residual_ok(&keys.residual, &joined)? {
                    left_matched[i] = true;
                    right_matched[j] = true;
                    out.push(joined);
                }
            }
        }
    } else {
        // Hash join: build on the right.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (j, r) in right.iter().enumerate() {
            if let Some(k) = eval_key(&keys.right, r)? {
                table.entry(k).or_default().push(j);
            }
        }
        for (i, l) in left.iter().enumerate() {
            if let Some(k) = eval_key(&keys.left, l)? {
                if let Some(matches) = table.get(&k) {
                    for &j in matches {
                        let joined = l.concat(&right[j]);
                        if residual_ok(&keys.residual, &joined)? {
                            left_matched[i] = true;
                            right_matched[j] = true;
                            out.push(joined);
                        }
                    }
                }
            }
        }
    }

    // Outer padding.
    if matches!(join_type, JoinType::Left | JoinType::Full) {
        for (i, l) in left.iter().enumerate() {
            if !left_matched[i] {
                out.push(l.concat(&Row::nulls(right_arity)));
            }
        }
    }
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for (j, r) in right.iter().enumerate() {
            if !right_matched[j] {
                out.push(Row::nulls(left_arity).concat(r));
            }
        }
    }
    Ok(out)
}

/// The batch-consuming form of [`execute_join`]: the build side (right) is
/// materialized into the hash table as rows, but the probe side streams
/// batch by batch — each left batch's selected rows probe and emit without
/// the probe input ever being collected into one row vector. Output rows
/// and their order are identical to [`execute_join`]: matches in probe
/// order, then unmatched-left padding in probe order, then unmatched-right
/// padding in build order.
pub fn execute_join_batches(
    left: &[Batch],
    right: &[Batch],
    left_arity: usize,
    right_arity: usize,
    join_type: JoinType,
    on: &ScalarExpr,
) -> DtResult<Vec<Row>> {
    let keys = extract_equi_keys(on, left_arity);
    let right_rows: Vec<Row> = right.iter().flat_map(|b| b.to_rows()).collect();
    let mut right_matched = vec![false; right_rows.len()];
    let pad_left = matches!(join_type, JoinType::Left | JoinType::Full);
    let mut out = Vec::new();
    let mut unmatched_left: Vec<Row> = Vec::new();

    let table: Option<HashMap<Vec<Value>, Vec<usize>>> = if keys.left.is_empty() {
        None
    } else {
        let mut t: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (j, r) in right_rows.iter().enumerate() {
            if let Some(k) = eval_key(&keys.right, r)? {
                t.entry(k).or_default().push(j);
            }
        }
        Some(t)
    };

    for b in left {
        for i in 0..b.len() {
            if !b.is_selected(i) {
                continue;
            }
            let l = b.row(i);
            let mut matched = false;
            match &table {
                None => {
                    // Nested loop (no equi-keys).
                    for (j, r) in right_rows.iter().enumerate() {
                        let joined = l.concat(r);
                        if residual_ok(&keys.residual, &joined)? {
                            matched = true;
                            right_matched[j] = true;
                            out.push(joined);
                        }
                    }
                }
                Some(t) => {
                    if let Some(candidates) = eval_key(&keys.left, &l)?.and_then(|k| t.get(&k)) {
                        for &j in candidates {
                            let joined = l.concat(&right_rows[j]);
                            if residual_ok(&keys.residual, &joined)? {
                                matched = true;
                                right_matched[j] = true;
                                out.push(joined);
                            }
                        }
                    }
                }
            }
            if pad_left && !matched {
                unmatched_left.push(l);
            }
        }
    }

    for l in unmatched_left {
        out.push(l.concat(&Row::nulls(right_arity)));
    }
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for (j, r) in right_rows.iter().enumerate() {
            if !right_matched[j] {
                out.push(Row::nulls(left_arity).concat(r));
            }
        }
    }
    Ok(out)
}

fn residual_ok(residual: &[ScalarExpr], joined: &Row) -> DtResult<bool> {
    for p in residual {
        if !p.eval(joined)?.is_true() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;

    fn eq(l: usize, r: usize) -> ScalarExpr {
        ScalarExpr::eq(ScalarExpr::col(l), ScalarExpr::col(r))
    }

    #[test]
    fn equi_key_extraction_orients_sides() {
        // ON right.col = left.col (reversed order) still extracts.
        let on = eq(2, 0); // col2 (right, arity 2) = col0 (left)
        let keys = extract_equi_keys(&on, 2);
        assert_eq!(keys.left, vec![ScalarExpr::col(0)]);
        assert_eq!(keys.right, vec![ScalarExpr::col(0)]);
        assert!(keys.residual.is_empty());
    }

    #[test]
    fn null_keys_never_match() {
        let left = vec![Row::new(vec![Value::Null]), row!(1i64)];
        let right = vec![Row::new(vec![Value::Null]), row!(1i64)];
        let out = execute_join(&left, &right, 1, 1, JoinType::Inner, &eq(0, 1)).unwrap();
        assert_eq!(out, vec![row!(1i64, 1i64)]);
        // But FULL join surfaces the null rows unmatched.
        let out = execute_join(&left, &right, 1, 1, JoinType::Full, &eq(0, 1)).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn residual_predicate_applies_after_hash_match() {
        // ON a = b AND a > 1
        let on = ScalarExpr::Binary {
            left: Box::new(eq(0, 1)),
            op: BinOp::And,
            right: Box::new(ScalarExpr::Binary {
                left: Box::new(ScalarExpr::col(0)),
                op: BinOp::Gt,
                right: Box::new(ScalarExpr::lit(1i64)),
            }),
        };
        let left = vec![row!(1i64), row!(2i64)];
        let right = vec![row!(1i64), row!(2i64)];
        let out = execute_join(&left, &right, 1, 1, JoinType::Inner, &on).unwrap();
        assert_eq!(out, vec![row!(2i64, 2i64)]);
    }

    #[test]
    fn duplicate_left_and_right_rows_multiply() {
        let left = vec![row!(1i64), row!(1i64)];
        let right = vec![row!(1i64), row!(1i64), row!(1i64)];
        let out = execute_join(&left, &right, 1, 1, JoinType::Inner, &eq(0, 1)).unwrap();
        assert_eq!(out.len(), 6);
    }
}
