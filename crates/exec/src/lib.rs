//! Plan execution.
//!
//! A vectorized batch-at-a-time pipeline over
//! [`LogicalPlan`](dt_plan::LogicalPlan)s, mirroring the optimized
//! vectorized plans the production system runs on a virtual warehouse
//! (§5.1). Operators exchange columnar [`Batch`](dt_common::Batch)es:
//! scans hand back shared column vectors (zero-copy from columnar
//! storage), filters evaluate into selection bitmaps with typed fast
//! paths, and projections of bare columns are column permutations. Rows
//! materialize once at the top of the plan, so results are row-shaped
//! exactly as before. The original row-at-a-time interpreter survives as
//! [`execute_rows`], the differential baseline the batch pipeline is
//! tested against.
//!
//! Batches are fetched through a [`TableProvider`], which the database
//! façade implements by resolving each scanned entity to the table version
//! dictated by the query's snapshot (§5.3) — the executor itself is
//! snapshot-agnostic. Providers with columnar storage also see the scan's
//! pushed-down predicates, letting them skip whole partitions via zone
//! maps before any data is read.
//!
//! Join execution extracts conjunctive equi-join keys from the ON condition
//! and hash-joins on them (probing batch by batch), falling back to a
//! nested-loop for non-equi predicates; outer joins pad unmatched sides
//! with NULLs.

pub mod aggregate;
pub mod batch;
pub mod executor;
pub mod join;
pub mod window;

pub use batch::execute_batches;
pub use executor::{execute, execute_rows, execute_sorted, MapProvider, TableProvider};
