//! Plan execution.
//!
//! A straightforward row-at-a-time interpreter over
//! [`LogicalPlan`](dt_plan::LogicalPlan)s. The
//! production system executes optimized vectorized plans on a virtual
//! warehouse (§5.1); for reproducing DT semantics an interpreter exercises
//! the same plans with the same results. Rows are fetched through a
//! [`TableProvider`], which the database façade implements by resolving
//! each scanned entity to the table version dictated by the refresh's
//! snapshot (§5.3) — the executor itself is snapshot-agnostic.
//!
//! Join execution extracts conjunctive equi-join keys from the ON condition
//! and hash-joins on them, falling back to a nested-loop for non-equi
//! predicates; outer joins pad unmatched sides with NULLs.

pub mod aggregate;
pub mod executor;
pub mod join;
pub mod window;

pub use executor::{execute, execute_sorted, MapProvider, TableProvider};
