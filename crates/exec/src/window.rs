//! Window function execution.
//!
//! Semantics implemented (matching the subset the binder accepts):
//!
//! * Partitions are defined by the PARTITION BY keys.
//! * With an ORDER BY, aggregate window functions compute the *cumulative*
//!   frame (rows from partition start through the current row, inclusive of
//!   peers — RANGE semantics), which is the default SQL frame.
//! * Without an ORDER BY, the frame is the whole partition.
//! * Ties in ORDER BY are broken repeatably by comparing full rows — the
//!   condition §5.5.1 imposes for the partition-recompute derivative to be
//!   well defined.

use std::collections::BTreeMap;

use dt_common::{DtError, DtResult, Row, Value};
use dt_plan::{WindowExpr, WindowFunc};

/// Compute window expressions over `rows`, returning rows with one appended
/// column per expression. Output ordering is deterministic (partition key,
/// then order key, then full row).
pub fn execute_window(rows: &[Row], exprs: &[WindowExpr]) -> DtResult<Vec<Row>> {
    // Each output row = input row ++ one value per window expr. Compute
    // values per expression, indexed by input row position.
    let mut appended: Vec<Vec<Value>> = vec![Vec::with_capacity(exprs.len()); rows.len()];
    for w in exprs {
        let per_row = compute_one(rows, w)?;
        for (i, v) in per_row.into_iter().enumerate() {
            appended[i].push(v);
        }
    }
    let mut out: Vec<Row> = rows
        .iter()
        .zip(appended)
        .map(|(r, extra)| {
            let mut vals = r.values().to_vec();
            vals.extend(extra);
            Row::new(vals)
        })
        .collect();
    out.sort();
    Ok(out)
}

/// Values of one window expression, positionally aligned with `rows`.
fn compute_one(rows: &[Row], w: &WindowExpr) -> DtResult<Vec<Value>> {
    // Partition rows.
    let mut partitions: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
    for (i, r) in rows.iter().enumerate() {
        let mut key = Vec::with_capacity(w.partition_by.len());
        for e in &w.partition_by {
            key.push(e.eval(r)?);
        }
        partitions.entry(key).or_default().push(i);
    }
    let mut out = vec![Value::Null; rows.len()];
    for (_, mut members) in partitions {
        // Order within the partition: ORDER BY keys, ties broken by the
        // full row (repeatable tie-breaking, §5.5.1).
        let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(members.len());
        for &i in &members {
            let mut k = Vec::with_capacity(w.order_by.len());
            for (e, _) in &w.order_by {
                k.push(e.eval(&rows[i])?);
            }
            keyed.push((k, i));
        }
        keyed.sort_by(|(ka, ia), (kb, ib)| {
            for (j, (_, desc)) in w.order_by.iter().enumerate() {
                let o = ka[j].cmp(&kb[j]);
                let o = if *desc { o.reverse() } else { o };
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            rows[*ia].cmp(&rows[*ib])
        });
        members = keyed.iter().map(|(_, i)| *i).collect();
        let order_keys: Vec<&Vec<Value>> = keyed.iter().map(|(k, _)| k).collect();

        match w.func {
            WindowFunc::RowNumber => {
                for (pos, &i) in members.iter().enumerate() {
                    out[i] = Value::Int(pos as i64 + 1);
                }
            }
            WindowFunc::Rank => {
                let mut rank = 1i64;
                for (pos, &i) in members.iter().enumerate() {
                    if pos > 0 && order_keys[pos] != order_keys[pos - 1] {
                        rank = pos as i64 + 1;
                    }
                    out[i] = Value::Int(rank);
                }
            }
            WindowFunc::Count | WindowFunc::Sum | WindowFunc::Min | WindowFunc::Max
            | WindowFunc::Avg => {
                let args: Vec<Option<Value>> = {
                    let mut v = Vec::with_capacity(members.len());
                    for &i in &members {
                        v.push(match &w.arg {
                            Some(e) => Some(e.eval(&rows[i])?),
                            None => None,
                        });
                    }
                    v
                };
                if w.order_by.is_empty() {
                    // Whole-partition frame.
                    let total = fold(&w.func, &args)?;
                    for &i in &members {
                        out[i] = total.clone();
                    }
                } else {
                    // Cumulative frame with RANGE (peer-inclusive) bounds:
                    // rows with equal order keys share the same value.
                    let mut pos = 0usize;
                    while pos < members.len() {
                        let mut end = pos + 1;
                        while end < members.len() && order_keys[end] == order_keys[pos] {
                            end += 1;
                        }
                        let v = fold(&w.func, &args[..end])?;
                        for &i in &members[pos..end] {
                            out[i] = v.clone();
                        }
                        pos = end;
                    }
                }
            }
        }
    }
    Ok(out)
}

fn fold(func: &WindowFunc, args: &[Option<Value>]) -> DtResult<Value> {
    match func {
        WindowFunc::Count => {
            let n = args
                .iter()
                .filter(|a| match a {
                    None => true,
                    Some(v) => !v.is_null(),
                })
                .count();
            Ok(Value::Int(n as i64))
        }
        WindowFunc::Sum => {
            let mut acc: Option<Value> = None;
            for a in args.iter().flatten() {
                if !a.is_null() {
                    acc = Some(match acc {
                        None => a.clone(),
                        Some(s) => s.add(a)?,
                    });
                }
            }
            Ok(acc.unwrap_or(Value::Null))
        }
        WindowFunc::Min => Ok(args
            .iter()
            .flatten()
            .filter(|v| !v.is_null())
            .min()
            .cloned()
            .unwrap_or(Value::Null)),
        WindowFunc::Max => Ok(args
            .iter()
            .flatten()
            .filter(|v| !v.is_null())
            .max()
            .cloned()
            .unwrap_or(Value::Null)),
        WindowFunc::Avg => {
            let mut sum = 0.0;
            let mut n = 0i64;
            for a in args.iter().flatten() {
                match a {
                    Value::Null => {}
                    Value::Int(i) => {
                        sum += *i as f64;
                        n += 1;
                    }
                    Value::Float(f) => {
                        sum += f;
                        n += 1;
                    }
                    other => return Err(DtError::Type(format!("avg window over {other}"))),
                }
            }
            Ok(if n == 0 {
                Value::Null
            } else {
                Value::Float(sum / n as f64)
            })
        }
        WindowFunc::RowNumber | WindowFunc::Rank => {
            Err(DtError::internal("rank functions are not folds"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;
    use dt_plan::ScalarExpr;

    fn w(func: WindowFunc, arg: Option<ScalarExpr>, order: bool) -> WindowExpr {
        WindowExpr {
            func,
            arg,
            partition_by: vec![ScalarExpr::col(0)],
            order_by: if order {
                vec![(ScalarExpr::col(1), false)]
            } else {
                vec![]
            },
            name: "w".into(),
        }
    }

    #[test]
    fn cumulative_sum_with_peer_groups() {
        // Partition 1: values 10, 10 (peers), 20.
        let rows = vec![row!(1i64, 10i64), row!(1i64, 10i64), row!(1i64, 20i64)];
        let out = execute_window(
            &rows,
            &[w(WindowFunc::Sum, Some(ScalarExpr::col(1)), true)],
        )
        .unwrap();
        // Peers (the two 10s) share the cumulative value 20; final row 40.
        let sums: Vec<&Value> = out.iter().map(|r| r.get(2)).collect();
        assert_eq!(sums, vec![&Value::Int(20), &Value::Int(20), &Value::Int(40)]);
    }

    #[test]
    fn rank_with_ties() {
        let rows = vec![row!(1i64, 10i64), row!(1i64, 10i64), row!(1i64, 20i64)];
        let out = execute_window(&rows, &[w(WindowFunc::Rank, None, true)]).unwrap();
        let ranks: Vec<&Value> = out.iter().map(|r| r.get(2)).collect();
        assert_eq!(ranks, vec![&Value::Int(1), &Value::Int(1), &Value::Int(3)]);
    }

    #[test]
    fn separate_partitions_do_not_interfere() {
        let rows = vec![row!(1i64, 5i64), row!(2i64, 7i64)];
        let out = execute_window(
            &rows,
            &[w(WindowFunc::Sum, Some(ScalarExpr::col(1)), false)],
        )
        .unwrap();
        assert!(out.contains(&row!(1i64, 5i64, 5i64)));
        assert!(out.contains(&row!(2i64, 7i64, 7i64)));
    }

    #[test]
    fn multiple_window_exprs_append_in_order() {
        let rows = vec![row!(1i64, 5i64)];
        let out = execute_window(
            &rows,
            &[
                w(WindowFunc::RowNumber, None, true),
                w(WindowFunc::Max, Some(ScalarExpr::col(1)), false),
            ],
        )
        .unwrap();
        assert_eq!(out, vec![row!(1i64, 5i64, 1i64, 5i64)]);
    }
}
