//! The Direct Serialization Graph with extended dependencies.
//!
//! The three dependency kinds of Adya, each extended per §4 of the paper to
//! trace through derivation paths. Derivation operations themselves create
//! no node activity: they are pure computation, acting as intermediaries
//! connecting the transactions that *write* base versions with those that
//! *read* derived values (Theorem 1).

use std::collections::BTreeSet;
use std::fmt;

use crate::history::{History, Op, TxnLabel, VersionRef};

/// Dependency kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Write–write: `Tj` installs the next version of something `Ti`
    /// installed (directly or via derived descendants).
    Write,
    /// Write–read: `Tj` reads something `Ti` installed (directly or via a
    /// derivation path).
    Read,
    /// Read–write (anti-dependency): `Ti` read a version whose successor
    /// (directly, or of a derivation source) was installed by `Tj`.
    Anti,
}

/// One DSG edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnLabel,
    /// Target transaction.
    pub to: TxnLabel,
    /// Kind.
    pub kind: DepKind,
    /// Human-readable provenance, e.g. `"T5 read y3 which derives from x1
    /// overwritten by T2"`.
    pub why: String,
}

/// The Direct Serialization Graph of a history's committed transactions.
#[derive(Debug, Clone, Default)]
pub struct Dsg {
    /// Committed transactions (nodes).
    pub nodes: BTreeSet<TxnLabel>,
    /// Dependency edges.
    pub edges: Vec<Edge>,
}

impl Dsg {
    /// Build the DSG of `h` using the extended dependency definitions.
    pub fn build(h: &History) -> Dsg {
        let committed = h.committed();
        let mut edges: BTreeSet<Edge> = BTreeSet::new();

        // Gather committed reads and installs. A "write" here is a true
        // Write op; derivations install versions but per Theorem 1 the
        // enclosing transaction is irrelevant, so derived installs never
        // produce edges for their container.
        let mut reads: Vec<(TxnLabel, VersionRef)> = Vec::new();
        let mut writes: Vec<(TxnLabel, VersionRef)> = Vec::new();
        for e in h.events() {
            if !committed.contains(&e.txn) {
                continue;
            }
            match &e.op {
                Op::Read(v) => reads.push((e.txn, v.clone())),
                Op::Write(v) => writes.push((e.txn, v.clone())),
                _ => {}
            }
        }

        // Read dependencies: Tj reads x_i...
        for (tj, x) in &reads {
            // ...installed by Ti (prior definition)...
            if let Some(ti) = h.installer(x) {
                if committed.contains(&ti) && ti != *tj && is_written(h, x) {
                    edges.insert(Edge {
                        from: ti,
                        to: *tj,
                        kind: DepKind::Read,
                        why: format!("T{tj} read {x:?} installed by T{ti}"),
                    });
                }
            }
            // ...or x_i derives from y_k installed by Ti (extended).
            for y in h.derivation_closure(x) {
                if let Some(ti) = h.installer(&y) {
                    if committed.contains(&ti) && ti != *tj && is_written(h, &y) {
                        edges.insert(Edge {
                            from: ti,
                            to: *tj,
                            kind: DepKind::Read,
                            why: format!(
                                "T{tj} read {x:?} which derives from {y:?} installed by T{ti}"
                            ),
                        });
                    }
                }
            }
        }

        // Anti-dependencies: Ti reads x_k...
        for (ti, x) in &reads {
            // ...and Tj installs x's next version (prior definition)...
            if let Some(next) = h.next_version(x) {
                if let Some(tj) = h.installer(&next) {
                    if committed.contains(&tj) && tj != *ti && is_written(h, &next) {
                        edges.insert(Edge {
                            from: *ti,
                            to: tj,
                            kind: DepKind::Anti,
                            why: format!("T{ti} read {x:?}; T{tj} installed next {next:?}"),
                        });
                    }
                }
            }
            // ...or x_k derives from y_m and Tj installs y's next (extended).
            for y in h.derivation_closure(x) {
                if let Some(next) = h.next_version(&y) {
                    if let Some(tj) = h.installer(&next) {
                        if committed.contains(&tj) && tj != *ti && is_written(h, &next) {
                            edges.insert(Edge {
                                from: *ti,
                                to: tj,
                                kind: DepKind::Anti,
                                why: format!(
                                    "T{ti} read {x:?} deriving from {y:?}; T{tj} installed next {next:?}"
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Write dependencies: Ti installs x_i, Tj installs x's next version
        // (prior definition)...
        for (ti, x) in &writes {
            if let Some(next) = h.next_version(x) {
                if let Some(tj) = h.installer(&next) {
                    if committed.contains(&tj) && tj != *ti && is_written(h, &next) {
                        edges.insert(Edge {
                            from: *ti,
                            to: tj,
                            kind: DepKind::Write,
                            why: format!("T{ti} installed {x:?}; T{tj} installed next {next:?}"),
                        });
                    }
                }
            }
        }
        // ...or consecutive derived versions z_k ≪ z_m with z_k ⊢ x_i and
        // z_m ⊢ y_j (extended).
        let derived: Vec<VersionRef> = h
            .derivation_sources()
            .keys()
            .cloned()
            .collect();
        for zk in &derived {
            let Some(zm) = h.next_version(zk) else {
                continue;
            };
            for (ti, x) in &writes {
                if !h.derives_from(zk, x) {
                    continue;
                }
                for (tj, y) in &writes {
                    if ti == tj {
                        continue;
                    }
                    if h.derives_from(&zm, y) {
                        edges.insert(Edge {
                            from: *ti,
                            to: *tj,
                            kind: DepKind::Write,
                            why: format!(
                                "consecutive {zk:?} ≪ {zm:?} derive from {x:?} (T{ti}) and {y:?} (T{tj})"
                            ),
                        });
                    }
                }
            }
        }

        Dsg {
            nodes: committed,
            edges: edges.into_iter().collect(),
        }
    }

    /// Edges as (from, to, kind) triples — the dependency *structure*,
    /// ignoring provenance strings (used by the Theorem 1 invariance check).
    pub fn structure(&self) -> BTreeSet<(TxnLabel, TxnLabel, DepKind)> {
        self.edges.iter().map(|e| (e.from, e.to, e.kind)).collect()
    }

    /// All elementary cycles' edge-kind sets, via DFS over the node set.
    /// Returns one representative set of edges per cycle found.
    pub fn cycles(&self) -> Vec<Vec<&Edge>> {
        let mut out = Vec::new();
        let nodes: Vec<TxnLabel> = self.nodes.iter().copied().collect();
        // Simple cycle enumeration: DFS from each node, only visiting nodes
        // >= start to avoid duplicates. Histories are small.
        for &start in &nodes {
            let mut path: Vec<&Edge> = Vec::new();
            self.dfs_cycles(start, start, &mut path, &mut out);
        }
        out
    }

    fn dfs_cycles<'a>(
        &'a self,
        start: TxnLabel,
        cur: TxnLabel,
        path: &mut Vec<&'a Edge>,
        out: &mut Vec<Vec<&'a Edge>>,
    ) {
        for e in self.edges.iter().filter(|e| e.from == cur) {
            if e.to == start && (!path.is_empty() || e.from == start) {
                let mut cycle = path.clone();
                cycle.push(e);
                out.push(cycle);
                continue;
            }
            if e.to < start || path.iter().any(|p| p.from == e.to) || e.to == start {
                continue;
            }
            if path.len() > 16 {
                continue; // histories are tiny; guard anyway
            }
            path.push(e);
            self.dfs_cycles(start, e.to, path, out);
            path.pop();
        }
    }
}

/// True when the version was installed by a Write op (not a derivation).
fn is_written(h: &History, v: &VersionRef) -> bool {
    h.events()
        .iter()
        .any(|e| matches!(&e.op, Op::Write(w) if w == v))
}

impl fmt::Display for Dsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DSG: nodes = {{{}}}",
            self.nodes
                .iter()
                .map(|n| format!("T{n}"))
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        for e in &self.edges {
            let k = match e.kind {
                DepKind::Write => "ww",
                DepKind::Read => "wr",
                DepKind::Anti => "rw",
            };
            writeln!(f, "  T{} -{k}-> T{}   ({})", e.from, e.to, e.why)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_wr_edge() {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1).read(2, "x", 1).commit(2);
        let g = Dsg::build(&h);
        assert_eq!(g.structure(), [(1, 2, DepKind::Read)].into_iter().collect());
    }

    #[test]
    fn ww_and_rw_edges() {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.read(2, "x", 1);
        h.write(3, "x", 2).commit(3);
        h.commit(2);
        let g = Dsg::build(&h);
        let s = g.structure();
        assert!(s.contains(&(1, 3, DepKind::Write)));
        assert!(s.contains(&(2, 3, DepKind::Anti)));
        assert!(s.contains(&(1, 2, DepKind::Read)));
    }

    #[test]
    fn derivation_creates_wr_through_path() {
        // T1 writes x1; a refresh derives y3 from x1; T5 reads y3.
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.derive(3, ("y", 3), &[("x", 1)]).commit(3);
        h.read(5, "y", 3).commit(5);
        let g = Dsg::build(&h);
        let s = g.structure();
        // T1 -wr-> T5 through the derivation; no edges touch T3.
        assert!(s.contains(&(1, 5, DepKind::Read)));
        assert!(s.iter().all(|(a, b, _)| *a != 3 && *b != 3));
    }

    #[test]
    fn uncommitted_transactions_are_excluded() {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.read(2, "x", 1); // never commits
        let g = Dsg::build(&h);
        assert!(g.edges.is_empty());
        assert_eq!(g.nodes.len(), 1);
    }

    #[test]
    fn cycle_detection_finds_two_node_cycle() {
        let mut h = History::new();
        // T1 reads x0 then writes y1; T2 reads y0 then writes x1 — classic
        // write-skew shape with rw edges both ways.
        h.write(0, "x", 0).write(0, "y", 0).commit(0);
        h.read(1, "x", 0).write(1, "y", 1).commit(1);
        h.read(2, "y", 0).write(2, "x", 1).commit(2);
        let g = Dsg::build(&h);
        assert!(!g.cycles().is_empty());
    }
}
