//! The Direct Serialization Graph with extended dependencies.
//!
//! The three dependency kinds of Adya, each extended per §4 of the paper to
//! trace through derivation paths. Derivation operations themselves create
//! no node activity: they are pure computation, acting as intermediaries
//! connecting the transactions that *write* base versions with those that
//! *read* derived values (Theorem 1).

use std::collections::BTreeSet;
use std::fmt;

use crate::history::{History, Op, TxnLabel, VersionRef};

/// Dependency kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Write–write: `Tj` installs the next version of something `Ti`
    /// installed (directly or via derived descendants).
    Write,
    /// Write–read: `Tj` reads something `Ti` installed (directly or via a
    /// derivation path).
    Read,
    /// Read–write (anti-dependency): `Ti` read a version whose successor
    /// (directly, or of a derivation source) was installed by `Tj`.
    Anti,
}

/// One DSG edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnLabel,
    /// Target transaction.
    pub to: TxnLabel,
    /// Kind.
    pub kind: DepKind,
    /// Human-readable provenance, e.g. `"T5 read y3 which derives from x1
    /// overwritten by T2"`.
    pub why: String,
}

/// The Direct Serialization Graph of a history's committed transactions.
#[derive(Debug, Clone, Default)]
pub struct Dsg {
    /// Committed transactions (nodes).
    pub nodes: BTreeSet<TxnLabel>,
    /// Dependency edges.
    pub edges: Vec<Edge>,
}

impl Dsg {
    /// Build the DSG of `h` using the extended dependency definitions.
    pub fn build(h: &History) -> Dsg {
        let committed = h.committed();
        let mut edges: BTreeSet<Edge> = BTreeSet::new();

        // Gather committed reads and installs. A "write" here is a true
        // Write op; derivations install versions but per Theorem 1 the
        // enclosing transaction is irrelevant, so derived installs never
        // produce edges for their container.
        let mut reads: Vec<(TxnLabel, VersionRef)> = Vec::new();
        let mut writes: Vec<(TxnLabel, VersionRef)> = Vec::new();
        for e in h.events() {
            if !committed.contains(&e.txn) {
                continue;
            }
            match &e.op {
                Op::Read(v) => reads.push((e.txn, v.clone())),
                Op::Write(v) => writes.push((e.txn, v.clone())),
                _ => {}
            }
        }

        // Read dependencies: Tj reads x_i...
        for (tj, x) in &reads {
            // ...installed by Ti (prior definition)...
            if let Some(ti) = h.installer(x) {
                if committed.contains(&ti) && ti != *tj && is_written(h, x) {
                    edges.insert(Edge {
                        from: ti,
                        to: *tj,
                        kind: DepKind::Read,
                        why: format!("T{tj} read {x:?} installed by T{ti}"),
                    });
                }
            }
            // ...or x_i derives from y_k installed by Ti (extended).
            for y in h.derivation_closure(x) {
                if let Some(ti) = h.installer(&y) {
                    if committed.contains(&ti) && ti != *tj && is_written(h, &y) {
                        edges.insert(Edge {
                            from: ti,
                            to: *tj,
                            kind: DepKind::Read,
                            why: format!(
                                "T{tj} read {x:?} which derives from {y:?} installed by T{ti}"
                            ),
                        });
                    }
                }
            }
        }

        // Anti-dependencies: Ti reads x_k...
        for (ti, x) in &reads {
            // ...and Tj installs x's next version (prior definition)...
            if let Some(next) = h.next_version(x) {
                if let Some(tj) = h.installer(&next) {
                    if committed.contains(&tj) && tj != *ti && is_written(h, &next) {
                        edges.insert(Edge {
                            from: *ti,
                            to: tj,
                            kind: DepKind::Anti,
                            why: format!("T{ti} read {x:?}; T{tj} installed next {next:?}"),
                        });
                    }
                }
            }
            // ...or x_k derives from y_m and Tj installs y's next (extended).
            for y in h.derivation_closure(x) {
                if let Some(next) = h.next_version(&y) {
                    if let Some(tj) = h.installer(&next) {
                        if committed.contains(&tj) && tj != *ti && is_written(h, &next) {
                            edges.insert(Edge {
                                from: *ti,
                                to: tj,
                                kind: DepKind::Anti,
                                why: format!(
                                    "T{ti} read {x:?} deriving from {y:?}; T{tj} installed next {next:?}"
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Write dependencies: Ti installs x_i, Tj installs x's next version
        // (prior definition)...
        for (ti, x) in &writes {
            if let Some(next) = h.next_version(x) {
                if let Some(tj) = h.installer(&next) {
                    if committed.contains(&tj) && tj != *ti && is_written(h, &next) {
                        edges.insert(Edge {
                            from: *ti,
                            to: tj,
                            kind: DepKind::Write,
                            why: format!("T{ti} installed {x:?}; T{tj} installed next {next:?}"),
                        });
                    }
                }
            }
        }
        // ...or consecutive derived versions z_k ≪ z_m with z_k ⊢ x_i and
        // z_m ⊢ y_j (extended).
        let derived: Vec<VersionRef> = h
            .derivation_sources()
            .keys()
            .cloned()
            .collect();
        for zk in &derived {
            let Some(zm) = h.next_version(zk) else {
                continue;
            };
            for (ti, x) in &writes {
                if !h.derives_from(zk, x) {
                    continue;
                }
                for (tj, y) in &writes {
                    if ti == tj {
                        continue;
                    }
                    if h.derives_from(&zm, y) {
                        edges.insert(Edge {
                            from: *ti,
                            to: *tj,
                            kind: DepKind::Write,
                            why: format!(
                                "consecutive {zk:?} ≪ {zm:?} derive from {x:?} (T{ti}) and {y:?} (T{tj})"
                            ),
                        });
                    }
                }
            }
        }

        Dsg {
            nodes: committed,
            edges: edges.into_iter().collect(),
        }
    }

    /// Edges as (from, to, kind) triples — the dependency *structure*,
    /// ignoring provenance strings (used by the Theorem 1 invariance check).
    pub fn structure(&self) -> BTreeSet<(TxnLabel, TxnLabel, DepKind)> {
        self.edges.iter().map(|e| (e.from, e.to, e.kind)).collect()
    }

    /// All elementary cycles, as edge paths (one entry per distinct
    /// combination of parallel edges along a vertex cycle).
    ///
    /// Uses Johnson's algorithm (SCC-restricted search with blocked-set
    /// unblocking), which is output-sensitive — O((V+E)·(C+1)) for C
    /// cycles — where the previous naive DFS was exponential in the path
    /// count: a dense acyclic DSG of a few dozen transactions has zero
    /// cycles but ~2^V simple paths, and histories of that size do occur
    /// once simulated workloads run long enough. Vertex cycles are found
    /// on the simple digraph first, then expanded over the parallel
    /// ww/wr/rw edges of each hop.
    pub fn cycles(&self) -> Vec<Vec<&Edge>> {
        // Dense-index the nodes; dedup the multigraph into a simple one.
        let verts: Vec<TxnLabel> = self.nodes.iter().copied().collect();
        let index = |t: TxnLabel| verts.binary_search(&t).ok();
        let n = verts.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Parallel edges per (from, to) hop, in edge-list order.
        let mut hop_edges: std::collections::BTreeMap<(usize, usize), Vec<&Edge>> =
            std::collections::BTreeMap::new();
        for e in &self.edges {
            let (Some(f), Some(t)) = (index(e.from), index(e.to)) else {
                continue;
            };
            if f == t {
                continue; // dependency edges never self-loop (ti != tj)
            }
            let slot = hop_edges.entry((f, t)).or_default();
            if slot.is_empty() {
                adj[f].push(t);
            }
            slot.push(e);
        }
        for a in &mut adj {
            a.sort_unstable();
        }

        let mut out = Vec::new();
        for vc in johnson_vertex_cycles(n, &adj) {
            expand_parallel_edges(&vc, &hop_edges, 0, &mut Vec::new(), &mut out);
        }
        out
    }
}

/// Elementary vertex cycles of a simple digraph (adjacency lists over
/// `0..n`), each as the vertex sequence starting at its least vertex.
/// Johnson's algorithm: for each start vertex `s`, search only inside the
/// strongly connected component of the subgraph induced by `{v ≥ s}` that
/// contains `s`, with blocked-set bookkeeping so a vertex is re-explored
/// only after some path through it reached `s`.
fn johnson_vertex_cycles(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for s in 0..n {
        let scc = scc_containing(s, n, adj);
        if scc.len() < 2 {
            continue; // no cycle has s as its least vertex
        }
        let mut j = Johnson {
            adj,
            scc: &scc,
            blocked: vec![false; n],
            unblock_on: vec![Vec::new(); n],
            stack: Vec::new(),
            out: &mut out,
        };
        j.circuit(s, s);
    }
    out
}

struct Johnson<'a> {
    adj: &'a [Vec<usize>],
    /// Vertices of the SCC the current search is confined to.
    scc: &'a [bool],
    blocked: Vec<bool>,
    /// `unblock_on[w]` holds vertices to unblock when `w` unblocks.
    unblock_on: Vec<Vec<usize>>,
    stack: Vec<usize>,
    out: &'a mut Vec<Vec<usize>>,
}

impl Johnson<'_> {
    fn circuit(&mut self, v: usize, s: usize) -> bool {
        let mut found = false;
        self.stack.push(v);
        self.blocked[v] = true;
        for i in 0..self.adj[v].len() {
            let w = self.adj[v][i];
            if !self.scc[w] {
                continue;
            }
            if w == s {
                self.out.push(self.stack.clone());
                found = true;
            } else if !self.blocked[w] && self.circuit(w, s) {
                found = true;
            }
        }
        if found {
            self.unblock(v);
        } else {
            for i in 0..self.adj[v].len() {
                let w = self.adj[v][i];
                if self.scc[w] && !self.unblock_on[w].contains(&v) {
                    self.unblock_on[w].push(v);
                }
            }
        }
        self.stack.pop();
        found
    }

    fn unblock(&mut self, v: usize) {
        self.blocked[v] = false;
        for w in std::mem::take(&mut self.unblock_on[v]) {
            if self.blocked[w] {
                self.unblock(w);
            }
        }
    }
}

/// The strongly connected component containing `s` in the subgraph induced
/// by `{v ≥ s}`, as a membership mask (Kosaraju on the induced subgraph:
/// vertices reaching `s` ∩ vertices reachable from `s`).
fn scc_containing(s: usize, n: usize, adj: &[Vec<usize>]) -> Vec<bool> {
    let fwd = reach(s, n, |v| adj[v].iter().copied().filter(|&w| w >= s));
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate().skip(s) {
        for &w in outs {
            if w >= s {
                radj[w].push(v);
            }
        }
    }
    let bwd = reach(s, n, |v| radj[v].iter().copied());
    (0..n).map(|v| fwd[v] && bwd[v]).collect()
}

fn reach<I, F>(s: usize, n: usize, succs: F) -> Vec<bool>
where
    I: Iterator<Item = usize>,
    F: Fn(usize) -> I,
{
    let mut seen = vec![false; n];
    seen[s] = true;
    let mut work = vec![s];
    while let Some(v) = work.pop() {
        for w in succs(v) {
            if !seen[w] {
                seen[w] = true;
                work.push(w);
            }
        }
    }
    seen
}

/// Expand one vertex cycle over the parallel edges of each hop: the DSG is
/// a multigraph (up to ww/wr/rw between the same pair), and phenomenon
/// classification needs every kind combination as its own cycle.
fn expand_parallel_edges<'a>(
    vc: &[usize],
    hop_edges: &std::collections::BTreeMap<(usize, usize), Vec<&'a Edge>>,
    hop: usize,
    acc: &mut Vec<&'a Edge>,
    out: &mut Vec<Vec<&'a Edge>>,
) {
    if hop == vc.len() {
        out.push(acc.clone());
        return;
    }
    let from = vc[hop];
    let to = vc[(hop + 1) % vc.len()];
    for e in &hop_edges[&(from, to)] {
        acc.push(e);
        expand_parallel_edges(vc, hop_edges, hop + 1, acc, out);
        acc.pop();
    }
}

/// True when the version was installed by a Write op (not a derivation).
fn is_written(h: &History, v: &VersionRef) -> bool {
    h.events()
        .iter()
        .any(|e| matches!(&e.op, Op::Write(w) if w == v))
}

impl fmt::Display for Dsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DSG: nodes = {{{}}}",
            self.nodes
                .iter()
                .map(|n| format!("T{n}"))
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        for e in &self.edges {
            let k = match e.kind {
                DepKind::Write => "ww",
                DepKind::Read => "wr",
                DepKind::Anti => "rw",
            };
            writeln!(f, "  T{} -{k}-> T{}   ({})", e.from, e.to, e.why)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_wr_edge() {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1).read(2, "x", 1).commit(2);
        let g = Dsg::build(&h);
        assert_eq!(g.structure(), [(1, 2, DepKind::Read)].into_iter().collect());
    }

    #[test]
    fn ww_and_rw_edges() {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.read(2, "x", 1);
        h.write(3, "x", 2).commit(3);
        h.commit(2);
        let g = Dsg::build(&h);
        let s = g.structure();
        assert!(s.contains(&(1, 3, DepKind::Write)));
        assert!(s.contains(&(2, 3, DepKind::Anti)));
        assert!(s.contains(&(1, 2, DepKind::Read)));
    }

    #[test]
    fn derivation_creates_wr_through_path() {
        // T1 writes x1; a refresh derives y3 from x1; T5 reads y3.
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.derive(3, ("y", 3), &[("x", 1)]).commit(3);
        h.read(5, "y", 3).commit(5);
        let g = Dsg::build(&h);
        let s = g.structure();
        // T1 -wr-> T5 through the derivation; no edges touch T3.
        assert!(s.contains(&(1, 5, DepKind::Read)));
        assert!(s.iter().all(|(a, b, _)| *a != 3 && *b != 3));
    }

    #[test]
    fn uncommitted_transactions_are_excluded() {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.read(2, "x", 1); // never commits
        let g = Dsg::build(&h);
        assert!(g.edges.is_empty());
        assert_eq!(g.nodes.len(), 1);
    }

    #[test]
    fn cycle_detection_finds_two_node_cycle() {
        let mut h = History::new();
        // T1 reads x0 then writes y1; T2 reads y0 then writes x1 — classic
        // write-skew shape with rw edges both ways.
        h.write(0, "x", 0).write(0, "y", 0).commit(0);
        h.read(1, "x", 0).write(1, "y", 1).commit(1);
        h.read(2, "y", 0).write(2, "x", 1).commit(2);
        let g = Dsg::build(&h);
        assert!(!g.cycles().is_empty());
    }

    /// Build a DSG directly from nodes and (from, to, kind) triples — the
    /// fields are public precisely so analyses can be tested on synthetic
    /// graphs without scripting a full history.
    fn graph(n: TxnLabel, edges: &[(TxnLabel, TxnLabel, DepKind)]) -> Dsg {
        Dsg {
            nodes: (0..n).collect(),
            edges: edges
                .iter()
                .map(|&(from, to, kind)| Edge { from, to, kind, why: String::new() })
                .collect(),
        }
    }

    #[test]
    fn dense_acyclic_history_enumerates_no_cycles_quickly() {
        // 32 transactions, an edge i -> j for every i < j: ~2^32 simple
        // paths but zero cycles. The old exponential DFS never finished
        // here; Johnson's visits each vertex once per start and returns
        // empty immediately.
        let mut edges = Vec::new();
        for i in 0..32 {
            for j in (i + 1)..32 {
                edges.push((i, j, DepKind::Write));
            }
        }
        let g = graph(32, &edges);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn thirty_txn_ring_yields_one_cycle_of_length_thirty() {
        let edges: Vec<_> = (0..30).map(|i| (i, (i + 1) % 30, DepKind::Anti)).collect();
        let g = graph(30, &edges);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 30);
        // Edges come back in cycle order: each hop's `to` is the next
        // hop's `from` — the contract phenomena classification relies on.
        for (a, b) in cycles[0].iter().zip(cycles[0].iter().cycle().skip(1)) {
            assert_eq!(a.to, b.from);
        }
    }

    #[test]
    fn parallel_edges_expand_to_every_kind_combination() {
        // Two nodes with both ww and rw in each direction: one vertex
        // cycle, but 2 x 2 = 4 distinct edge cycles, and G0/G2
        // classification depends on seeing each combination.
        let g = graph(
            2,
            &[
                (0, 1, DepKind::Write),
                (0, 1, DepKind::Anti),
                (1, 0, DepKind::Write),
                (1, 0, DepKind::Anti),
            ],
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 4);
        let kinds: BTreeSet<Vec<DepKind>> = cycles
            .iter()
            .map(|c| c.iter().map(|e| e.kind).collect())
            .collect();
        assert_eq!(kinds.len(), 4);
        assert!(kinds.contains(&vec![DepKind::Write, DepKind::Write]));
        assert!(kinds.contains(&vec![DepKind::Anti, DepKind::Anti]));
    }
}
