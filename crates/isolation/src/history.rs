//! Transaction histories with derivation operations.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use dt_common::{DtError, DtResult};

/// A transaction label (T1, T2, …).
pub type TxnLabel = u32;

/// A specific committed version of an object, e.g. `x₂`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionRef {
    /// Object name.
    pub object: String,
    /// Version number.
    pub version: u32,
}

impl VersionRef {
    /// Shorthand constructor.
    pub fn new(object: impl Into<String>, version: u32) -> Self {
        VersionRef {
            object: object.into(),
            version,
        }
    }
}

/// Operations in the extended model (Adya's four plus derivation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `r_i(x_j)` — read version `j` of `x`.
    Read(VersionRef),
    /// `w_i(x_i)` — install a version (new information from the
    /// environment).
    Write(VersionRef),
    /// `d_i(x_i | y_j, …)` — derive a version purely from stored data.
    Derive {
        /// The derived version.
        target: VersionRef,
        /// The versions it was computed from.
        sources: Vec<VersionRef>,
    },
    /// Commit.
    Commit,
    /// Abort.
    Abort,
}

/// One event: an operation inside a transaction. The history's event list
/// is a linearization of Adya's partial order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The enclosing transaction.
    pub txn: TxnLabel,
    /// The operation.
    pub op: Op,
}

/// A transaction history plus per-object version orders.
#[derive(Debug, Clone, Default)]
pub struct History {
    events: Vec<Event>,
    /// Total order on the committed versions of each object. If absent for
    /// an object, version numbers order it.
    version_order: BTreeMap<String, Vec<u32>>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a read.
    pub fn read(&mut self, txn: TxnLabel, object: &str, version: u32) -> &mut Self {
        self.events.push(Event {
            txn,
            op: Op::Read(VersionRef::new(object, version)),
        });
        self
    }

    /// Append a write installing `object`'s version `version`.
    pub fn write(&mut self, txn: TxnLabel, object: &str, version: u32) -> &mut Self {
        self.events.push(Event {
            txn,
            op: Op::Write(VersionRef::new(object, version)),
        });
        self
    }

    /// Append a derivation.
    pub fn derive(
        &mut self,
        txn: TxnLabel,
        target: (&str, u32),
        sources: &[(&str, u32)],
    ) -> &mut Self {
        self.events.push(Event {
            txn,
            op: Op::Derive {
                target: VersionRef::new(target.0, target.1),
                sources: sources
                    .iter()
                    .map(|(o, v)| VersionRef::new(*o, *v))
                    .collect(),
            },
        });
        self
    }

    /// Append a commit.
    pub fn commit(&mut self, txn: TxnLabel) -> &mut Self {
        self.events.push(Event {
            txn,
            op: Op::Commit,
        });
        self
    }

    /// Append an abort.
    pub fn abort(&mut self, txn: TxnLabel) -> &mut Self {
        self.events.push(Event { txn, op: Op::Abort });
        self
    }

    /// Set an explicit version order for an object.
    pub fn set_version_order(&mut self, object: &str, order: Vec<u32>) -> &mut Self {
        self.version_order.insert(object.to_string(), order);
        self
    }

    /// The events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Committed transactions.
    pub fn committed(&self) -> BTreeSet<TxnLabel> {
        self.events
            .iter()
            .filter(|e| e.op == Op::Commit)
            .map(|e| e.txn)
            .collect()
    }

    /// Aborted transactions.
    pub fn aborted(&self) -> BTreeSet<TxnLabel> {
        self.events
            .iter()
            .filter(|e| e.op == Op::Abort)
            .map(|e| e.txn)
            .collect()
    }

    /// The transaction that installed (wrote or derived) a version.
    pub fn installer(&self, v: &VersionRef) -> Option<TxnLabel> {
        self.events.iter().find_map(|e| match &e.op {
            Op::Write(w) if w == v => Some(e.txn),
            Op::Derive { target, .. } if target == v => Some(e.txn),
            _ => None,
        })
    }

    /// The version installed immediately after `v` in `v.object`'s version
    /// order (explicit order if set, else numeric order of installed
    /// versions).
    pub fn next_version(&self, v: &VersionRef) -> Option<VersionRef> {
        let installed: Vec<u32> = match self.version_order.get(&v.object) {
            Some(order) => order.clone(),
            None => {
                let mut vs: Vec<u32> = self
                    .events
                    .iter()
                    .filter_map(|e| match &e.op {
                        Op::Write(w) if w.object == v.object => Some(w.version),
                        Op::Derive { target, .. } if target.object == v.object => {
                            Some(target.version)
                        }
                        _ => None,
                    })
                    .collect();
                vs.sort_unstable();
                vs.dedup();
                vs
            }
        };
        let pos = installed.iter().position(|x| *x == v.version)?;
        installed
            .get(pos + 1)
            .map(|n| VersionRef::new(v.object.clone(), *n))
    }

    /// Direct derivation sources of each derived version.
    pub fn derivation_sources(&self) -> HashMap<VersionRef, Vec<VersionRef>> {
        let mut out: HashMap<VersionRef, Vec<VersionRef>> = HashMap::new();
        for e in &self.events {
            if let Op::Derive { target, sources } = &e.op {
                out.entry(target.clone()).or_default().extend(sources.iter().cloned());
            }
        }
        out
    }

    /// True when `v` *derives from* `base`: a non-empty path of derivations
    /// connects them (the paper's derives-from relation).
    pub fn derives_from(&self, v: &VersionRef, base: &VersionRef) -> bool {
        let sources = self.derivation_sources();
        let mut stack = vec![v.clone()];
        let mut seen = HashSet::new();
        while let Some(cur) = stack.pop() {
            if let Some(ss) = sources.get(&cur) {
                for s in ss {
                    if s == base {
                        return true;
                    }
                    if seen.insert(s.clone()) {
                        stack.push(s.clone());
                    }
                }
            }
        }
        false
    }

    /// All versions that `v` transitively derives from.
    pub fn derivation_closure(&self, v: &VersionRef) -> BTreeSet<VersionRef> {
        let sources = self.derivation_sources();
        let mut out = BTreeSet::new();
        let mut stack = vec![v.clone()];
        while let Some(cur) = stack.pop() {
            if let Some(ss) = sources.get(&cur) {
                for s in ss {
                    if out.insert(s.clone()) {
                        stack.push(s.clone());
                    }
                }
            }
        }
        out
    }

    /// Theorem 1 (Transaction Invariance): move the derivation installing
    /// `target` into transaction `to`, renumbering nothing (the paper's
    /// statement renames the version; dependencies are agnostic to the
    /// containing transaction, so keeping the name makes the invariance
    /// directly checkable). Returns an error if no such derivation exists.
    pub fn move_derivation(&self, target: &VersionRef, to: TxnLabel) -> DtResult<History> {
        let mut out = self.clone();
        let mut found = false;
        for e in &mut out.events {
            if let Op::Derive { target: t, .. } = &e.op {
                if t == target {
                    e.txn = to;
                    found = true;
                }
            }
        }
        if !found {
            return Err(DtError::Internal(format!(
                "no derivation installs {target:?}"
            )));
        }
        // The receiving transaction must commit for its events to count;
        // add a commit if absent.
        if !out.committed().contains(&to) {
            out.commit(to);
        }
        Ok(out)
    }

    /// Corollary 2 (Encapsulation): true when the derivation installing
    /// `target` in txn `t` only reads values written by `t` and its value
    /// is only read by operations in `t`.
    ///
    /// **Refinement found by property testing**: the paper's definition
    /// must additionally require that `target` is the *only* version of its
    /// object. Otherwise the derivation can participate in the extended
    /// write-dependency rule (consecutive derived versions `z_k ≪ z_m`
    /// deriving from different writers) purely through version adjacency,
    /// and removing it would delete that edge. A single-version derived
    /// object is exactly the "implicit temporary" the paper's Corollary 2
    /// appeals to.
    pub fn is_encapsulated(&self, target: &VersionRef) -> bool {
        let Some(owner) = self.installer(target) else {
            return false;
        };
        for e in &self.events {
            match &e.op {
                Op::Read(v) if v == target && e.txn != owner => return false,
                Op::Derive { sources, .. }
                    if sources.contains(target) && e.txn != owner =>
                {
                    return false
                }
                _ => {}
            }
        }
        // All sources must be written by the owner.
        if let Some(ss) = self.derivation_sources().get(target) {
            for s in ss {
                if self.installer(s) != Some(owner) {
                    return false;
                }
            }
        }
        // `target` must be the only version of its object (see the
        // refinement note above).
        for e in &self.events {
            let installed = match &e.op {
                Op::Write(v) => Some(v),
                Op::Derive { target: t, .. } => Some(t),
                _ => None,
            };
            if let Some(v) = installed {
                if v.object == target.object && v != target {
                    return false;
                }
            }
        }
        true
    }

    /// Remove the derivation installing `target`, *inlining* reads of the
    /// derived value into reads of its sources (used with
    /// [`History::is_encapsulated`] to check Corollary 2). Inlining is the
    /// faithful reading of "excluding" a derivation: the pure computation
    /// disappears, and anything that consumed its value now consumes what
    /// it was computed from.
    pub fn remove_derivation(&self, target: &VersionRef) -> History {
        let sources = self
            .derivation_sources()
            .get(target)
            .cloned()
            .unwrap_or_default();
        let mut out = History {
            events: Vec::with_capacity(self.events.len()),
            version_order: self.version_order.clone(),
        };
        for e in &self.events {
            match &e.op {
                Op::Derive { target: t, .. } if t == target => {}
                Op::Read(v) if v == target => {
                    for s in &sources {
                        out.events.push(Event {
                            txn: e.txn,
                            op: Op::Read(s.clone()),
                        });
                    }
                }
                _ => out.events.push(e.clone()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_from_is_transitive() {
        let mut h = History::new();
        h.derive(3, ("y", 3), &[("x", 1)]);
        h.derive(4, ("z", 4), &[("y", 3)]);
        assert!(h.derives_from(&VersionRef::new("y", 3), &VersionRef::new("x", 1)));
        assert!(h.derives_from(&VersionRef::new("z", 4), &VersionRef::new("x", 1)));
        assert!(!h.derives_from(&VersionRef::new("x", 1), &VersionRef::new("z", 4)));
    }

    #[test]
    fn next_version_numeric_and_explicit() {
        let mut h = History::new();
        h.write(1, "x", 1).write(2, "x", 2).write(3, "x", 5);
        assert_eq!(
            h.next_version(&VersionRef::new("x", 2)),
            Some(VersionRef::new("x", 5))
        );
        h.set_version_order("x", vec![5, 2, 1]);
        assert_eq!(
            h.next_version(&VersionRef::new("x", 5)),
            Some(VersionRef::new("x", 2))
        );
    }

    #[test]
    fn installer_finds_writes_and_derives() {
        let mut h = History::new();
        h.write(1, "x", 1).derive(9, ("y", 3), &[("x", 1)]);
        assert_eq!(h.installer(&VersionRef::new("x", 1)), Some(1));
        assert_eq!(h.installer(&VersionRef::new("y", 3)), Some(9));
        assert_eq!(h.installer(&VersionRef::new("q", 1)), None);
    }

    #[test]
    fn encapsulation_detection() {
        // T1 writes x1, derives y1 from x1, reads y1 itself: encapsulated.
        let mut h = History::new();
        h.write(1, "x", 1)
            .derive(1, ("y", 1), &[("x", 1)])
            .read(1, "y", 1)
            .commit(1);
        assert!(h.is_encapsulated(&VersionRef::new("y", 1)));
        // Another txn reads y1: no longer encapsulated.
        h.read(2, "y", 1).commit(2);
        assert!(!h.is_encapsulated(&VersionRef::new("y", 1)));
    }
}
