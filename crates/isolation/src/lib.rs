//! Delayed view semantics and transaction isolation (§4 of the paper).
//!
//! This crate implements the paper's extension of Adya's generalized
//! isolation framework with **derivation** operations:
//!
//! > `d_i(x_i | y⁰_j, …, yⁿ_k)` represents that version `i` of object `x`
//! > is a derived value, computed from versions `j…k` of objects `y⁰…yⁿ`
//! > in transaction `T_i`.
//!
//! * [`history`] — histories of read/write/derive/commit/abort events with
//!   per-object version orders.
//! * [`dsg`] — the Direct Serialization Graph with the paper's *extended*
//!   read-, anti-, and write-dependency definitions that trace through
//!   derivation paths.
//! * [`phenomena`] — detectors for G0, G1a, G1b, G1c, G2, and G-single,
//!   generalized to derivations, plus the PL isolation-level ladder.
//!
//! Theorem 1 (transaction invariance — moving a derivation between
//! transactions does not change dependencies) and Corollary 2
//! (encapsulation — removing an encapsulated derivation does not change
//! dependencies) are implemented as executable transformations with
//! property tests.

pub mod dsg;
pub mod history;
pub mod phenomena;

pub use dsg::{DepKind, Dsg, Edge};
pub use history::{History, Op, TxnLabel, VersionRef};
pub use phenomena::{analyze, IsolationLevel, Phenomenon, Report};
