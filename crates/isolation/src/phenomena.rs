//! Phenomena detection and isolation levels.
//!
//! The phenomena of Adya (G0, G1a, G1b, G1c, G2) updated for derivations
//! per §4: the definitions are unchanged except G1b, but derivations in a
//! history can *induce new instances* of each through the extended
//! dependency rules.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::dsg::{DepKind, Dsg};
use crate::history::{History, Op, TxnLabel, VersionRef};

/// A detected phenomenon.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phenomenon {
    /// G0: a cycle of write dependencies only.
    G0 {
        /// Transactions on the cycle.
        cycle: Vec<TxnLabel>,
    },
    /// G1a: a committed transaction read a version installed by an aborted
    /// transaction (directly or through a derivation path).
    G1a {
        /// The reader.
        reader: TxnLabel,
        /// The aborted writer.
        aborted: TxnLabel,
        /// The version read.
        version: VersionRef,
    },
    /// G1b: a committed transaction read an intermediate (non-final)
    /// version — or a version deriving from one (the one definition §4
    /// actually extends).
    G1b {
        /// The reader.
        reader: TxnLabel,
        /// The writer of the intermediate version.
        writer: TxnLabel,
        /// The intermediate version.
        version: VersionRef,
    },
    /// G1c: a cycle of read and write dependencies only.
    G1c {
        /// Transactions on the cycle.
        cycle: Vec<TxnLabel>,
    },
    /// G2: a cycle containing at least one anti-dependency.
    G2 {
        /// Transactions on the cycle.
        cycle: Vec<TxnLabel>,
        /// Number of anti edges on the cycle.
        anti_edges: usize,
    },
}

impl Phenomenon {
    /// Short tag ("G0", "G1a", ...).
    pub fn tag(&self) -> &'static str {
        match self {
            Phenomenon::G0 { .. } => "G0",
            Phenomenon::G1a { .. } => "G1a",
            Phenomenon::G1b { .. } => "G1b",
            Phenomenon::G1c { .. } => "G1c",
            Phenomenon::G2 { .. } => "G2",
        }
    }

    /// True when the cycle has exactly one anti edge (G-single, the shape
    /// Figure 2 exhibits).
    pub fn is_g_single(&self) -> bool {
        matches!(self, Phenomenon::G2 { anti_edges: 1, .. })
    }
}

/// Isolation levels of Adya's ladder (the ones the paper names: DTs give
/// PL-SI when reading a single DT and PL-2 otherwise; PL-2+ is conjectured
/// to provide basic consistency even with derivations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IsolationLevel {
    /// Proscribes nothing we detect.
    None,
    /// PL-1: no G0.
    Pl1,
    /// PL-2 (Read Committed): no G0, G1a, G1b, G1c.
    Pl2,
    /// PL-2+ (basic consistency): PL-2 and no G-single.
    Pl2Plus,
    /// PL-3 (Serializable): PL-2 and no G2 at all.
    Pl3,
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IsolationLevel::None => "below PL-1",
            IsolationLevel::Pl1 => "PL-1",
            IsolationLevel::Pl2 => "PL-2 (Read Committed)",
            IsolationLevel::Pl2Plus => "PL-2+ (basic consistency)",
            IsolationLevel::Pl3 => "PL-3 (Serializable)",
        };
        f.write_str(s)
    }
}

/// The result of analyzing a history.
#[derive(Debug, Clone)]
pub struct Report {
    /// The DSG that was built.
    pub dsg: Dsg,
    /// Every phenomenon found.
    pub phenomena: Vec<Phenomenon>,
    /// The strongest level whose proscribed phenomena are all absent.
    pub level: IsolationLevel,
}

impl Report {
    /// True when no phenomenon of the given tag was found.
    pub fn free_of(&self, tag: &str) -> bool {
        self.phenomena.iter().all(|p| p.tag() != tag)
    }
}

/// Analyze a history: build its DSG, detect phenomena, classify the level.
pub fn analyze(h: &History) -> Report {
    let dsg = Dsg::build(h);
    let mut phenomena = Vec::new();

    // History-based phenomena.
    detect_g1a(h, &mut phenomena);
    detect_g1b(h, &mut phenomena);

    // Cycle-based phenomena.
    for cycle in dsg.cycles() {
        let nodes: Vec<TxnLabel> = cycle.iter().map(|e| e.from).collect();
        let kinds: BTreeSet<DepKind> = cycle.iter().map(|e| e.kind).collect();
        let anti = cycle.iter().filter(|e| e.kind == DepKind::Anti).count();
        if kinds == [DepKind::Write].into_iter().collect() {
            phenomena.push(Phenomenon::G0 {
                cycle: nodes.clone(),
            });
        }
        if anti == 0 {
            // Only read/write dependencies.
            phenomena.push(Phenomenon::G1c {
                cycle: nodes.clone(),
            });
        } else {
            phenomena.push(Phenomenon::G2 {
                cycle: nodes,
                anti_edges: anti,
            });
        }
    }
    phenomena.sort();
    phenomena.dedup();

    let has = |tag: &str| phenomena.iter().any(|p| p.tag() == tag);
    let g1 = has("G1a") || has("G1b") || has("G1c") || has("G0");
    let g_single = phenomena.iter().any(|p| p.is_g_single());
    let g2 = has("G2");
    let level = if !g1 && !g2 {
        IsolationLevel::Pl3
    } else if !g1 && !g_single {
        IsolationLevel::Pl2Plus
    } else if !g1 {
        IsolationLevel::Pl2
    } else if !has("G0") {
        IsolationLevel::Pl1
    } else {
        IsolationLevel::None
    };
    Report {
        dsg,
        phenomena,
        level,
    }
}

fn detect_g1a(h: &History, out: &mut Vec<Phenomenon>) {
    let committed = h.committed();
    let aborted = h.aborted();
    for e in h.events() {
        if !committed.contains(&e.txn) {
            continue;
        }
        let Op::Read(v) = &e.op else { continue };
        // Direct read of an aborted write, or of anything deriving from one.
        let mut candidates = vec![v.clone()];
        candidates.extend(h.derivation_closure(v));
        for c in candidates {
            if let Some(w) = h.installer(&c) {
                if aborted.contains(&w) {
                    out.push(Phenomenon::G1a {
                        reader: e.txn,
                        aborted: w,
                        version: c,
                    });
                }
            }
        }
    }
}

fn detect_g1b(h: &History, out: &mut Vec<Phenomenon>) {
    let committed = h.committed();
    // Final version per (txn, object): the last version of each object a
    // transaction installs via Write.
    let mut finals: HashMap<(TxnLabel, String), u32> = HashMap::new();
    for e in h.events() {
        if let Op::Write(v) = &e.op {
            finals.insert((e.txn, v.object.clone()), v.version);
        }
    }
    let is_intermediate = |v: &VersionRef| -> Option<TxnLabel> {
        let w = h.installer(v)?;
        let fin = finals.get(&(w, v.object.clone()))?;
        if *fin != v.version {
            Some(w)
        } else {
            None
        }
    };
    for e in h.events() {
        if !committed.contains(&e.txn) {
            continue;
        }
        let Op::Read(v) = &e.op else { continue };
        let mut candidates = vec![v.clone()];
        candidates.extend(h.derivation_closure(v));
        for c in candidates {
            if let Some(w) = is_intermediate(&c) {
                if w != e.txn {
                    out.push(Phenomenon::G1b {
                        reader: e.txn,
                        writer: w,
                        version: c,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1: persisted table semantics. Refreshes are
    /// ordinary read/write transactions (T3, T4); the DSG is serializable
    /// even though the application observes read skew.
    pub fn figure_1() -> History {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1); // T1 installs x1
        h.read(3, "x", 1).write(3, "y", 3).commit(3); // refresh 1
        h.write(2, "x", 2).commit(2); // T2 installs x2
        h.read(4, "x", 2).write(4, "y", 4).commit(4); // refresh 2
        h.read(5, "y", 3).read(5, "x", 2).commit(5); // T5 observes skew
        h
    }

    /// The paper's Figure 2: the same history under delayed view
    /// semantics — refreshes become derivations, and the anti-dependency
    /// T5 → T2 appears, closing a G2 / G-single cycle.
    pub fn figure_2() -> History {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.derive(3, ("y", 3), &[("x", 1)]).commit(3);
        h.write(2, "x", 2).commit(2);
        h.derive(4, ("y", 4), &[("x", 2)]).commit(4);
        h.read(5, "y", 3).read(5, "x", 2).commit(5);
        h
    }

    #[test]
    fn figure_1_is_serializable_despite_read_skew() {
        let r = analyze(&figure_1());
        assert_eq!(r.level, IsolationLevel::Pl3, "{}", r.dsg);
        assert!(r.phenomena.is_empty());
    }

    #[test]
    fn figure_2_reveals_read_skew_as_g_single() {
        let r = analyze(&figure_2());
        assert!(r.phenomena.iter().any(|p| p.tag() == "G2"), "{}", r.dsg);
        assert!(r.phenomena.iter().any(|p| p.is_g_single()));
        assert_eq!(r.level, IsolationLevel::Pl2);
        // The cycle is T5 ⇄ T2: T2 -wr-> T5 (read of x2), T5 -rw-> T2
        // (y3 derives from x1, overwritten by T2).
        let s = r.dsg.structure();
        assert!(s.contains(&(2, 5, DepKind::Read)));
        assert!(s.contains(&(5, 2, DepKind::Anti)));
    }

    #[test]
    fn theorem_1_transaction_invariance_on_figure_2() {
        let h = figure_2();
        let base = Dsg::build(&h).structure();
        // Move the derivation of y3 into T1, into T5, into a fresh T9:
        // dependencies must be identical.
        for target_txn in [1u32, 5, 9] {
            let moved = h
                .move_derivation(&VersionRef::new("y", 3), target_txn)
                .unwrap();
            assert_eq!(
                Dsg::build(&moved).structure(),
                base,
                "moving derivation into T{target_txn} changed dependencies"
            );
        }
    }

    #[test]
    fn corollary_2_encapsulated_derivations_are_removable() {
        // T1 writes x1, derives tmp from x1 (used only inside T1).
        let mut h = History::new();
        h.write(1, "x", 1)
            .derive(1, ("tmp", 1), &[("x", 1)])
            .read(1, "tmp", 1)
            .commit(1);
        h.read(2, "x", 1).commit(2);
        let v = VersionRef::new("tmp", 1);
        assert!(h.is_encapsulated(&v));
        let without = h.remove_derivation(&v);
        assert_eq!(Dsg::build(&h).structure(), Dsg::build(&without).structure());
    }

    #[test]
    fn g1a_through_derivation() {
        // Aborted T1 writes x1; a refresh derives y from x1; T2 reads y.
        let mut h = History::new();
        h.write(1, "x", 1).abort(1);
        h.derive(3, ("y", 1), &[("x", 1)]).commit(3);
        h.read(2, "y", 1).commit(2);
        let r = analyze(&h);
        assert!(!r.free_of("G1a"));
        assert!(r.level <= IsolationLevel::Pl1);
    }

    #[test]
    fn g1b_through_derivation() {
        // T1 writes x1 then x2 (x1 intermediate); refresh derives y from
        // x1; T2 reads y → intermediate read through the derivation.
        let mut h = History::new();
        h.write(1, "x", 1).write(1, "x", 2).commit(1);
        h.derive(3, ("y", 1), &[("x", 1)]).commit(3);
        h.read(2, "y", 1).commit(2);
        let r = analyze(&h);
        assert!(!r.free_of("G1b"));
    }

    #[test]
    fn g0_write_cycle() {
        let mut h = History::new();
        // T1 and T2 interleave installing versions of x and y such that
        // version orders cross: x: 1 then 2; y: 2 then 1.
        h.write(1, "x", 1).write(2, "x", 2);
        h.write(2, "y", 1).write(1, "y", 2);
        h.commit(1).commit(2);
        let r = analyze(&h);
        assert!(!r.free_of("G0"), "{}", r.dsg);
        assert_eq!(r.level, IsolationLevel::None);
    }

    #[test]
    fn g1c_read_cycle() {
        // T1 writes x1 read by T2; T2 writes y1 read by T1.
        let mut h = History::new();
        h.write(1, "x", 1);
        h.write(2, "y", 1);
        h.read(2, "x", 1);
        h.read(1, "y", 1);
        h.commit(1).commit(2);
        let r = analyze(&h);
        assert!(!r.free_of("G1c"), "{}", r.dsg);
    }

    #[test]
    fn write_skew_is_g2_not_g_single() {
        let mut h = History::new();
        h.write(0, "x", 0).write(0, "y", 0).commit(0);
        h.read(1, "x", 0).write(1, "y", 1).commit(1);
        h.read(2, "y", 0).write(2, "x", 1).commit(2);
        let r = analyze(&h);
        let g2: Vec<_> = r.phenomena.iter().filter(|p| p.tag() == "G2").collect();
        assert!(!g2.is_empty());
        // The classic write-skew cycle has two anti edges.
        assert!(g2
            .iter()
            .any(|p| matches!(p, Phenomenon::G2 { anti_edges: 2, .. })));
        assert_eq!(r.level, IsolationLevel::Pl2Plus);
    }

    #[test]
    fn serial_history_is_pl3() {
        let mut h = History::new();
        h.write(1, "x", 1).commit(1);
        h.read(2, "x", 1).write(2, "y", 1).commit(2);
        h.read(3, "y", 1).commit(3);
        assert_eq!(analyze(&h).level, IsolationLevel::Pl3);
    }
}
