//! The differentiation rules.

use std::collections::{HashMap, HashSet};

use dt_common::{DtResult, EntityId, Row, Value};
use dt_exec::{execute, TableProvider};
use dt_plan::{JoinType, LogicalPlan, ScalarExpr};
use dt_storage::ChangeSet;

use crate::merge::project_delta;

/// Supplies per-entity change sets over the refresh interval.
pub trait ChangeProvider {
    /// The changes to `entity` over the interval being differentiated.
    fn changes(&self, entity: EntityId) -> DtResult<ChangeSet>;
}

/// An in-memory change provider (tests, benches).
#[derive(Debug, Clone, Default)]
pub struct MapChanges {
    changes: HashMap<EntityId, ChangeSet>,
}

impl MapChanges {
    /// Empty provider (entities default to no change).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register changes for an entity.
    pub fn insert(&mut self, entity: EntityId, cs: ChangeSet) {
        self.changes.insert(entity, cs);
    }
}

impl ChangeProvider for MapChanges {
    fn changes(&self, entity: EntityId) -> DtResult<ChangeSet> {
        Ok(self.changes.get(&entity).cloned().unwrap_or_default())
    }
}

/// How outer joins are differentiated (§5.5.1 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OuterJoinStrategy {
    /// Direct derivative: restrict both sides to the affected join keys and
    /// recompute the outer join over the restriction at both snapshot ends.
    /// Common terms (the unaffected keys) are factored out entirely.
    #[default]
    Direct,
    /// The original rewrite: outer join = inner join ∪ padded anti-join(s),
    /// differentiated term by term. The `Q` and `R` sub-plans are evaluated
    /// once *per term*, reproducing the duplicated-subplan cost the paper
    /// describes (and abandoned).
    NaiveRewrite,
}

/// Everything a differentiation pass needs: snapshot providers at both ends
/// of the interval plus the per-entity source changes.
pub struct DeltaContext<'a> {
    /// Snapshot at the interval start `t0` (the previous data timestamp).
    pub old: &'a dyn TableProvider,
    /// Snapshot at the interval end `t1` (the new data timestamp).
    pub new: &'a dyn TableProvider,
    /// Source change sets over `(t0, t1]`.
    pub changes: &'a dyn ChangeProvider,
    /// Outer-join differentiation strategy.
    pub outer_join: OuterJoinStrategy,
}

/// Compute `Δ_I plan`: the consolidated change set over the interval.
pub fn delta(plan: &LogicalPlan, ctx: &DeltaContext<'_>) -> DtResult<ChangeSet> {
    Ok(delta_inner(plan, ctx)?.consolidate())
}

/// As [`delta`] but without the final change-consolidation pass — the
/// insert-only specialization of §5.5.2. Only sound when
/// [`crate::merge::is_insert_only_safe`] holds for the plan and every
/// source change set is insert-only; the differentiated output is then
/// guaranteed to contain no cancelling pairs.
pub fn delta_unconsolidated(plan: &LogicalPlan, ctx: &DeltaContext<'_>) -> DtResult<ChangeSet> {
    delta_inner(plan, ctx)
}

fn delta_inner(plan: &LogicalPlan, ctx: &DeltaContext<'_>) -> DtResult<ChangeSet> {
    match plan {
        LogicalPlan::TableScan { entity, .. } => ctx.changes.changes(*entity),
        LogicalPlan::SingleRow => Ok(ChangeSet::empty()),
        LogicalPlan::Filter { input, predicate } => {
            let d = delta_inner(input, ctx)?;
            let keep = |rows: &[Row]| -> DtResult<Vec<Row>> {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    if predicate.eval(r)?.is_true() {
                        out.push(r.clone());
                    }
                }
                Ok(out)
            };
            Ok(ChangeSet::new(keep(d.inserts())?, keep(d.deletes())?))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let d = delta_inner(input, ctx)?;
            project_delta(&d, exprs)
        }
        LogicalPlan::UnionAll { inputs, .. } => {
            let mut out = ChangeSet::empty();
            for i in inputs {
                out.extend(delta_inner(i, ctx)?);
            }
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            ..
        } => match join_type {
            JoinType::Inner => inner_join_delta(left, right, on, ctx),
            _ => match ctx.outer_join {
                OuterJoinStrategy::Direct => {
                    outer_join_delta_direct(left, right, *join_type, on, ctx)
                }
                OuterJoinStrategy::NaiveRewrite => {
                    outer_join_delta_naive(left, right, *join_type, on, ctx)
                }
            },
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            ..
        } => {
            let d = delta_inner(input, ctx)?;
            if d.is_empty() {
                return Ok(ChangeSet::empty());
            }
            let affected = affected_keys(&d, group_exprs)?;
            let restrict = |rows: Vec<Row>| -> DtResult<Vec<Row>> {
                filter_by_keys(rows, group_exprs, &affected)
            };
            let old_rows = restrict(execute(input, ctx.old)?)?;
            let new_rows = restrict(execute(input, ctx.new)?)?;
            let old_out = dt_exec::aggregate::execute_aggregate(&old_rows, group_exprs, aggregates)?;
            let new_out = dt_exec::aggregate::execute_aggregate(&new_rows, group_exprs, aggregates)?;
            // Groups that vanished entirely produce deletes; empty restricted
            // input yields no groups (grouped aggregation over zero rows is
            // the empty set, since group_exprs is non-empty for
            // differentiable plans).
            Ok(ChangeSet::new(new_out, old_out))
        }
        LogicalPlan::Distinct { input } => {
            let d = delta_inner(input, ctx)?;
            if d.is_empty() {
                return Ok(ChangeSet::empty());
            }
            // Affected "keys" are the changed rows themselves.
            let affected: HashSet<Row> = d
                .inserts()
                .iter()
                .chain(d.deletes().iter())
                .cloned()
                .collect();
            let present = |rows: Vec<Row>| -> HashSet<Row> {
                rows.into_iter().filter(|r| affected.contains(r)).collect()
            };
            let old_present = present(execute(input, ctx.old)?);
            let new_present = present(execute(input, ctx.new)?);
            let inserts: Vec<Row> = new_present.difference(&old_present).cloned().collect();
            let deletes: Vec<Row> = old_present.difference(&new_present).cloned().collect();
            Ok(ChangeSet::new(inserts, deletes))
        }
        LogicalPlan::Window { input, exprs, .. } => {
            let d = delta_inner(input, ctx)?;
            if d.is_empty() {
                return Ok(ChangeSet::empty());
            }
            // The paper's rule: recompute every changed partition at both
            // snapshot ends. Partition keys are the union of all window
            // exprs' PARTITION BY keys evaluated on changed rows.
            let mut key_exprs: Vec<ScalarExpr> = Vec::new();
            for w in exprs {
                for k in &w.partition_by {
                    if !key_exprs.contains(k) {
                        key_exprs.push(k.clone());
                    }
                }
            }
            let affected = affected_keys(&d, &key_exprs)?;
            let restrict =
                |rows: Vec<Row>| -> DtResult<Vec<Row>> { filter_by_keys(rows, &key_exprs, &affected) };
            let old_rows = restrict(execute(input, ctx.old)?)?;
            let new_rows = restrict(execute(input, ctx.new)?)?;
            let old_out = dt_exec::window::execute_window(&old_rows, exprs)?;
            let new_out = dt_exec::window::execute_window(&new_rows, exprs)?;
            Ok(ChangeSet::new(new_out, old_out))
        }
        LogicalPlan::Sort { .. } | LogicalPlan::Limit { .. } => Err(dt_common::DtError::Unsupported(
            "ORDER BY / LIMIT plans are not differentiable; use FULL refresh mode".into(),
        )),
    }
}

/// `Δ(Q ⋈ R) = ΔQ ⋈ R₁ + Q₀ ⋈ ΔR` — signed join where insert × insert =
/// insert, insert × delete = delete, etc.
fn inner_join_delta(
    left: &LogicalPlan,
    right: &LogicalPlan,
    on: &ScalarExpr,
    ctx: &DeltaContext<'_>,
) -> DtResult<ChangeSet> {
    let dl = delta_inner(left, ctx)?;
    let dr = delta_inner(right, ctx)?;
    let la = left.schema().len();
    let ra = right.schema().len();
    let mut out = ChangeSet::empty();
    if !dl.is_empty() {
        let r1 = execute(right, ctx.new)?;
        signed_join_into(&mut out, &dl, 1, &plain(&r1), la, ra, on)?;
    }
    if !dr.is_empty() {
        let q0 = execute(left, ctx.old)?;
        signed_join_into(&mut out, &plain(&q0), 1, &dr, la, ra, on)?;
    }
    Ok(out)
}

/// Wrap plain rows as an all-inserts change set (weight +1).
fn plain(rows: &[Row]) -> ChangeSet {
    ChangeSet::new(rows.to_vec(), vec![])
}

/// Join two signed sets, accumulating weighted results into `out`.
fn signed_join_into(
    out: &mut ChangeSet,
    l: &ChangeSet,
    _lw: i64,
    r: &ChangeSet,
    la: usize,
    ra: usize,
    on: &ScalarExpr,
) -> DtResult<()> {
    // Four sign combinations; inner-join execution handles the matching.
    let combos: [(&[Row], &[Row], i64); 4] = [
        (l.inserts(), r.inserts(), 1),
        (l.inserts(), r.deletes(), -1),
        (l.deletes(), r.inserts(), -1),
        (l.deletes(), r.deletes(), 1),
    ];
    for (lrows, rrows, sign) in combos {
        if lrows.is_empty() || rrows.is_empty() {
            continue;
        }
        let joined = dt_exec::join::execute_join(lrows, rrows, la, ra, JoinType::Inner, on)?;
        for row in joined {
            if sign > 0 {
                out.push_insert(row);
            } else {
                out.push_delete(row);
            }
        }
    }
    Ok(())
}

/// Equi-key expressions of the ON condition, as (left exprs, right exprs
/// rebased to the right schema). Returns None when no equi conjunct exists.
fn join_keys(on: &ScalarExpr, la: usize) -> Option<(Vec<ScalarExpr>, Vec<ScalarExpr>)> {
    // Reuse the executor's extraction logic indirectly: re-derive here.
    fn split(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
        if let ScalarExpr::Binary { left, op, right } = e {
            if *op == dt_plan::expr::BinOp::And {
                split(left, out);
                split(right, out);
                return;
            }
        }
        out.push(e.clone());
    }
    fn side(e: &ScalarExpr, la: usize) -> Option<bool> {
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        if cols.is_empty() {
            return None;
        }
        if cols.iter().all(|c| *c < la) {
            Some(true)
        } else if cols.iter().all(|c| *c >= la) {
            Some(false)
        } else {
            None
        }
    }
    let mut conjuncts = Vec::new();
    split(on, &mut conjuncts);
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    for c in &conjuncts {
        if let ScalarExpr::Binary { left, op, right } = c {
            if *op == dt_plan::expr::BinOp::Eq {
                match (side(left, la), side(right, la)) {
                    (Some(true), Some(false)) => {
                        lk.push((**left).clone());
                        rk.push(right.map_columns(&|i| i - la));
                        continue;
                    }
                    (Some(false), Some(true)) => {
                        lk.push((**right).clone());
                        rk.push(left.map_columns(&|i| i - la));
                        continue;
                    }
                    _ => {}
                }
            }
        }
    }
    if lk.is_empty() {
        None
    } else {
        Some((lk, rk))
    }
}

/// Direct outer-join derivative: restrict both inputs to the join keys that
/// appear in either delta, recompute the outer join over the restrictions
/// at both ends of the interval, and emit the difference. Unaffected keys
/// never reach the join — the "factoring out common terms" of §5.5.1.
fn outer_join_delta_direct(
    left: &LogicalPlan,
    right: &LogicalPlan,
    join_type: JoinType,
    on: &ScalarExpr,
    ctx: &DeltaContext<'_>,
) -> DtResult<ChangeSet> {
    let dl = delta_inner(left, ctx)?;
    let dr = delta_inner(right, ctx)?;
    if dl.is_empty() && dr.is_empty() {
        return Ok(ChangeSet::empty());
    }
    let la = left.schema().len();
    let ra = right.schema().len();
    let Some((lk, rk)) = join_keys(on, la) else {
        // No equi keys: every row is potentially affected; fall back to a
        // full recompute diff.
        let old = dt_exec::join::execute_join(
            &execute(left, ctx.old)?,
            &execute(right, ctx.old)?,
            la,
            ra,
            join_type,
            on,
        )?;
        let new = dt_exec::join::execute_join(
            &execute(left, ctx.new)?,
            &execute(right, ctx.new)?,
            la,
            ra,
            join_type,
            on,
        )?;
        return Ok(ChangeSet::new(new, old));
    };
    // Affected key set: keys of changed rows on either side.
    let mut affected: HashSet<Vec<Value>> = HashSet::new();
    collect_keys(&dl, &lk, &mut affected)?;
    collect_keys(&dr, &rk, &mut affected)?;

    let restrict_l =
        |rows: Vec<Row>| -> DtResult<Vec<Row>> { filter_by_keys(rows, &lk, &affected) };
    let restrict_r =
        |rows: Vec<Row>| -> DtResult<Vec<Row>> { filter_by_keys(rows, &rk, &affected) };

    let l0 = restrict_l(execute(left, ctx.old)?)?;
    let r0 = restrict_r(execute(right, ctx.old)?)?;
    let l1 = restrict_l(execute(left, ctx.new)?)?;
    let r1 = restrict_r(execute(right, ctx.new)?)?;

    let old = dt_exec::join::execute_join(&l0, &r0, la, ra, join_type, on)?;
    let new = dt_exec::join::execute_join(&l1, &r1, la, ra, join_type, on)?;
    Ok(ChangeSet::new(new, old))
}

/// Naive outer-join derivative via the inner ∪ anti rewrite. The rewrite
/// `Δ(Q ⟕ R) = Δ(Q ⋈ R) + Δ(π_{R=NULL}(Q ▷ R))` repeats the `Q` and `R`
/// terms; each term evaluates its sub-plans independently, so the input
/// plans are executed roughly twice as often as in the direct form — the
/// duplicated-subplan cost of §5.5.1. Results are identical.
fn outer_join_delta_naive(
    left: &LogicalPlan,
    right: &LogicalPlan,
    join_type: JoinType,
    on: &ScalarExpr,
    ctx: &DeltaContext<'_>,
) -> DtResult<ChangeSet> {
    let la = left.schema().len();
    let ra = right.schema().len();
    // Term 1: the inner-join delta.
    let mut out = inner_join_delta(left, right, on, ctx)?;
    // Terms 2/3: deltas of the padded anti-joins. Computed as full
    // recompute diffs of the anti-join terms (re-evaluating Q and R).
    if matches!(join_type, JoinType::Left | JoinType::Full) {
        let old = anti_join_padded(&execute(left, ctx.old)?, &execute(right, ctx.old)?, la, ra, on, true)?;
        let new = anti_join_padded(&execute(left, ctx.new)?, &execute(right, ctx.new)?, la, ra, on, true)?;
        out.extend(ChangeSet::new(new, old));
    }
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        let old = anti_join_padded(&execute(left, ctx.old)?, &execute(right, ctx.old)?, la, ra, on, false)?;
        let new = anti_join_padded(&execute(left, ctx.new)?, &execute(right, ctx.new)?, la, ra, on, false)?;
        out.extend(ChangeSet::new(new, old));
    }
    Ok(out)
}

/// `π_{other=NULL}(probe ▷ build)`: rows of one side with no join partner,
/// padded with NULLs on the other side.
fn anti_join_padded(
    left: &[Row],
    right: &[Row],
    la: usize,
    ra: usize,
    on: &ScalarExpr,
    left_side: bool,
) -> DtResult<Vec<Row>> {
    // Run the appropriate half-outer join and keep only padded rows.
    let jt = if left_side { JoinType::Left } else { JoinType::Right };
    let joined = dt_exec::join::execute_join(left, right, la, ra, jt, on)?;
    let out = joined
        .into_iter()
        .filter(|r| {
            if left_side {
                r.values()[la..].iter().all(Value::is_null)
            } else {
                r.values()[..la].iter().all(Value::is_null)
            }
        })
        .collect();
    Ok(out)
}

fn collect_keys(
    d: &ChangeSet,
    key_exprs: &[ScalarExpr],
    out: &mut HashSet<Vec<Value>>,
) -> DtResult<()> {
    for r in d.inserts().iter().chain(d.deletes().iter()) {
        let mut k = Vec::with_capacity(key_exprs.len());
        for e in key_exprs {
            k.push(e.eval(r)?);
        }
        out.insert(k);
    }
    Ok(())
}

fn affected_keys(d: &ChangeSet, key_exprs: &[ScalarExpr]) -> DtResult<HashSet<Vec<Value>>> {
    let mut out = HashSet::new();
    collect_keys(d, key_exprs, &mut out)?;
    Ok(out)
}

fn filter_by_keys(
    rows: Vec<Row>,
    key_exprs: &[ScalarExpr],
    keys: &HashSet<Vec<Value>>,
) -> DtResult<Vec<Row>> {
    let mut out = Vec::new();
    for r in rows {
        let mut k = Vec::with_capacity(key_exprs.len());
        for e in key_exprs {
            k.push(e.eval(&r)?);
        }
        if keys.contains(&k) {
            out.push(r);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;
    use dt_exec::MapProvider;

    mod fixtures {
        use super::*;

        /// Apply a change set to a row multiset.
        pub fn apply(mut rows: Vec<Row>, cs: &ChangeSet) -> Vec<Row> {
            for d in cs.deletes() {
                let pos = rows
                    .iter()
                    .position(|r| r == d)
                    .unwrap_or_else(|| panic!("delete of missing row {d}"));
                rows.swap_remove(pos);
            }
            rows.extend(cs.inserts().iter().cloned());
            rows.sort();
            rows
        }
    }

    /// Check Δ correctness: old result + Δ == new result (as multisets).
    fn check_delta(
        plan: &LogicalPlan,
        old: &MapProvider,
        new: &MapProvider,
        changes: &MapChanges,
        strategy: OuterJoinStrategy,
    ) -> ChangeSet {
        let ctx = DeltaContext {
            old,
            new,
            changes,
            outer_join: strategy,
        };
        let d = delta(plan, &ctx).unwrap();
        let mut expect = execute(plan, new).unwrap();
        expect.sort();
        let got = fixtures::apply(execute(plan, old).unwrap(), &d);
        assert_eq!(got, expect, "delta did not reconcile old to new");
        d
    }

    use dt_common::{Column, DataType, DtError, EntityId, Schema};
    use std::sync::Arc;

    fn scan(id: u64, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::TableScan {
            entity: EntityId(id),
            name: format!("t{id}"),
            schema: Arc::new(Schema::new(
                cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
            )),
            pushdown: None,
        }
    }

    fn two_int_scan(id: u64) -> LogicalPlan {
        scan(id, &[("k", DataType::Int), ("v", DataType::Int)])
    }

    /// Fixture: t1 = {(1,10),(2,20)} → {(1,10),(2,25),(3,30)}.
    fn fixture() -> (MapProvider, MapProvider, MapChanges) {
        let mut old = MapProvider::new();
        old.insert(EntityId(1), vec![row!(1i64, 10i64), row!(2i64, 20i64)]);
        let mut new = MapProvider::new();
        new.insert(
            EntityId(1),
            vec![row!(1i64, 10i64), row!(2i64, 25i64), row!(3i64, 30i64)],
        );
        let mut ch = MapChanges::new();
        ch.insert(
            EntityId(1),
            ChangeSet::new(
                vec![row!(2i64, 25i64), row!(3i64, 30i64)],
                vec![row!(2i64, 20i64)],
            ),
        );
        (old, new, ch)
    }

    #[test]
    fn scan_delta_is_source_change() {
        let (old, new, ch) = fixture();
        let plan = two_int_scan(1);
        let d = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn filter_delta() {
        let (old, new, ch) = fixture();
        let plan = LogicalPlan::Filter {
            input: Box::new(two_int_scan(1)),
            predicate: ScalarExpr::Binary {
                left: Box::new(ScalarExpr::col(1)),
                op: dt_plan::expr::BinOp::Gt,
                right: Box::new(ScalarExpr::lit(15i64)),
            },
        };
        let d = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
        // (1,10) changes filtered out entirely.
        assert!(d
            .inserts()
            .iter()
            .chain(d.deletes().iter())
            .all(|r| r.get(1).expect_int().unwrap() > 15));
    }

    #[test]
    fn project_delta_applies_exprs() {
        let (old, new, ch) = fixture();
        let plan = LogicalPlan::Project {
            input: Box::new(two_int_scan(1)),
            exprs: vec![ScalarExpr::col(0)],
            schema: Arc::new(Schema::new(vec![Column::new("k", DataType::Int)])),
        };
        let d = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
        // Projection makes the (2,20)→(2,25) update cancel on column k.
        assert_eq!(d.inserts(), &[row!(3i64)]);
        assert!(d.deletes().is_empty());
    }

    fn join_fixture() -> (MapProvider, MapProvider, MapChanges, LogicalPlan) {
        // left(1): k,v — right(2): k,w
        let mut old = MapProvider::new();
        old.insert(EntityId(1), vec![row!(1i64, 10i64), row!(2i64, 20i64)]);
        old.insert(EntityId(2), vec![row!(1i64, 100i64), row!(9i64, 900i64)]);
        let mut new = MapProvider::new();
        new.insert(
            EntityId(1),
            vec![row!(1i64, 10i64), row!(2i64, 20i64), row!(9i64, 90i64)],
        );
        new.insert(EntityId(2), vec![row!(1i64, 100i64), row!(1i64, 101i64)]);
        let mut ch = MapChanges::new();
        ch.insert(EntityId(1), ChangeSet::new(vec![row!(9i64, 90i64)], vec![]));
        ch.insert(
            EntityId(2),
            ChangeSet::new(vec![row!(1i64, 101i64)], vec![row!(9i64, 900i64)]),
        );
        let on = ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2));
        let plan = LogicalPlan::Join {
            left: Box::new(two_int_scan(1)),
            right: Box::new(scan(2, &[("k", DataType::Int), ("w", DataType::Int)])),
            join_type: JoinType::Inner,
            on,
            schema: Arc::new(Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
                Column::new("k2", DataType::Int),
                Column::new("w", DataType::Int),
            ])),
        };
        (old, new, ch, plan)
    }

    #[test]
    fn inner_join_delta_bilinear() {
        let (old, new, ch, plan) = join_fixture();
        check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
    }

    #[test]
    fn outer_join_deltas_both_strategies_agree() {
        for jt in [JoinType::Left, JoinType::Right, JoinType::Full] {
            let (old, new, ch, plan) = join_fixture();
            let LogicalPlan::Join {
                left, right, on, schema, ..
            } = plan
            else {
                panic!()
            };
            let plan = LogicalPlan::Join {
                left,
                right,
                join_type: jt,
                on,
                schema,
            };
            let d1 = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
            let d2 = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::NaiveRewrite);
            // Consolidated deltas must be identical.
            let mut a = (d1.inserts().to_vec(), d1.deletes().to_vec());
            let mut b = (d2.inserts().to_vec(), d2.deletes().to_vec());
            a.0.sort();
            a.1.sort();
            b.0.sort();
            b.1.sort();
            assert_eq!(a, b, "strategies disagree for {jt:?}");
        }
    }

    #[test]
    fn aggregate_delta_affected_groups_only() {
        let (old, new, ch) = fixture();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(two_int_scan(1)),
            group_exprs: vec![ScalarExpr::col(0)],
            aggregates: vec![dt_plan::AggExpr {
                func: dt_plan::AggFunc::Sum,
                arg: Some(ScalarExpr::col(1)),
                distinct: false,
                name: "s".into(),
            }],
            schema: Arc::new(Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("s", DataType::Int),
            ])),
        };
        let d = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
        // Group k=1 is unaffected: no delta rows may mention it.
        assert!(d
            .inserts()
            .iter()
            .chain(d.deletes().iter())
            .all(|r| r.get(0) != &Value::Int(1)));
    }

    #[test]
    fn distinct_delta() {
        // Distinct over k: old {1,2}, new {1,2,3} + dup of 2.
        let (old, new, ch) = fixture();
        let plan = LogicalPlan::Distinct {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(two_int_scan(1)),
                exprs: vec![ScalarExpr::col(0)],
                schema: Arc::new(Schema::new(vec![Column::new("k", DataType::Int)])),
            }),
        };
        let d = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
        assert_eq!(d.inserts(), &[row!(3i64)]);
        assert!(d.deletes().is_empty());
    }

    #[test]
    fn window_delta_partition_recompute() {
        let (old, new, ch) = fixture();
        let plan = LogicalPlan::Window {
            input: Box::new(two_int_scan(1)),
            exprs: vec![dt_plan::WindowExpr {
                func: dt_plan::WindowFunc::Sum,
                arg: Some(ScalarExpr::col(1)),
                partition_by: vec![ScalarExpr::col(0)],
                order_by: vec![],
                name: "w".into(),
            }],
            schema: Arc::new(Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
                Column::new("w", DataType::Int),
            ])),
        };
        let d = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
        // Partition k=1 untouched.
        assert!(d
            .inserts()
            .iter()
            .chain(d.deletes().iter())
            .all(|r| r.get(0) != &Value::Int(1)));
    }

    #[test]
    fn union_all_delta() {
        let (old, new, ch) = fixture();
        let plan = LogicalPlan::UnionAll {
            inputs: vec![two_int_scan(1), two_int_scan(1)],
            schema: two_int_scan(1).schema(),
        };
        let d = check_delta(&plan, &old, &new, &ch, OuterJoinStrategy::Direct);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn no_change_produces_empty_delta_without_scanning() {
        let (old, _, _) = fixture();
        let empty = MapChanges::new();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(two_int_scan(1)),
            group_exprs: vec![ScalarExpr::col(0)],
            aggregates: vec![],
            schema: Arc::new(Schema::new(vec![Column::new("k", DataType::Int)])),
        };
        // `new` provider deliberately has no data for entity 1: if the
        // delta path touched it, it would error. It must not.
        let ctx = DeltaContext {
            old: &old,
            new: &MapProvider::new(),
            changes: &empty,
            outer_join: OuterJoinStrategy::Direct,
        };
        assert!(delta(&plan, &ctx).unwrap().is_empty());
    }

    #[test]
    fn sort_and_limit_are_not_differentiable() {
        let (old, new, ch) = fixture();
        let plan = LogicalPlan::Limit {
            input: Box::new(two_int_scan(1)),
            n: 1,
        };
        let ctx = DeltaContext {
            old: &old,
            new: &new,
            changes: &ch,
            outer_join: OuterJoinStrategy::Direct,
        };
        assert!(matches!(
            delta(&plan, &ctx),
            Err(DtError::Unsupported(_))
        ));
    }
}
