//! Query differentiation: the incremental view maintenance engine.
//!
//! This crate reproduces the extensible differentiation framework of §5.5:
//! given a defining query `Q` and a data-timestamp interval `I = (t0, t1]`,
//! it computes `Δ_I Q` — the set of row insertions and deletions that
//! transform `Q`'s result at `t0` into its result at `t1` — purely in terms
//! of the sources (the framework "does not reuse state from preceding data
//! timestamps", §5.5.3).
//!
//! Differentiation rules per operator:
//!
//! * **scan** — the storage change scan over the interval.
//! * **filter / project / union all** — linear: apply to the delta.
//! * **inner join** — bilinearity: `Δ(Q ⋈ R) = ΔQ ⋈ R₁ + Q₀ ⋈ ΔR`.
//! * **outer joins** — either the *direct* derivative (affected-join-key
//!   restricted recompute, factoring out common terms) or the *naive*
//!   inner-join + anti-join rewrite that duplicates the `Q`/`R` terms —
//!   the trade-off §5.5.1 describes. Both are implemented; the naive form
//!   exists as the ablation baseline.
//! * **distinct / grouped aggregation** — affected-key recompute.
//! * **window functions** — the paper's partition-recompute rule:
//!   `Δ(ξₖ(Q)) = π₋(ξₖ(Q|I₀ ⋉ₖ ΔQ)) + π₊(ξₖ(Q|I₁ ⋉ₖ ΔQ))`.
//!
//! The [`merge`] module implements `$ROW_ID`/`$ACTION` assignment, change
//! consolidation, and the two production invariants of §6.1: no duplicate
//! `($ROW_ID, $ACTION)` pair, and no delete of a nonexistent row.

pub mod differentiate;
pub mod merge;

pub use differentiate::{delta, delta_unconsolidated, ChangeProvider, DeltaContext, MapChanges, OuterJoinStrategy};
pub use merge::{assign_change_rows, ChangeRow, MergeAction, StoredRows};
