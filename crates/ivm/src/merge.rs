//! `$ROW_ID` / `$ACTION` assignment and the merge step.
//!
//! §5.5: "Incremental DTs define a unique ID for every row in the query
//! result, and store those IDs alongside the data. [...] These changes are
//! a set of rows with the same columns as Q, plus 2 additional metadata
//! columns. The $ACTION column indicates whether a row represents an
//! insertion or a deletion. [...] The $ROW_ID column provides the
//! identifier of the row to be modified."
//!
//! Row ids are content hashes with an *occurrence index* so duplicate rows
//! in a bag each get a distinct id, plus a plaintext prefix (§5.5.2: the
//! production system uses plaintext prefixes to improve runtime pruning on
//! row-id joins; we reproduce the format).
//!
//! The merge enforces the two production validations of §6.1:
//!
//! 1. never more than one row per `($ROW_ID, $ACTION)` pair, and
//! 2. never a delete of a row that does not exist.
//!
//! Both fail the refresh rather than corrupt the table.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use dt_common::{DtError, DtResult, Row, Value};
use dt_plan::ScalarExpr;
use dt_storage::ChangeSet;

/// The action of a change row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeAction {
    /// `$ACTION = INSERT`.
    Insert,
    /// `$ACTION = DELETE`.
    Delete,
}

/// One row of the differentiated result: payload plus metadata columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeRow {
    /// `$ACTION`.
    pub action: MergeAction,
    /// `$ROW_ID`.
    pub row_id: String,
    /// The payload columns.
    pub row: Row,
}

/// Hash of a row's content (stable across refreshes).
fn content_hash(row: &Row) -> u64 {
    let mut h = DefaultHasher::new();
    row.hash(&mut h);
    h.finish()
}

/// Build the row id for the `occurrence`-th copy of `row`. The plaintext
/// prefix carries the low bits of the hash for pruning-friendly sorting.
pub fn make_row_id(row: &Row, occurrence: usize) -> String {
    let h = content_hash(row);
    format!("{:04x}-{:016x}-{}", h & 0xffff, h, occurrence)
}

/// The stored contents of an incremental DT: rows with their row ids.
#[derive(Debug, Clone, Default)]
pub struct StoredRows {
    /// (row_id, payload) pairs, as persisted.
    rows: Vec<(String, Row)>,
}

impl StoredRows {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild from persisted (row_id, payload) pairs.
    pub fn from_pairs(rows: Vec<(String, Row)>) -> Self {
        StoredRows { rows }
    }

    /// Initialize from a full query result, assigning fresh row ids.
    pub fn initialize(rows: Vec<Row>) -> Self {
        let mut occ: HashMap<u64, usize> = HashMap::new();
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            let h = content_hash(&r);
            let n = occ.entry(h).or_insert(0);
            out.push((make_row_id(&r, *n), r));
            *n += 1;
        }
        StoredRows { rows: out }
    }

    /// The payload rows (what a SELECT sees).
    pub fn payload(&self) -> Vec<Row> {
        self.rows.iter().map(|(_, r)| r.clone()).collect()
    }

    /// The persisted pairs.
    pub fn pairs(&self) -> &[(String, Row)] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Apply assigned change rows, upholding validation #2 (no duplicate
    /// `($ROW_ID, $ACTION)`) and #3 (no delete of a nonexistent row).
    pub fn apply(&mut self, changes: &[ChangeRow]) -> DtResult<()> {
        // Validation #2.
        let mut seen: HashMap<(&str, MergeAction), usize> = HashMap::new();
        for c in changes {
            let n = seen.entry((c.row_id.as_str(), c.action)).or_insert(0);
            *n += 1;
            if *n > 1 {
                return Err(DtError::IvmInvariant(format!(
                    "duplicate ($ROW_ID, $ACTION) pair: ({}, {:?})",
                    c.row_id, c.action
                )));
            }
        }
        // Deletes first (an update is a delete + insert of the same id).
        for c in changes.iter().filter(|c| c.action == MergeAction::Delete) {
            let pos = self
                .rows
                .iter()
                .position(|(id, _)| *id == c.row_id)
                .ok_or_else(|| {
                    DtError::IvmInvariant(format!(
                        "delete of nonexistent row id {} (payload {})",
                        c.row_id, c.row
                    ))
                })?;
            self.rows.swap_remove(pos);
        }
        for c in changes.iter().filter(|c| c.action == MergeAction::Insert) {
            self.rows.push((c.row_id.clone(), c.row.clone()));
        }
        Ok(())
    }
}

/// Assign `$ROW_ID`s to a consolidated change set against the current
/// stored rows: deletes claim the ids of existing copies of their payload;
/// inserts mint ids at the next free occurrence index. Fails with the §6.1
/// invariant error when a delete cannot be matched.
pub fn assign_change_rows(stored: &StoredRows, delta: &ChangeSet) -> DtResult<Vec<ChangeRow>> {
    // Index existing ids by payload content.
    let mut by_content: HashMap<&Row, Vec<&str>> = HashMap::new();
    for (id, r) in stored.pairs() {
        by_content.entry(r).or_default().push(id);
    }
    let mut out = Vec::with_capacity(delta.len());
    // Deletes claim ids from the back (highest occurrence first keeps the
    // lowest-occurrence ids stable across refreshes).
    let mut claimed: HashMap<&Row, usize> = HashMap::new();
    for d in delta.deletes() {
        let ids = by_content.get(d).map(|v| v.as_slice()).unwrap_or(&[]);
        let n_claimed = claimed.entry(d).or_insert(0);
        if *n_claimed >= ids.len() {
            return Err(DtError::IvmInvariant(format!(
                "delete of nonexistent row {d}"
            )));
        }
        let id = ids[ids.len() - 1 - *n_claimed];
        *n_claimed += 1;
        out.push(ChangeRow {
            action: MergeAction::Delete,
            row_id: id.to_string(),
            row: d.clone(),
        });
    }
    // Inserts mint fresh occurrence indices: existing copies − claimed
    // deletes + already-minted inserts of the same content.
    let mut minted: HashMap<&Row, usize> = HashMap::new();
    for i in delta.inserts() {
        let existing = by_content.get(i).map(|v| v.len()).unwrap_or(0);
        let deleted = claimed.get(i).copied().unwrap_or(0);
        let fresh = minted.entry(i).or_insert(0);
        // Occurrence indices 0..existing are (possibly) taken; deletes freed
        // the top `deleted` of them. Reuse freed slots first.
        let occurrence = existing - deleted + *fresh;
        *fresh += 1;
        out.push(ChangeRow {
            action: MergeAction::Insert,
            row_id: make_row_id(i, occurrence),
            row: i.clone(),
        });
    }
    Ok(out)
}

/// Apply a projection to both sides of a change set (the Δ rule for π).
pub fn project_delta(d: &ChangeSet, exprs: &[ScalarExpr]) -> DtResult<ChangeSet> {
    let apply = |rows: &[Row]| -> DtResult<Vec<Row>> {
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            let mut vals = Vec::with_capacity(exprs.len());
            for e in exprs {
                vals.push(e.eval(r)?);
            }
            out.push(Row::new(vals));
        }
        Ok(out)
    };
    Ok(ChangeSet::new(apply(d.inserts())?, apply(d.deletes())?))
}

/// True when a plan is *insert-only safe*: if all source changes are pure
/// inserts, the differentiated output is also pure inserts with no
/// duplicate content collisions requiring consolidation (§5.5.2's
/// insert-only specialization). Holds for scan/filter/project/union-all/
/// inner-join compositions.
pub fn is_insert_only_safe(plan: &dt_plan::LogicalPlan) -> bool {
    use dt_plan::LogicalPlan as P;
    let mut ok = true;
    plan.walk(&mut |p| match p {
        P::TableScan { .. }
        | P::SingleRow
        | P::Filter { .. }
        | P::Project { .. }
        | P::UnionAll { .. } => {}
        P::Join { join_type, .. } if *join_type == dt_plan::JoinType::Inner => {}
        _ => ok = false,
    });
    ok
}

/// Check whether every source change set is insert-only.
pub fn changes_are_insert_only<'a>(
    changes: impl Iterator<Item = &'a ChangeSet>,
) -> bool {
    let mut any = false;
    for c in changes {
        any = true;
        if !c.deletes().is_empty() {
            return false;
        }
    }
    any
}

/// Drop-in helper used by benches: skip consolidation when both the plan
/// structure and the source changes guarantee it is a no-op.
pub fn maybe_consolidate(
    plan: &dt_plan::LogicalPlan,
    sources_insert_only: bool,
    delta: ChangeSet,
) -> ChangeSet {
    if sources_insert_only && is_insert_only_safe(plan) {
        delta
    } else {
        delta.consolidate()
    }
}

/// NULL-free helper used when building key tuples for row-id prefix tests.
pub fn row_has_null(row: &Row) -> bool {
    row.values().iter().any(Value::is_null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;

    #[test]
    fn initialize_assigns_distinct_ids_to_duplicates() {
        let s = StoredRows::initialize(vec![row!(1i64), row!(1i64), row!(2i64)]);
        let ids: std::collections::HashSet<_> =
            s.pairs().iter().map(|(id, _)| id.clone()).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn row_ids_are_stable_and_prefixed() {
        let a = make_row_id(&row!(1i64, "x"), 0);
        let b = make_row_id(&row!(1i64, "x"), 0);
        assert_eq!(a, b);
        // prefix-hash-occurrence format.
        assert_eq!(a.split('-').count(), 3);
        assert_ne!(a, make_row_id(&row!(1i64, "x"), 1));
    }

    #[test]
    fn assign_update_delete_insert_roundtrip() {
        let mut s = StoredRows::initialize(vec![row!(1i64), row!(2i64)]);
        let delta = ChangeSet::new(vec![row!(3i64)], vec![row!(2i64)]);
        let changes = assign_change_rows(&s, &delta).unwrap();
        s.apply(&changes).unwrap();
        let mut p = s.payload();
        p.sort();
        assert_eq!(p, vec![row!(1i64), row!(3i64)]);
    }

    #[test]
    fn delete_of_missing_row_is_invariant_violation() {
        let s = StoredRows::initialize(vec![row!(1i64)]);
        let delta = ChangeSet::new(vec![], vec![row!(99i64)]);
        let err = assign_change_rows(&s, &delta).unwrap_err();
        assert!(matches!(err, DtError::IvmInvariant(_)));
    }

    #[test]
    fn deleting_more_copies_than_stored_fails() {
        let s = StoredRows::initialize(vec![row!(1i64)]);
        let delta = ChangeSet::new(vec![], vec![row!(1i64), row!(1i64)]);
        assert!(assign_change_rows(&s, &delta).is_err());
    }

    #[test]
    fn duplicate_row_id_action_rejected_by_apply() {
        let mut s = StoredRows::initialize(vec![]);
        let c = ChangeRow {
            action: MergeAction::Insert,
            row_id: "x".into(),
            row: row!(1i64),
        };
        let err = s.apply(&[c.clone(), c]).unwrap_err();
        assert!(matches!(err, DtError::IvmInvariant(_)));
    }

    #[test]
    fn duplicate_content_inserts_get_distinct_ids() {
        let s = StoredRows::initialize(vec![row!(7i64)]);
        let delta = ChangeSet::new(vec![row!(7i64), row!(7i64)], vec![]);
        let changes = assign_change_rows(&s, &delta).unwrap();
        let ids: std::collections::HashSet<_> =
            changes.iter().map(|c| c.row_id.clone()).collect();
        assert_eq!(ids.len(), 2);
        // And they don't collide with the stored copy's id.
        assert!(!ids.contains(&s.pairs()[0].0));
    }

    #[test]
    fn delete_then_reinsert_same_content_reuses_freed_slot() {
        let mut s = StoredRows::initialize(vec![row!(5i64), row!(5i64)]);
        // Update-like churn: delete one copy, insert one copy.
        let delta = ChangeSet::new(vec![row!(5i64)], vec![row!(5i64)]);
        let changes = assign_change_rows(&s, &delta).unwrap();
        s.apply(&changes).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_only_safety_detection() {
        use dt_plan::LogicalPlan as P;
        use std::sync::Arc;
        let scan = P::TableScan {
            entity: dt_common::EntityId(1),
            name: "t".into(),
            schema: Arc::new(dt_common::Schema::empty()),
            pushdown: None,
        };
        assert!(is_insert_only_safe(&scan));
        let agg = P::Distinct {
            input: Box::new(scan.clone()),
        };
        assert!(!is_insert_only_safe(&agg));

        let cs_ins = ChangeSet::new(vec![row!(1i64)], vec![]);
        let cs_del = ChangeSet::new(vec![], vec![row!(1i64)]);
        assert!(changes_are_insert_only([&cs_ins].into_iter()));
        assert!(!changes_are_insert_only([&cs_ins, &cs_del].into_iter()));
    }
}
