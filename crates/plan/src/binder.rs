//! Name resolution and plan construction.
//!
//! The binder lowers an AST query to a [`LogicalPlan`], resolving relation
//! names through a [`Resolver`] (implemented by the catalog), expanding
//! views inline, and tracking exactly which columns of which upstream
//! entities the query reads — the dependency metadata the paper's query
//! evolution uses (§5.4).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use dt_common::{Column, DataType, DtError, DtResult, EntityId, Schema, Value};
use dt_sql::ast;

use crate::expr::{AggExpr, AggFunc, BinOp, ScalarExpr, ScalarFunc, WindowExpr, WindowFunc};
use crate::plan::{JoinType, LogicalPlan};

/// What a relation name resolves to.
#[derive(Debug, Clone)]
pub enum ResolvedRelation {
    /// A stored relation (base table or dynamic table): scanned directly.
    Table {
        /// The catalog entity.
        entity: EntityId,
        /// Its schema.
        schema: Schema,
    },
    /// A view: its SQL is parsed and bound inline.
    View {
        /// The view's defining query text.
        sql: String,
    },
}

/// Resolves relation names during binding (implemented by the catalog).
pub trait Resolver {
    /// Resolve `name` to a stored relation or a view.
    fn resolve_relation(&self, name: &str) -> DtResult<ResolvedRelation>;
}

/// The result of binding a query.
#[derive(Debug, Clone)]
pub struct BindOutput {
    /// The bound plan.
    pub plan: LogicalPlan,
    /// Columns read from each upstream entity (§5.4 dependency tracking).
    pub used_columns: BTreeMap<EntityId, BTreeSet<String>>,
}

/// One column visible in a binding scope.
#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
    ty: DataType,
    /// The storage entity this column ultimately comes from, when it is a
    /// direct table column (used-column tracking).
    entity: Option<EntityId>,
}

/// A binding scope: the columns of the current FROM row.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn from_schema(
        schema: &Schema,
        qualifier: Option<&str>,
        entity: Option<EntityId>,
    ) -> Scope {
        Scope {
            cols: schema
                .columns()
                .iter()
                .map(|c| ScopeCol {
                    qualifier: qualifier.map(|q| q.to_ascii_lowercase()),
                    name: c.name.clone(),
                    ty: c.ty,
                    entity,
                })
                .collect(),
        }
    }

    fn concat(&self, other: &Scope) -> Scope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Scope { cols }
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> DtResult<usize> {
        let lname = name.to_ascii_lowercase();
        let lq = qualifier.map(|q| q.to_ascii_lowercase());
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let q_ok = match &lq {
                Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
                None => true,
            };
            if q_ok && c.name == lname {
                if found.is_some() {
                    return Err(DtError::Binding(format!(
                        "ambiguous column '{}'",
                        display_col(qualifier, name)
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            DtError::Binding(format!("unknown column '{}'", display_col(qualifier, name)))
        })
    }

    fn types(&self) -> Vec<DataType> {
        self.cols.iter().map(|c| c.ty).collect()
    }
}

fn display_col(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

/// The binder.
pub struct Binder<'a> {
    resolver: &'a dyn Resolver,
    used_columns: BTreeMap<EntityId, BTreeSet<String>>,
    view_depth: usize,
}

impl<'a> Binder<'a> {
    /// Build a binder over a resolver.
    pub fn new(resolver: &'a dyn Resolver) -> Self {
        Binder {
            resolver,
            used_columns: BTreeMap::new(),
            view_depth: 0,
        }
    }

    /// Bind a full query.
    pub fn bind_query(mut self, q: &ast::Query) -> DtResult<BindOutput> {
        let plan = self.bind_query_inner(q)?;
        Ok(BindOutput {
            plan,
            used_columns: self.used_columns,
        })
    }

    fn bind_query_inner(&mut self, q: &ast::Query) -> DtResult<LogicalPlan> {
        let first = self.bind_select_block(&q.select)?;
        if q.union_all.is_empty() {
            return Ok(first);
        }
        let schema = first.schema();
        let mut inputs = vec![first];
        for block in &q.union_all {
            let p = self.bind_select_block(block)?;
            if p.schema().len() != schema.len() {
                return Err(DtError::Binding(format!(
                    "UNION ALL arity mismatch: {} vs {}",
                    schema.len(),
                    p.schema().len()
                )));
            }
            inputs.push(p);
        }
        Ok(LogicalPlan::UnionAll { inputs, schema })
    }

    fn bind_relation(&mut self, r: &ast::TableRef) -> DtResult<(LogicalPlan, Scope)> {
        match r {
            ast::TableRef::Named { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                match self.resolver.resolve_relation(name)? {
                    ResolvedRelation::Table { entity, schema } => {
                        let scope = Scope::from_schema(&schema, Some(binding), Some(entity));
                        Ok((
                            LogicalPlan::TableScan {
                                entity,
                                name: name.to_ascii_lowercase(),
                                schema: Arc::new(schema),
                                pushdown: None,
                            },
                            scope,
                        ))
                    }
                    ResolvedRelation::View { sql } => {
                        if self.view_depth > 16 {
                            return Err(DtError::Binding(format!(
                                "view nesting too deep while expanding '{name}'"
                            )));
                        }
                        self.view_depth += 1;
                        let parsed = dt_sql::parse(&sql)?;
                        let ast::Statement::Query(vq) = parsed else {
                            return Err(DtError::Binding(format!(
                                "view '{name}' does not define a query"
                            )));
                        };
                        let plan = self.bind_query_inner(&vq)?;
                        self.view_depth -= 1;
                        let scope = Scope::from_schema(&plan.schema(), Some(binding), None);
                        Ok((plan, scope))
                    }
                }
            }
            ast::TableRef::Subquery { query, alias } => {
                let plan = self.bind_query_inner(query)?;
                let scope = Scope::from_schema(&plan.schema(), Some(alias), None);
                Ok((plan, scope))
            }
        }
    }

    fn bind_select_block(&mut self, b: &ast::SelectBlock) -> DtResult<LogicalPlan> {
        // 1. FROM + JOINs.
        let (mut plan, mut scope) = match &b.from {
            Some(r) => self.bind_relation(r)?,
            None => (LogicalPlan::SingleRow, Scope::default()),
        };
        for join in &b.joins {
            let (right_plan, right_scope) = self.bind_relation(&join.relation)?;
            let combined = scope.concat(&right_scope);
            let on = self.bind_scalar(&join.on, &combined)?;
            let join_type = match join.join_type {
                ast::JoinType::Inner => JoinType::Inner,
                ast::JoinType::Left => JoinType::Left,
                ast::JoinType::Right => JoinType::Right,
                ast::JoinType::Full => JoinType::Full,
            };
            let schema = Arc::new(plan.schema().join(&right_plan.schema()));
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(right_plan),
                join_type,
                on,
                schema,
            };
            scope = combined;
        }

        // 2. WHERE.
        if let Some(w) = &b.where_clause {
            let predicate = self.bind_scalar(w, &scope)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // 3. Aggregation.
        let has_aggs = select_items_contain_aggregate(&b.items)
            || b.having.as_ref().is_some_and(expr_contains_aggregate);
        let explicit_group = !matches!(b.group_by, ast::GroupBy::None);
        let (plan, item_exprs, item_names) = if has_aggs || explicit_group {
            self.bind_aggregate_block(b, plan, &scope)?
        } else {
            // 4a. Window functions (non-aggregate path).
            let mut window_exprs: Vec<WindowExpr> = Vec::new();
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for item in &b.items {
                match item {
                    ast::SelectItem::Wildcard => {
                        for (i, c) in scope.cols.iter().enumerate() {
                            self.note_use(c);
                            exprs.push(ScalarExpr::Column(i));
                            names.push(c.name.clone());
                        }
                    }
                    ast::SelectItem::QualifiedWildcard(q) => {
                        let lq = q.to_ascii_lowercase();
                        let mut any = false;
                        for (i, c) in scope.cols.iter().enumerate() {
                            if c.qualifier.as_deref() == Some(lq.as_str()) {
                                self.note_use(c);
                                exprs.push(ScalarExpr::Column(i));
                                names.push(c.name.clone());
                                any = true;
                            }
                        }
                        if !any {
                            return Err(DtError::Binding(format!("unknown relation '{q}'")));
                        }
                    }
                    ast::SelectItem::Expr { expr, alias } => {
                        let bound =
                            self.bind_scalar_with_windows(expr, &scope, &mut window_exprs)?;
                        names.push(alias.clone().unwrap_or_else(|| derive_name(expr, &exprs)));
                        exprs.push(bound);
                    }
                }
            }
            let plan = if window_exprs.is_empty() {
                plan
            } else {
                let mut cols = plan.schema().columns().to_vec();
                for w in &window_exprs {
                    let arg_ty = w.arg.as_ref().map(|a| a.infer_type(&scope.types()));
                    cols.push(Column::new(w.name.clone(), w.func.result_type(arg_ty)));
                }
                LogicalPlan::Window {
                    input: Box::new(plan),
                    exprs: window_exprs,
                    schema: Arc::new(Schema::new(cols)),
                }
            };
            (plan, exprs, names)
        };

        // 5. Projection.
        let input_types: Vec<DataType> = plan
            .schema()
            .columns()
            .iter()
            .map(|c| c.ty)
            .collect();
        let out_cols: Vec<Column> = item_exprs
            .iter()
            .zip(&item_names)
            .map(|(e, n)| Column::new(n.clone(), e.infer_type(&input_types)))
            .collect();
        let out_schema = Arc::new(Schema::new(out_cols));
        let mut plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: item_exprs.clone(),
            schema: Arc::clone(&out_schema),
        };

        // 6. DISTINCT.
        if b.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        // 7. ORDER BY / LIMIT over the projected schema.
        if !b.order_by.is_empty() {
            let mut keys = Vec::new();
            for (e, desc) in &b.order_by {
                let key = self.bind_order_key(e, &out_schema, &item_names)?;
                keys.push((key, *desc));
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = b.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    fn bind_order_key(
        &mut self,
        e: &ast::Expr,
        out_schema: &Schema,
        names: &[String],
    ) -> DtResult<ScalarExpr> {
        // Ordinal form: ORDER BY 2.
        if let ast::Expr::Int(n) = e {
            let idx = *n as usize;
            if idx >= 1 && idx <= out_schema.len() {
                return Ok(ScalarExpr::Column(idx - 1));
            }
            return Err(DtError::Binding(format!("ORDER BY ordinal {n} out of range")));
        }
        // Output-column-name form.
        if let ast::Expr::Column { qualifier: None, name } = e {
            if let Some(i) = names.iter().position(|x| x == &name.to_ascii_lowercase()) {
                return Ok(ScalarExpr::Column(i));
            }
        }
        Err(DtError::Unsupported(
            "ORDER BY supports output column names or ordinals".into(),
        ))
    }

    /// Bind the aggregate form of a SELECT block; returns the plan up to
    /// (and including) the Aggregate node plus the bound projection exprs
    /// over that node's output.
    fn bind_aggregate_block(
        &mut self,
        b: &ast::SelectBlock,
        input: LogicalPlan,
        scope: &Scope,
    ) -> DtResult<(LogicalPlan, Vec<ScalarExpr>, Vec<String>)> {
        // Group keys.
        let (key_asts, key_names): (Vec<ast::Expr>, Vec<String>) = match &b.group_by {
            ast::GroupBy::Exprs(es) => (
                es.clone(),
                es.iter()
                    .enumerate()
                    .map(|(i, e)| derive_name_idx(e, i))
                    .collect(),
            ),
            ast::GroupBy::All => {
                // GROUP BY ALL: every projection item free of aggregates.
                let mut asts = Vec::new();
                let mut names = Vec::new();
                for (i, item) in b.items.iter().enumerate() {
                    if let ast::SelectItem::Expr { expr, alias } = item {
                        if !expr_contains_aggregate(expr) {
                            asts.push(expr.clone());
                            names.push(alias.clone().unwrap_or_else(|| derive_name_idx(expr, i)));
                        }
                    }
                }
                (asts, names)
            }
            ast::GroupBy::None => (vec![], vec![]),
        };
        let keys: Vec<ScalarExpr> = key_asts
            .iter()
            .map(|e| self.bind_scalar(e, scope))
            .collect::<DtResult<_>>()?;

        // Collect aggregates from the projection and HAVING, then bind the
        // projection expressions over the Aggregate output.
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut item_exprs = Vec::new();
        let mut item_names = Vec::new();
        for (i, item) in b.items.iter().enumerate() {
            let ast::SelectItem::Expr { expr, alias } = item else {
                return Err(DtError::Unsupported(
                    "wildcard projections cannot be combined with GROUP BY".into(),
                ));
            };
            let bound = self.bind_post_agg(expr, scope, &keys, &mut aggs)?;
            item_names.push(alias.clone().unwrap_or_else(|| derive_name_idx(expr, i)));
            item_exprs.push(bound);
        }
        let having_bound = match &b.having {
            Some(h) => Some(self.bind_post_agg(h, scope, &keys, &mut aggs)?),
            None => None,
        };

        // Build the Aggregate schema: keys then aggregates.
        let in_types = scope.types();
        let mut cols = Vec::with_capacity(keys.len() + aggs.len());
        for (k, n) in keys.iter().zip(&key_names) {
            cols.push(Column::new(n.clone(), k.infer_type(&in_types)));
        }
        for a in &aggs {
            let arg_ty = a.arg.as_ref().map(|e| e.infer_type(&in_types));
            cols.push(Column::new(a.name.clone(), a.func.result_type(arg_ty)));
        }
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs: keys,
            aggregates: aggs,
            schema: Arc::new(Schema::new(cols)),
        };
        if let Some(h) = having_bound {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: h,
            };
        }
        Ok((plan, item_exprs, item_names))
    }

    /// Bind an expression over the output of an Aggregate node: aggregate
    /// calls become references to aggregate columns; sub-expressions equal
    /// to a group key become key column references; anything else must be
    /// built from those (or constants).
    fn bind_post_agg(
        &mut self,
        e: &ast::Expr,
        pre: &Scope,
        keys: &[ScalarExpr],
        aggs: &mut Vec<AggExpr>,
    ) -> DtResult<ScalarExpr> {
        // Parameters, like constants, are valid anywhere.
        if let ast::Expr::Placeholder(i) = e {
            return Ok(ScalarExpr::Parameter(*i));
        }
        // Aggregate call?
        if let ast::Expr::Function { name, args, distinct } = e {
            if let Some(func) = AggFunc::from_name(name) {
                let arg = match args.as_slice() {
                    [] | [ast::FunctionArg::Wildcard] => None,
                    [ast::FunctionArg::Expr(a)] => Some(self.bind_scalar(a, pre)?),
                    _ => {
                        return Err(DtError::Unsupported(format!(
                            "{name} with multiple arguments"
                        )))
                    }
                };
                if func != AggFunc::Count && arg.is_none() {
                    return Err(DtError::Binding(format!("{name}(*) is not valid")));
                }
                let candidate = AggExpr {
                    func,
                    arg,
                    distinct: *distinct,
                    name: name.clone(),
                };
                let idx = match aggs.iter().position(|a| {
                    a.func == candidate.func
                        && a.arg == candidate.arg
                        && a.distinct == candidate.distinct
                }) {
                    Some(i) => i,
                    None => {
                        aggs.push(candidate);
                        aggs.len() - 1
                    }
                };
                return Ok(ScalarExpr::Column(keys.len() + idx));
            }
        }
        // A sub-expression equal to a group key?
        if let Ok(bound) = self.bind_scalar(e, pre) {
            if let Some(i) = keys.iter().position(|k| *k == bound) {
                return Ok(ScalarExpr::Column(i));
            }
            // A constant is fine anywhere.
            if let ScalarExpr::Literal(_) = bound {
                return Ok(bound);
            }
        }
        // Recurse structurally.
        match e {
            ast::Expr::Binary { left, op, right } => Ok(ScalarExpr::Binary {
                left: Box::new(self.bind_post_agg(left, pre, keys, aggs)?),
                op: bind_binop(*op),
                right: Box::new(self.bind_post_agg(right, pre, keys, aggs)?),
            }),
            ast::Expr::Unary { op, expr } => {
                let inner = self.bind_post_agg(expr, pre, keys, aggs)?;
                Ok(match op {
                    ast::UnaryOp::Neg => ScalarExpr::Neg(Box::new(inner)),
                    ast::UnaryOp::Not => ScalarExpr::Not(Box::new(inner)),
                })
            }
            ast::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.bind_post_agg(expr, pre, keys, aggs)?),
                negated: *negated,
            }),
            ast::Expr::Cast { expr, ty } => Ok(ScalarExpr::Cast {
                expr: Box::new(self.bind_post_agg(expr, pre, keys, aggs)?),
                ty: *ty,
            }),
            ast::Expr::Case {
                when_then,
                else_value,
            } => {
                let mut arms = Vec::new();
                for (c, v) in when_then {
                    arms.push((
                        self.bind_post_agg(c, pre, keys, aggs)?,
                        self.bind_post_agg(v, pre, keys, aggs)?,
                    ));
                }
                let else_value = match else_value {
                    Some(ev) => Some(Box::new(self.bind_post_agg(ev, pre, keys, aggs)?)),
                    None => None,
                };
                Ok(ScalarExpr::Case {
                    when_then: arms,
                    else_value,
                })
            }
            ast::Expr::Function { name, args, .. } if ScalarFunc::from_name(name).is_some() => {
                let func = ScalarFunc::from_name(name).unwrap();
                let mut bound_args = Vec::new();
                for (i, a) in args.iter().enumerate() {
                    match a {
                        ast::FunctionArg::Expr(e) => {
                            let e = normalize_unit_arg(func, i, e);
                            bound_args.push(self.bind_post_agg(&e, pre, keys, aggs)?)
                        }
                        ast::FunctionArg::Wildcard => {
                            return Err(DtError::Binding(format!("{name}(*) is not valid")))
                        }
                    }
                }
                Ok(ScalarExpr::Func {
                    func,
                    args: bound_args,
                })
            }
            ast::Expr::Column { qualifier, name } => Err(DtError::Binding(format!(
                "column '{}' must appear in GROUP BY or inside an aggregate",
                display_col(qualifier.as_deref(), name)
            ))),
            other => Err(DtError::Unsupported(format!(
                "expression {other:?} in aggregate context"
            ))),
        }
    }

    fn note_use(&mut self, c: &ScopeCol) {
        if let Some(e) = c.entity {
            self.used_columns.entry(e).or_default().insert(c.name.clone());
        }
    }

    /// Bind a pure scalar expression (no aggregates, no windows).
    fn bind_scalar(&mut self, e: &ast::Expr, scope: &Scope) -> DtResult<ScalarExpr> {
        let mut no_windows = Vec::new();
        let bound = self.bind_scalar_with_windows(e, scope, &mut no_windows)?;
        if !no_windows.is_empty() {
            return Err(DtError::Binding(
                "window functions are only allowed in the SELECT list".into(),
            ));
        }
        Ok(bound)
    }

    /// Bind a scalar expression, hoisting window functions into
    /// `window_exprs`; a hoisted function is replaced by a reference to the
    /// column the Window node will append.
    fn bind_scalar_with_windows(
        &mut self,
        e: &ast::Expr,
        scope: &Scope,
        window_exprs: &mut Vec<WindowExpr>,
    ) -> DtResult<ScalarExpr> {
        Ok(match e {
            ast::Expr::Null => ScalarExpr::Literal(Value::Null),
            ast::Expr::Bool(b) => ScalarExpr::lit(*b),
            ast::Expr::Int(i) => ScalarExpr::lit(*i),
            ast::Expr::Float(f) => ScalarExpr::lit(*f),
            ast::Expr::String(s) => ScalarExpr::lit(s.as_str()),
            ast::Expr::Interval(d) => ScalarExpr::Literal(Value::Duration(*d)),
            ast::Expr::Placeholder(i) => ScalarExpr::Parameter(*i),
            ast::Expr::Column { qualifier, name } => {
                let idx = scope.resolve(qualifier.as_deref(), name)?;
                self.note_use(&scope.cols[idx]);
                ScalarExpr::Column(idx)
            }
            ast::Expr::Unary { op, expr } => {
                let inner = self.bind_scalar_with_windows(expr, scope, window_exprs)?;
                match op {
                    ast::UnaryOp::Neg => ScalarExpr::Neg(Box::new(inner)),
                    ast::UnaryOp::Not => ScalarExpr::Not(Box::new(inner)),
                }
            }
            ast::Expr::Binary { left, op, right } => ScalarExpr::Binary {
                left: Box::new(self.bind_scalar_with_windows(left, scope, window_exprs)?),
                op: bind_binop(*op),
                right: Box::new(self.bind_scalar_with_windows(right, scope, window_exprs)?),
            },
            ast::Expr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(self.bind_scalar_with_windows(expr, scope, window_exprs)?),
                negated: *negated,
            },
            ast::Expr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(self.bind_scalar_with_windows(expr, scope, window_exprs)?),
                list: list
                    .iter()
                    .map(|x| self.bind_scalar_with_windows(x, scope, window_exprs))
                    .collect::<DtResult<_>>()?,
                negated: *negated,
            },
            ast::Expr::Between { expr, low, high } => {
                // e BETWEEN a AND b  ≡  e >= a AND e <= b.
                let e = self.bind_scalar_with_windows(expr, scope, window_exprs)?;
                let low = self.bind_scalar_with_windows(low, scope, window_exprs)?;
                let high = self.bind_scalar_with_windows(high, scope, window_exprs)?;
                ScalarExpr::Binary {
                    left: Box::new(ScalarExpr::Binary {
                        left: Box::new(e.clone()),
                        op: BinOp::GtEq,
                        right: Box::new(low),
                    }),
                    op: BinOp::And,
                    right: Box::new(ScalarExpr::Binary {
                        left: Box::new(e),
                        op: BinOp::LtEq,
                        right: Box::new(high),
                    }),
                }
            }
            ast::Expr::Case {
                when_then,
                else_value,
            } => ScalarExpr::Case {
                when_then: when_then
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            self.bind_scalar_with_windows(c, scope, window_exprs)?,
                            self.bind_scalar_with_windows(v, scope, window_exprs)?,
                        ))
                    })
                    .collect::<DtResult<_>>()?,
                else_value: match else_value {
                    Some(ev) => Some(Box::new(self.bind_scalar_with_windows(
                        ev,
                        scope,
                        window_exprs,
                    )?)),
                    None => None,
                },
            },
            ast::Expr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(self.bind_scalar_with_windows(expr, scope, window_exprs)?),
                ty: *ty,
            },
            ast::Expr::Function {
                name,
                args,
                distinct,
            } => {
                if let Some(func) = ScalarFunc::from_name(name) {
                    if *distinct {
                        return Err(DtError::Binding(format!(
                            "DISTINCT is not valid in scalar function {name}"
                        )));
                    }
                    let mut bound = Vec::new();
                    for (i, a) in args.iter().enumerate() {
                        match a {
                            ast::FunctionArg::Expr(e) => {
                                let e = normalize_unit_arg(func, i, e);
                                bound.push(self.bind_scalar_with_windows(
                                    &e,
                                    scope,
                                    window_exprs,
                                )?)
                            }
                            ast::FunctionArg::Wildcard => {
                                return Err(DtError::Binding(format!("{name}(*) is not valid")))
                            }
                        }
                    }
                    ScalarExpr::Func { func, args: bound }
                } else if AggFunc::from_name(name).is_some() {
                    return Err(DtError::Binding(format!(
                        "aggregate function {name} requires GROUP BY context"
                    )));
                } else {
                    return Err(DtError::Binding(format!("unknown function '{name}'")));
                }
            }
            ast::Expr::WindowFunction {
                name,
                args,
                partition_by,
                order_by,
            } => {
                let func = WindowFunc::from_name(name).ok_or_else(|| {
                    DtError::Binding(format!("unknown window function '{name}'"))
                })?;
                let arg = match args.as_slice() {
                    [] | [ast::FunctionArg::Wildcard] => None,
                    [ast::FunctionArg::Expr(a)] => {
                        Some(self.bind_scalar_with_windows(a, scope, window_exprs)?)
                    }
                    _ => {
                        return Err(DtError::Unsupported(format!(
                            "window {name} with multiple arguments"
                        )))
                    }
                };
                let partition_by = partition_by
                    .iter()
                    .map(|e| self.bind_scalar(e, scope))
                    .collect::<DtResult<Vec<_>>>()?;
                let order_by = order_by
                    .iter()
                    .map(|(e, d)| Ok((self.bind_scalar(e, scope)?, *d)))
                    .collect::<DtResult<Vec<_>>>()?;
                let idx = scope.cols.len() + window_exprs.len();
                window_exprs.push(WindowExpr {
                    func,
                    arg,
                    partition_by,
                    order_by,
                    name: format!("{name}_w{}", window_exprs.len()),
                });
                ScalarExpr::Column(idx)
            }
        })
    }
}

fn bind_binop(op: ast::BinaryOp) -> BinOp {
    match op {
        ast::BinaryOp::Add => BinOp::Add,
        ast::BinaryOp::Sub => BinOp::Sub,
        ast::BinaryOp::Mul => BinOp::Mul,
        ast::BinaryOp::Div => BinOp::Div,
        ast::BinaryOp::Mod => BinOp::Mod,
        ast::BinaryOp::Eq => BinOp::Eq,
        ast::BinaryOp::NotEq => BinOp::NotEq,
        ast::BinaryOp::Lt => BinOp::Lt,
        ast::BinaryOp::LtEq => BinOp::LtEq,
        ast::BinaryOp::Gt => BinOp::Gt,
        ast::BinaryOp::GtEq => BinOp::GtEq,
        ast::BinaryOp::And => BinOp::And,
        ast::BinaryOp::Or => BinOp::Or,
    }
}

/// Snowflake allows `date_trunc(hour, ts)` with a bare unit keyword; the
/// parser sees `hour` as a column. Normalize to a string literal.
fn normalize_unit_arg(func: ScalarFunc, arg_idx: usize, e: &ast::Expr) -> ast::Expr {
    if func == ScalarFunc::DateTrunc && arg_idx == 0 {
        if let ast::Expr::Column {
            qualifier: None,
            name,
        } = e
        {
            if matches!(
                name.as_str(),
                "second" | "seconds" | "minute" | "minutes" | "hour" | "hours" | "day" | "days"
            ) {
                return ast::Expr::String(name.clone());
            }
        }
    }
    e.clone()
}

fn expr_contains_aggregate(e: &ast::Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if let ast::Expr::Function { name, .. } = x {
            if AggFunc::from_name(name).is_some() {
                found = true;
            }
        }
    });
    found
}

fn select_items_contain_aggregate(items: &[ast::SelectItem]) -> bool {
    items.iter().any(|i| match i {
        ast::SelectItem::Expr { expr, .. } => expr_contains_aggregate(expr),
        _ => false,
    })
}

fn derive_name(e: &ast::Expr, prior: &[ScalarExpr]) -> String {
    derive_name_idx(e, prior.len())
}

fn derive_name_idx(e: &ast::Expr, i: usize) -> String {
    match e {
        ast::Expr::Column { name, .. } => name.clone(),
        ast::Expr::Function { name, .. } | ast::Expr::WindowFunction { name, .. } => name.clone(),
        ast::Expr::Cast { expr, .. } => derive_name_idx(expr, i),
        _ => format!("col_{i}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::operator_census;
    use crate::plan::OperatorKind;
    use std::collections::HashMap;

    /// A test resolver with a few fixed tables and views.
    struct Fixture {
        tables: HashMap<String, (EntityId, Schema)>,
        views: HashMap<String, String>,
    }

    impl Fixture {
        fn new() -> Self {
            let mut tables = HashMap::new();
            tables.insert(
                "orders".to_string(),
                (
                    EntityId(1),
                    Schema::new(vec![
                        Column::new("id", DataType::Int),
                        Column::new("customer", DataType::Str),
                        Column::new("amount", DataType::Float),
                        Column::new("ts", DataType::Timestamp),
                    ]),
                ),
            );
            tables.insert(
                "customers".to_string(),
                (
                    EntityId(2),
                    Schema::new(vec![
                        Column::new("name", DataType::Str),
                        Column::new("region", DataType::Str),
                    ]),
                ),
            );
            let mut views = HashMap::new();
            views.insert(
                "big_orders".to_string(),
                "SELECT id, amount FROM orders WHERE amount > 100".to_string(),
            );
            Fixture { tables, views }
        }
    }

    impl Resolver for Fixture {
        fn resolve_relation(&self, name: &str) -> DtResult<ResolvedRelation> {
            let lname = name.to_ascii_lowercase();
            if let Some((e, s)) = self.tables.get(&lname) {
                return Ok(ResolvedRelation::Table {
                    entity: *e,
                    schema: s.clone(),
                });
            }
            if let Some(sql) = self.views.get(&lname) {
                return Ok(ResolvedRelation::View { sql: sql.clone() });
            }
            Err(DtError::Catalog(format!("unknown entity '{lname}'")))
        }
    }

    fn bind(sql: &str) -> BindOutput {
        let f = Fixture::new();
        let stmt = dt_sql::parse(sql).unwrap();
        let dt_sql::ast::Statement::Query(q) = stmt else {
            panic!("not a query")
        };
        Binder::new(&f).bind_query(&q).unwrap()
    }

    fn bind_err(sql: &str) -> DtError {
        let f = Fixture::new();
        let stmt = dt_sql::parse(sql).unwrap();
        let dt_sql::ast::Statement::Query(q) = stmt else {
            panic!("not a query")
        };
        Binder::new(&f).bind_query(&q).unwrap_err()
    }

    #[test]
    fn bind_simple_projection() {
        let out = bind("SELECT id, amount * 2 AS double_amount FROM orders");
        let schema = out.plan.schema();
        assert_eq!(schema.names(), vec!["id", "double_amount"]);
        assert_eq!(schema.column(1).ty, DataType::Float);
        assert_eq!(
            out.used_columns[&EntityId(1)],
            ["amount", "id"].iter().map(|s| s.to_string()).collect()
        );
    }

    #[test]
    fn bind_join_with_qualifiers() {
        let out = bind(
            "SELECT o.id, c.region FROM orders o JOIN customers c ON o.customer = c.name",
        );
        assert!(out.plan.is_differentiable());
        assert_eq!(out.plan.schema().names(), vec!["id", "region"]);
        // Used columns span both entities.
        assert!(out.used_columns[&EntityId(1)].contains("customer"));
        assert!(out.used_columns[&EntityId(2)].contains("name"));
    }

    #[test]
    fn ambiguous_column_errors() {
        let e = bind_err("SELECT name FROM customers c JOIN customers d ON c.name = d.name");
        assert!(matches!(e, DtError::Binding(_)), "{e}");
    }

    #[test]
    fn bind_group_by_all() {
        let out = bind(
            "SELECT customer, count(*) n, sum(amount) total FROM orders GROUP BY ALL",
        );
        let LogicalPlan::Project { input, .. } = &out.plan else {
            panic!()
        };
        let LogicalPlan::Aggregate {
            group_exprs,
            aggregates,
            ..
        } = input.as_ref()
        else {
            panic!("expected aggregate, got {}", input.explain())
        };
        assert_eq!(group_exprs.len(), 1);
        assert_eq!(aggregates.len(), 2);
        assert_eq!(out.plan.schema().names(), vec!["customer", "n", "total"]);
    }

    #[test]
    fn bind_group_key_expression_reuse() {
        // Select item that IS a group key expression, plus arithmetic on top.
        let out = bind(
            "SELECT date_trunc('hour', ts) h, count(*) + 1 FROM orders GROUP BY date_trunc('hour', ts)",
        );
        assert_eq!(out.plan.schema().len(), 2);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let e = bind_err("SELECT customer, amount, count(*) FROM orders GROUP BY customer");
        assert!(matches!(e, DtError::Binding(_)));
    }

    #[test]
    fn bind_having() {
        let out = bind("SELECT customer, count(*) FROM orders GROUP BY customer HAVING count(*) > 5");
        // Filter on top of Aggregate, under Project.
        let LogicalPlan::Project { input, .. } = &out.plan else {
            panic!()
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn bind_view_expansion_tracks_base_columns() {
        let out = bind("SELECT id FROM big_orders WHERE amount > 500");
        // The view expands to a plan over `orders`.
        assert_eq!(out.plan.scanned_entities(), vec![EntityId(1)]);
        assert!(out.used_columns[&EntityId(1)].contains("amount"));
    }

    #[test]
    fn bind_window_function() {
        let out = bind(
            "SELECT customer, sum(amount) OVER (PARTITION BY customer ORDER BY ts) running FROM orders",
        );
        let census = operator_census(&out.plan);
        assert_eq!(census[&OperatorKind::Window], 1);
        assert!(out.plan.is_differentiable());
        assert_eq!(out.plan.schema().names(), vec!["customer", "running"]);
    }

    #[test]
    fn window_without_partition_not_differentiable() {
        let out = bind("SELECT sum(amount) OVER (ORDER BY ts) FROM orders");
        assert!(!out.plan.is_differentiable());
    }

    #[test]
    fn bind_union_all() {
        let out = bind("SELECT id FROM orders UNION ALL SELECT id FROM orders");
        assert!(matches!(out.plan, LogicalPlan::UnionAll { .. }));
        let e = bind_err("SELECT id FROM orders UNION ALL SELECT id, amount FROM orders");
        assert!(matches!(e, DtError::Binding(_)));
    }

    #[test]
    fn bind_subquery() {
        let out = bind("SELECT y FROM (SELECT amount AS y FROM orders) AS sub WHERE y > 1");
        assert_eq!(out.plan.schema().names(), vec!["y"]);
    }

    #[test]
    fn order_by_and_limit_not_differentiable() {
        let out = bind("SELECT id FROM orders ORDER BY id LIMIT 3");
        assert!(!out.plan.is_differentiable());
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let out = bind("SELECT * FROM orders");
        assert_eq!(out.plan.schema().len(), 4);
        let out = bind("SELECT c.* FROM orders o JOIN customers c ON o.customer = c.name");
        assert_eq!(out.plan.schema().names(), vec!["name", "region"]);
    }

    #[test]
    fn listing_1_delayed_trains_binds() {
        // The paper's Listing 1, second DT, against equivalent tables.
        struct Trains;
        impl Resolver for Trains {
            fn resolve_relation(&self, name: &str) -> DtResult<ResolvedRelation> {
                let schema = match name {
                    "train_arrivals" => Schema::new(vec![
                        Column::new("train_id", DataType::Int),
                        Column::new("arrival_time", DataType::Timestamp),
                        Column::new("schedule_id", DataType::Int),
                    ]),
                    "schedule" => Schema::new(vec![
                        Column::new("id", DataType::Int),
                        Column::new("expected_arrival_time", DataType::Timestamp),
                    ]),
                    _ => return Err(DtError::Catalog("unknown".into())),
                };
                Ok(ResolvedRelation::Table {
                    entity: EntityId(if name == "schedule" { 2 } else { 1 }),
                    schema,
                })
            }
        }
        let stmt = dt_sql::parse(
            "SELECT train_id, date_trunc(hour, s.expected_arrival_time) hour, \
             count_if(arrival_time - s.expected_arrival_time > INTERVAL '10 minutes') num_delays \
             FROM train_arrivals a JOIN schedule s ON a.schedule_id = s.id GROUP BY ALL",
        )
        .unwrap();
        let dt_sql::ast::Statement::Query(q) = stmt else {
            panic!()
        };
        let out = Binder::new(&Trains).bind_query(&q).unwrap();
        assert!(out.plan.is_differentiable());
        assert_eq!(
            out.plan.schema().names(),
            vec!["train_id", "hour", "num_delays"]
        );
    }
}
