//! Bound (resolved) expressions and their evaluation.
//!
//! Bound expressions refer to input columns by *index*, so evaluation needs
//! no name lookups. Scalar evaluation lives here (rather than in `dt-exec`)
//! because both the executor and the IVM merge/consolidation machinery
//! evaluate expressions.

use std::fmt;

use dt_common::{DataType, DtError, DtResult, Row, Value};

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// Absolute value.
    Abs,
    /// Lowercase a string.
    Lower,
    /// Uppercase a string.
    Upper,
    /// String length.
    Length,
    /// First non-NULL argument.
    Coalesce,
    /// String concatenation.
    Concat,
    /// Truncate a timestamp to a unit: `date_trunc('hour', ts)`.
    DateTrunc,
    /// `iff(cond, a, b)`.
    Iff,
}

impl ScalarFunc {
    /// Look up by SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "abs" => ScalarFunc::Abs,
            "lower" => ScalarFunc::Lower,
            "upper" => ScalarFunc::Upper,
            "length" | "len" => ScalarFunc::Length,
            "coalesce" => ScalarFunc::Coalesce,
            "concat" => ScalarFunc::Concat,
            "date_trunc" => ScalarFunc::DateTrunc,
            "iff" => ScalarFunc::Iff,
            _ => return None,
        })
    }
}

/// Aggregate functions (§3.3.2: distinct and grouped aggregations are
/// incrementally supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(*)` / `count(x)`.
    Count,
    /// `count_if(pred)` (used in the paper's Listing 1).
    CountIf,
    /// `sum(x)`.
    Sum,
    /// `min(x)`.
    Min,
    /// `max(x)`.
    Max,
    /// `avg(x)`.
    Avg,
}

impl AggFunc {
    /// Look up by SQL name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "count_if" | "countif" => AggFunc::CountIf,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Result type given the argument type.
    pub fn result_type(self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::Count | AggFunc::CountIf => DataType::Int,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Int),
            AggFunc::Avg => DataType::Float,
        }
    }
}

/// Window functions with PARTITION BY (§3.3.2, §5.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFunc {
    /// `row_number()`.
    RowNumber,
    /// `rank()`.
    Rank,
    /// Windowed `sum`.
    Sum,
    /// Windowed `count`.
    Count,
    /// Windowed `min`.
    Min,
    /// Windowed `max`.
    Max,
    /// Windowed `avg`.
    Avg,
}

impl WindowFunc {
    /// Look up by SQL name.
    pub fn from_name(name: &str) -> Option<WindowFunc> {
        Some(match name {
            "row_number" => WindowFunc::RowNumber,
            "rank" => WindowFunc::Rank,
            "sum" => WindowFunc::Sum,
            "count" => WindowFunc::Count,
            "min" => WindowFunc::Min,
            "max" => WindowFunc::Max,
            "avg" => WindowFunc::Avg,
            _ => return None,
        })
    }

    /// Result type given the argument type.
    pub fn result_type(self, arg: Option<DataType>) -> DataType {
        match self {
            WindowFunc::RowNumber | WindowFunc::Rank | WindowFunc::Count => DataType::Int,
            WindowFunc::Sum | WindowFunc::Min | WindowFunc::Max => arg.unwrap_or(DataType::Int),
            WindowFunc::Avg => DataType::Float,
        }
    }
}

/// Binary operators over values (bound form of the AST operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Input column by index.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Positional `?` parameter of a prepared statement (0-based). Replaced
    /// by a [`ScalarExpr::Literal`] via [`ScalarExpr::bind_params`] before
    /// evaluation; evaluating an unbound parameter is an error.
    Parameter(usize),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Arithmetic negation.
    Neg(Box<ScalarExpr>),
    /// Logical NOT (three-valued).
    Not(Box<ScalarExpr>),
    /// `IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<ScalarExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `IN (list)`.
    InList {
        /// Operand.
        expr: Box<ScalarExpr>,
        /// Candidates.
        list: Vec<ScalarExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `CASE WHEN ... END`.
    Case {
        /// (condition, value) arms.
        when_then: Vec<(ScalarExpr, ScalarExpr)>,
        /// ELSE value (NULL when absent).
        else_value: Option<Box<ScalarExpr>>,
    },
    /// Cast.
    Cast {
        /// Operand.
        expr: Box<ScalarExpr>,
        /// Target type.
        ty: DataType,
    },
    /// Scalar function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Shorthand column reference.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Column(i)
    }

    /// Shorthand literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// Equality comparison helper.
    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            left: Box::new(left),
            op: BinOp::Eq,
            right: Box::new(right),
        }
    }

    /// Evaluate against an input row.
    pub fn eval(&self, row: &Row) -> DtResult<Value> {
        match self {
            ScalarExpr::Column(i) => {
                row.values().get(*i).cloned().ok_or_else(|| {
                    DtError::internal(format!("column index {i} out of range ({})", row.len()))
                })
            }
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Parameter(i) => Err(DtError::Binding(format!(
                "parameter ?{} is not bound (use a prepared statement and \
                 supply {} value(s))",
                i + 1,
                i + 1
            ))),
            ScalarExpr::Binary { left, op, right } => {
                // AND/OR need three-valued logic with short-circuiting on
                // known outcomes.
                if matches!(op, BinOp::And | BinOp::Or) {
                    return self.eval_logical(row, *op, left, right);
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => l.div(&r),
                    BinOp::Mod => l.modulo(&r),
                    BinOp::Eq => Ok(l.sql_eq(&r)),
                    BinOp::NotEq => Ok(match l.sql_cmp(&r) {
                        None => Value::Null,
                        Some(o) => Value::Bool(o != std::cmp::Ordering::Equal),
                    }),
                    BinOp::Lt => Ok(cmp_to_bool(l.sql_cmp(&r), |o| o.is_lt())),
                    BinOp::LtEq => Ok(cmp_to_bool(l.sql_cmp(&r), |o| o.is_le())),
                    BinOp::Gt => Ok(cmp_to_bool(l.sql_cmp(&r), |o| o.is_gt())),
                    BinOp::GtEq => Ok(cmp_to_bool(l.sql_cmp(&r), |o| o.is_ge())),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            ScalarExpr::Neg(e) => e.eval(row)?.neg(),
            ScalarExpr::Not(e) => Ok(match e.eval(row)? {
                Value::Null => Value::Null,
                Value::Bool(b) => Value::Bool(!b),
                other => return Err(DtError::Type(format!("NOT applied to {other}"))),
            }),
            ScalarExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for cand in list {
                    let c = cand.eval(row)?;
                    match v.sql_eq(&c) {
                        Value::Bool(true) => return Ok(Value::Bool(!*negated)),
                        Value::Null => saw_null = true,
                        _ => {}
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                })
            }
            ScalarExpr::Case {
                when_then,
                else_value,
            } => {
                for (cond, value) in when_then {
                    if cond.eval(row)?.is_true() {
                        return value.eval(row);
                    }
                }
                match else_value {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
            ScalarExpr::Cast { expr, ty } => expr.eval(row)?.cast(*ty),
            ScalarExpr::Func { func, args } => eval_func(*func, args, row),
        }
    }

    fn eval_logical(
        &self,
        row: &Row,
        op: BinOp,
        left: &ScalarExpr,
        right: &ScalarExpr,
    ) -> DtResult<Value> {
        let l = left.eval(row)?;
        match (op, &l) {
            (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = right.eval(row)?;
        Ok(match op {
            BinOp::And => match (&l, &r) {
                (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (Value::Bool(a), Value::Bool(b)) => Value::Bool(*a && *b),
                _ => return Err(DtError::Type("AND over non-booleans".into())),
            },
            BinOp::Or => match (&l, &r) {
                (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (Value::Bool(a), Value::Bool(b)) => Value::Bool(*a || *b),
                _ => return Err(DtError::Type("OR over non-booleans".into())),
            },
            _ => unreachable!(),
        })
    }

    /// Best-effort result type given input column types.
    pub fn infer_type(&self, input: &[DataType]) -> DataType {
        match self {
            ScalarExpr::Column(i) => input.get(*i).copied().unwrap_or(DataType::Str),
            ScalarExpr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
            // A parameter's type is unknown until bound; STRING is the
            // widest-rendering default.
            ScalarExpr::Parameter(_) => DataType::Str,
            ScalarExpr::Binary { left, op, right } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let lt = left.infer_type(input);
                    let rt = right.infer_type(input);
                    match (lt, rt) {
                        (DataType::Timestamp, DataType::Timestamp) => DataType::Duration,
                        (DataType::Timestamp, _) | (_, DataType::Timestamp) => DataType::Timestamp,
                        (DataType::Duration, _) | (_, DataType::Duration) => DataType::Duration,
                        (DataType::Float, _) | (_, DataType::Float) => DataType::Float,
                        _ => DataType::Int,
                    }
                }
                BinOp::Div => DataType::Float,
                BinOp::Mod => DataType::Int,
                _ => DataType::Bool,
            },
            ScalarExpr::Neg(e) => e.infer_type(input),
            ScalarExpr::Not(_) | ScalarExpr::IsNull { .. } | ScalarExpr::InList { .. } => {
                DataType::Bool
            }
            ScalarExpr::Case {
                when_then,
                else_value,
            } => when_then
                .first()
                .map(|(_, v)| v.infer_type(input))
                .or_else(|| else_value.as_ref().map(|e| e.infer_type(input)))
                .unwrap_or(DataType::Str),
            ScalarExpr::Cast { ty, .. } => *ty,
            ScalarExpr::Func { func, args } => match func {
                ScalarFunc::Abs => args
                    .first()
                    .map(|a| a.infer_type(input))
                    .unwrap_or(DataType::Int),
                ScalarFunc::Lower | ScalarFunc::Upper | ScalarFunc::Concat => DataType::Str,
                ScalarFunc::Length => DataType::Int,
                ScalarFunc::Coalesce | ScalarFunc::Iff => args
                    .iter()
                    .skip(if *func == ScalarFunc::Iff { 1 } else { 0 })
                    .map(|a| a.infer_type(input))
                    .next()
                    .unwrap_or(DataType::Str),
                ScalarFunc::DateTrunc => DataType::Timestamp,
            },
        }
    }

    /// Visit all column indices referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Column(i) => out.push(*i),
            ScalarExpr::Literal(_) | ScalarExpr::Parameter(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => e.referenced_columns(out),
            ScalarExpr::IsNull { expr, .. } => expr.referenced_columns(out),
            ScalarExpr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            ScalarExpr::Case {
                when_then,
                else_value,
            } => {
                for (c, v) in when_then {
                    c.referenced_columns(out);
                    v.referenced_columns(out);
                }
                if let Some(e) = else_value {
                    e.referenced_columns(out);
                }
            }
            ScalarExpr::Cast { expr, .. } => expr.referenced_columns(out),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// The largest parameter index referenced by this expression.
    pub fn max_parameter(&self) -> Option<usize> {
        let mut max = None;
        self.walk_params(&mut |i| max = Some(max.map_or(i, |m: usize| m.max(i))));
        max
    }

    fn walk_params(&self, f: &mut impl FnMut(usize)) {
        match self {
            ScalarExpr::Parameter(i) => f(*i),
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.walk_params(f);
                right.walk_params(f);
            }
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => e.walk_params(f),
            ScalarExpr::IsNull { expr, .. } => expr.walk_params(f),
            ScalarExpr::InList { expr, list, .. } => {
                expr.walk_params(f);
                for e in list {
                    e.walk_params(f);
                }
            }
            ScalarExpr::Case {
                when_then,
                else_value,
            } => {
                for (c, v) in when_then {
                    c.walk_params(f);
                    v.walk_params(f);
                }
                if let Some(e) = else_value {
                    e.walk_params(f);
                }
            }
            ScalarExpr::Cast { expr, .. } => expr.walk_params(f),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.walk_params(f);
                }
            }
        }
    }

    /// Replace every [`ScalarExpr::Parameter`] with the corresponding
    /// literal from `params`. Errors when a parameter index is out of
    /// range (too few bindings supplied).
    pub fn bind_params(&self, params: &[Value]) -> DtResult<ScalarExpr> {
        Ok(match self {
            ScalarExpr::Parameter(i) => {
                let v = params.get(*i).ok_or_else(|| {
                    DtError::Binding(format!(
                        "no value bound for parameter ?{} ({} supplied)",
                        i + 1,
                        params.len()
                    ))
                })?;
                ScalarExpr::Literal(v.clone())
            }
            ScalarExpr::Column(i) => ScalarExpr::Column(*i),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary { left, op, right } => ScalarExpr::Binary {
                left: Box::new(left.bind_params(params)?),
                op: *op,
                right: Box::new(right.bind_params(params)?),
            },
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.bind_params(params)?)),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.bind_params(params)?)),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.bind_params(params)?),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.bind_params(params)?),
                list: list
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<DtResult<_>>()?,
                negated: *negated,
            },
            ScalarExpr::Case {
                when_then,
                else_value,
            } => ScalarExpr::Case {
                when_then: when_then
                    .iter()
                    .map(|(c, v)| Ok((c.bind_params(params)?, v.bind_params(params)?)))
                    .collect::<DtResult<_>>()?,
                else_value: match else_value {
                    Some(e) => Some(Box::new(e.bind_params(params)?)),
                    None => None,
                },
            },
            ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(expr.bind_params(params)?),
                ty: *ty,
            },
            ScalarExpr::Func { func, args } => ScalarExpr::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<DtResult<_>>()?,
            },
        })
    }

    /// Rewrite column indices with `f` (used when composing plans, e.g. to
    /// shift right-join-side columns by the left arity).
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Column(i) => ScalarExpr::Column(f(*i)),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Parameter(i) => ScalarExpr::Parameter(*i),
            ScalarExpr::Binary { left, op, right } => ScalarExpr::Binary {
                left: Box::new(left.map_columns(f)),
                op: *op,
                right: Box::new(right.map_columns(f)),
            },
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.map_columns(f))),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.map_columns(f))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.map_columns(f)),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.map_columns(f)),
                list: list.iter().map(|e| e.map_columns(f)).collect(),
                negated: *negated,
            },
            ScalarExpr::Case {
                when_then,
                else_value,
            } => ScalarExpr::Case {
                when_then: when_then
                    .iter()
                    .map(|(c, v)| (c.map_columns(f), v.map_columns(f)))
                    .collect(),
                else_value: else_value.as_ref().map(|e| Box::new(e.map_columns(f))),
            },
            ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(expr.map_columns(f)),
                ty: *ty,
            },
            ScalarExpr::Func { func, args } => ScalarExpr::Func {
                func: *func,
                args: args.iter().map(|e| e.map_columns(f)).collect(),
            },
        }
    }
}

fn cmp_to_bool(
    c: Option<std::cmp::Ordering>,
    f: impl Fn(std::cmp::Ordering) -> bool,
) -> Value {
    match c {
        None => Value::Null,
        Some(o) => Value::Bool(f(o)),
    }
}

fn eval_func(func: ScalarFunc, args: &[ScalarExpr], row: &Row) -> DtResult<Value> {
    let arity_err = |want: &str| {
        Err(DtError::Type(format!(
            "{func:?} expects {want} argument(s), got {}",
            args.len()
        )))
    };
    match func {
        ScalarFunc::Abs => {
            let [a] = args else { return arity_err("1") };
            match a.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                other => Err(DtError::Type(format!("abs({other})"))),
            }
        }
        ScalarFunc::Lower | ScalarFunc::Upper => {
            let [a] = args else { return arity_err("1") };
            match a.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(if func == ScalarFunc::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                other => Err(DtError::Type(format!("{func:?}({other})"))),
            }
        }
        ScalarFunc::Length => {
            let [a] = args else { return arity_err("1") };
            match a.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(DtError::Type(format!("length({other})"))),
            }
        }
        ScalarFunc::Coalesce => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                match a.eval(row)? {
                    Value::Null => return Ok(Value::Null),
                    Value::Str(s) => out.push_str(&s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Ok(Value::Str(out))
        }
        ScalarFunc::DateTrunc => {
            let [unit, ts] = args else { return arity_err("2") };
            let unit = match unit.eval(row)? {
                Value::Str(s) => s,
                other => return Err(DtError::Type(format!("date_trunc unit {other}"))),
            };
            let t = match ts.eval(row)? {
                Value::Null => return Ok(Value::Null),
                Value::Timestamp(t) => t,
                other => return Err(DtError::Type(format!("date_trunc over {other}"))),
            };
            let us = t.as_micros();
            let per = match unit.to_ascii_lowercase().as_str() {
                "second" | "seconds" => 1_000_000i64,
                "minute" | "minutes" => 60_000_000,
                "hour" | "hours" => 3_600_000_000,
                "day" | "days" => 86_400_000_000,
                other => {
                    return Err(DtError::Evaluation(format!(
                        "unknown date_trunc unit '{other}'"
                    )))
                }
            };
            Ok(Value::Timestamp(dt_common::Timestamp::from_micros(
                us.div_euclid(per) * per,
            )))
        }
        ScalarFunc::Iff => {
            let [c, a, b] = args else { return arity_err("3") };
            if c.eval(row)?.is_true() {
                a.eval(row)
            } else {
                b.eval(row)
            }
        }
    }
}

/// A bound aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// The argument (None for `count(*)`).
    pub arg: Option<ScalarExpr>,
    /// DISTINCT aggregation.
    pub distinct: bool,
    /// Output column name.
    pub name: String,
}

/// A bound window expression.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    /// The function.
    pub func: WindowFunc,
    /// The argument (None for `row_number()` / `count(*)`).
    pub arg: Option<ScalarExpr>,
    /// PARTITION BY keys (§5.5.1 requires a PARTITION BY for the
    /// partition-recompute derivative to apply).
    pub partition_by: Vec<ScalarExpr>,
    /// ORDER BY keys (expr, descending).
    pub order_by: Vec<(ScalarExpr, bool)>,
    /// Output column name.
    pub name: String,
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "#{i}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Parameter(i) => write!(f, "?{}", i + 1),
            ScalarExpr::Binary { left, op, right } => write!(f, "({left} {op:?} {right})"),
            ScalarExpr::Neg(e) => write!(f, "(-{e})"),
            ScalarExpr::Not(e) => write!(f, "(NOT {e})"),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::InList { expr, negated, .. } => {
                write!(f, "({expr} {}IN (...))", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::Case { .. } => write!(f, "CASE"),
            ScalarExpr::Cast { expr, ty } => write!(f, "({expr}::{ty})"),
            ScalarExpr::Func { func, .. } => write!(f, "{func:?}(...)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;

    fn b(l: ScalarExpr, op: BinOp, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_and_comparison() {
        let r = row!(10i64, 3i64);
        let e = b(ScalarExpr::col(0), BinOp::Add, ScalarExpr::col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(13));
        let e = b(ScalarExpr::col(0), BinOp::Gt, ScalarExpr::col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_and_or() {
        let r = row!(1i64);
        let null = ScalarExpr::Literal(Value::Null);
        let t = ScalarExpr::lit(true);
        let f = ScalarExpr::lit(false);
        // false AND NULL = false; true OR NULL = true; true AND NULL = NULL.
        assert_eq!(
            b(f.clone(), BinOp::And, null.clone()).eval(&r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            b(t.clone(), BinOp::Or, null.clone()).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(b(t, BinOp::And, null).eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn in_list_with_nulls() {
        let r = row!(2i64);
        let e = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list: vec![ScalarExpr::lit(1i64), ScalarExpr::Literal(Value::Null)],
            negated: false,
        };
        // 2 IN (1, NULL) = NULL (unknown).
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        let e = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(0)),
            list: vec![ScalarExpr::lit(2i64), ScalarExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn case_expression() {
        let e = ScalarExpr::Case {
            when_then: vec![(
                b(ScalarExpr::col(0), BinOp::Gt, ScalarExpr::lit(0i64)),
                ScalarExpr::lit("pos"),
            )],
            else_value: Some(Box::new(ScalarExpr::lit("neg"))),
        };
        assert_eq!(e.eval(&row!(5i64)).unwrap(), Value::Str("pos".into()));
        assert_eq!(e.eval(&row!(-5i64)).unwrap(), Value::Str("neg".into()));
    }

    #[test]
    fn date_trunc() {
        let t = dt_common::Timestamp::from_secs(3_725); // 1h 2m 5s
        let e = ScalarExpr::Func {
            func: ScalarFunc::DateTrunc,
            args: vec![
                ScalarExpr::lit("hour"),
                ScalarExpr::Literal(Value::Timestamp(t)),
            ],
        };
        assert_eq!(
            e.eval(&Row::empty()).unwrap(),
            Value::Timestamp(dt_common::Timestamp::from_secs(3600))
        );
    }

    #[test]
    fn coalesce_and_concat() {
        let e = ScalarExpr::Func {
            func: ScalarFunc::Coalesce,
            args: vec![
                ScalarExpr::Literal(Value::Null),
                ScalarExpr::lit(7i64),
                ScalarExpr::lit(9i64),
            ],
        };
        assert_eq!(e.eval(&Row::empty()).unwrap(), Value::Int(7));
        let e = ScalarExpr::Func {
            func: ScalarFunc::Concat,
            args: vec![ScalarExpr::lit("a"), ScalarExpr::lit(1i64)],
        };
        assert_eq!(e.eval(&Row::empty()).unwrap(), Value::Str("a1".into()));
    }

    #[test]
    fn map_columns_shifts_references() {
        let e = b(ScalarExpr::col(0), BinOp::Eq, ScalarExpr::col(2));
        let shifted = e.map_columns(&|i| i + 5);
        let mut refs = Vec::new();
        shifted.referenced_columns(&mut refs);
        assert_eq!(refs, vec![5, 7]);
    }

    #[test]
    fn type_inference() {
        let input = [DataType::Int, DataType::Float, DataType::Timestamp];
        assert_eq!(
            b(ScalarExpr::col(0), BinOp::Add, ScalarExpr::col(1)).infer_type(&input),
            DataType::Float
        );
        assert_eq!(
            b(ScalarExpr::col(2), BinOp::Sub, ScalarExpr::col(2)).infer_type(&input),
            DataType::Duration
        );
        assert_eq!(
            b(ScalarExpr::col(0), BinOp::Lt, ScalarExpr::col(1)).infer_type(&input),
            DataType::Bool
        );
    }

    #[test]
    fn parameters_substitute_and_count() {
        let e = b(
            ScalarExpr::col(0),
            BinOp::Eq,
            ScalarExpr::Parameter(1),
        );
        assert_eq!(e.max_parameter(), Some(1));
        // Unbound parameters refuse to evaluate.
        assert!(e.eval(&row!(1i64)).is_err());
        // Too few bindings error; enough bindings substitute a literal.
        assert!(e.bind_params(&[Value::Int(5)]).is_err());
        let bound = e.bind_params(&[Value::Int(5), Value::Int(1)]).unwrap();
        assert_eq!(bound.max_parameter(), None);
        assert_eq!(bound.eval(&row!(1i64)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_bubbles_as_user_error() {
        let e = b(ScalarExpr::lit(1i64), BinOp::Div, ScalarExpr::lit(0i64));
        assert!(e.eval(&Row::empty()).unwrap_err().is_user_error());
    }
}
