//! Logical planning: bound expressions, logical plans, and the binder.
//!
//! The binder turns the raw AST from `dt-sql` into a typed
//! [`plan::LogicalPlan`] over a resolver (the catalog). Views are expanded
//! inline; name binding records, per upstream entity, exactly which columns
//! the query uses (the dependency metadata of §5.4). The plan inventory
//! matches the incrementally maintainable subset of §3.3.2; plans that fall
//! outside it (ORDER BY / LIMIT at the top level) are still executable but
//! are reported as non-differentiable, which forces the DT to FULL refresh
//! mode — mirroring how the production system treats unsupported operators.

pub mod binder;
pub mod expr;
pub mod plan;
pub mod pushdown;

pub use binder::{BindOutput, Binder, Resolver, ResolvedRelation};
pub use expr::{AggExpr, AggFunc, BinOp, ScalarExpr, ScalarFunc, WindowExpr, WindowFunc};
pub use plan::{operator_census, JoinType, LogicalPlan, OperatorKind};
pub use pushdown::{push_down_filters, scan_pushdown};
