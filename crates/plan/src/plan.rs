//! Logical plans.

use std::collections::BTreeMap;
use std::sync::Arc;

use dt_common::{DtResult, EntityId, PredicateSet, Schema, Value};

use crate::expr::{AggExpr, ScalarExpr, WindowExpr};

/// Join types (bound form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join.
    Full,
}

impl JoinType {
    /// True for any outer join.
    pub fn is_outer(self) -> bool {
        !matches!(self, JoinType::Inner)
    }
}

/// A bound, typed logical plan. Every node carries its output schema.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a stored table (base table or DT contents).
    TableScan {
        /// The catalog entity scanned.
        entity: EntityId,
        /// Entity name (for debugging / EXPLAIN).
        name: String,
        /// Output schema.
        schema: Arc<Schema>,
        /// Column-vs-constant conjuncts pushed below the scan by
        /// [`crate::pushdown::push_down_filters`]. Storage applies them
        /// vectorized and uses them to zone-map-prune partitions. `None`
        /// until the rewrite runs (the binder never sets them).
        pushdown: Option<PredicateSet>,
    },
    /// A single empty row (FROM-less SELECT).
    SingleRow,
    /// Filter rows by a boolean predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: ScalarExpr,
    },
    /// Compute projections.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Projection expressions.
        exprs: Vec<ScalarExpr>,
        /// Output schema (names chosen by the binder).
        schema: Arc<Schema>,
    },
    /// Join two inputs on a predicate over the concatenated row.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join type.
        join_type: JoinType,
        /// ON condition over `left ++ right` columns.
        on: ScalarExpr,
        /// Output schema (left columns then right columns).
        schema: Arc<Schema>,
    },
    /// Bag union (UNION ALL). All inputs share the first input's schema.
    UnionAll {
        /// The inputs.
        inputs: Vec<LogicalPlan>,
        /// Output schema.
        schema: Arc<Schema>,
    },
    /// Grouped aggregation. Output = group key columns then aggregates.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group key expressions (may be empty for scalar aggregation,
        /// which is NOT differentiable in our engine — matching §3.3.2,
        /// where scalar aggregates are unsupported for incremental mode).
        group_exprs: Vec<ScalarExpr>,
        /// Aggregate expressions.
        aggregates: Vec<AggExpr>,
        /// Output schema.
        schema: Arc<Schema>,
    },
    /// Set-ify the bag (SELECT DISTINCT).
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Compute window functions; appends one column per expression.
    Window {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The window expressions.
        exprs: Vec<WindowExpr>,
        /// Output schema: input columns then window columns.
        schema: Arc<Schema>,
    },
    /// Sort (top-level ORDER BY). Not differentiable.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema (expr, descending).
        keys: Vec<(ScalarExpr, bool)>,
    },
    /// Row-count limit. Not differentiable.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Max rows.
        n: u64,
    },
}

impl LogicalPlan {
    /// The output schema of this plan.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            LogicalPlan::TableScan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::UnionAll { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Window { schema, .. } => Arc::clone(schema),
            LogicalPlan::SingleRow => Arc::new(Schema::empty()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan { .. } | LogicalPlan::SingleRow => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::UnionAll { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Pre-order visit of the whole plan tree.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }

    /// All entities scanned by this plan (the DT's upstream set, §5.4).
    pub fn scanned_entities(&self) -> Vec<EntityId> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let LogicalPlan::TableScan { entity, .. } = p {
                out.push(*entity);
            }
        });
        out.sort();
        out.dedup();
        out
    }

    /// True when every operator in the plan has a differentiation rule
    /// (§3.3.2's supported set). Sort and Limit are the unsupported ones in
    /// this engine; scalar (group-less) aggregates are also excluded, as in
    /// the paper.
    pub fn is_differentiable(&self) -> bool {
        let mut ok = true;
        self.walk(&mut |p| match p {
            LogicalPlan::Sort { .. } | LogicalPlan::Limit { .. } => ok = false,
            LogicalPlan::Aggregate { group_exprs, .. } if group_exprs.is_empty() => ok = false,
            // §5.5.1: the window derivative requires PARTITION BY.
            LogicalPlan::Window { exprs, .. }
                if exprs.iter().any(|w| w.partition_by.is_empty()) =>
            {
                ok = false
            }
            _ => {}
        });
        ok
    }

    /// Every scalar expression referenced anywhere in this node (not
    /// recursing into children).
    fn node_exprs(&self) -> Vec<&ScalarExpr> {
        match self {
            LogicalPlan::TableScan { .. } | LogicalPlan::SingleRow => vec![],
            LogicalPlan::Filter { predicate, .. } => vec![predicate],
            LogicalPlan::Project { exprs, .. } => exprs.iter().collect(),
            LogicalPlan::Join { on, .. } => vec![on],
            LogicalPlan::UnionAll { .. } | LogicalPlan::Distinct { .. } => vec![],
            LogicalPlan::Aggregate {
                group_exprs,
                aggregates,
                ..
            } => group_exprs
                .iter()
                .chain(aggregates.iter().filter_map(|a| a.arg.as_ref()))
                .collect(),
            LogicalPlan::Window { exprs, .. } => exprs
                .iter()
                .flat_map(|w| {
                    w.arg
                        .iter()
                        .chain(w.partition_by.iter())
                        .chain(w.order_by.iter().map(|(e, _)| e))
                })
                .collect(),
            LogicalPlan::Sort { keys, .. } => keys.iter().map(|(e, _)| e).collect(),
            LogicalPlan::Limit { .. } => vec![],
        }
    }

    /// The largest `?` parameter index referenced anywhere in the plan
    /// (None when the plan is parameter-free and directly executable).
    pub fn max_parameter(&self) -> Option<usize> {
        let mut max: Option<usize> = None;
        self.walk(&mut |p| {
            for e in p.node_exprs() {
                if let Some(i) = e.max_parameter() {
                    max = Some(max.map_or(i, |m| m.max(i)));
                }
            }
        });
        max
    }

    /// Bind `?` parameters: returns a copy of the plan with every
    /// [`ScalarExpr::Parameter`] replaced by the corresponding literal.
    /// Errors when a parameter index exceeds `params` (too few bindings).
    /// Shared `Arc<Schema>`s are reused, so binding is cheap relative to
    /// lexing/parsing/binding the statement from scratch. Known limitation:
    /// schemas are *not* recomputed, so a column whose type is only known
    /// at bind time (e.g. a bare `SELECT ?`) keeps the planning-time
    /// STRING placeholder type in the output schema even though the rows
    /// carry the bound value's real type. Parameters in predicates and
    /// arithmetic — the normal usage — are unaffected.
    pub fn bind_params(&self, params: &[Value]) -> DtResult<LogicalPlan> {
        Ok(match self {
            LogicalPlan::TableScan { .. } | LogicalPlan::SingleRow => self.clone(),
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input: Box::new(input.bind_params(params)?),
                predicate: predicate.bind_params(params)?,
            },
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => LogicalPlan::Project {
                input: Box::new(input.bind_params(params)?),
                exprs: exprs
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<DtResult<_>>()?,
                schema: Arc::clone(schema),
            },
            LogicalPlan::Join {
                left,
                right,
                join_type,
                on,
                schema,
            } => LogicalPlan::Join {
                left: Box::new(left.bind_params(params)?),
                right: Box::new(right.bind_params(params)?),
                join_type: *join_type,
                on: on.bind_params(params)?,
                schema: Arc::clone(schema),
            },
            LogicalPlan::UnionAll { inputs, schema } => LogicalPlan::UnionAll {
                inputs: inputs
                    .iter()
                    .map(|p| p.bind_params(params))
                    .collect::<DtResult<_>>()?,
                schema: Arc::clone(schema),
            },
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                aggregates,
                schema,
            } => LogicalPlan::Aggregate {
                input: Box::new(input.bind_params(params)?),
                group_exprs: group_exprs
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<DtResult<_>>()?,
                aggregates: aggregates
                    .iter()
                    .map(|a| {
                        Ok(AggExpr {
                            func: a.func,
                            arg: match &a.arg {
                                Some(e) => Some(e.bind_params(params)?),
                                None => None,
                            },
                            distinct: a.distinct,
                            name: a.name.clone(),
                        })
                    })
                    .collect::<DtResult<_>>()?,
                schema: Arc::clone(schema),
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(input.bind_params(params)?),
            },
            LogicalPlan::Window {
                input,
                exprs,
                schema,
            } => LogicalPlan::Window {
                input: Box::new(input.bind_params(params)?),
                exprs: exprs
                    .iter()
                    .map(|w| {
                        Ok(WindowExpr {
                            func: w.func,
                            arg: match &w.arg {
                                Some(e) => Some(e.bind_params(params)?),
                                None => None,
                            },
                            partition_by: w
                                .partition_by
                                .iter()
                                .map(|e| e.bind_params(params))
                                .collect::<DtResult<_>>()?,
                            order_by: w
                                .order_by
                                .iter()
                                .map(|(e, d)| Ok((e.bind_params(params)?, *d)))
                                .collect::<DtResult<_>>()?,
                            name: w.name.clone(),
                        })
                    })
                    .collect::<DtResult<_>>()?,
                schema: Arc::clone(schema),
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(input.bind_params(params)?),
                keys: keys
                    .iter()
                    .map(|(e, d)| Ok((e.bind_params(params)?, *d)))
                    .collect::<DtResult<_>>()?,
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: Box::new(input.bind_params(params)?),
                n: *n,
            },
        })
    }

    /// A one-line-per-node EXPLAIN rendering.
    pub fn explain(&self) -> String {
        fn go(p: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let line = match p {
                LogicalPlan::TableScan { name, pushdown, .. } => match pushdown {
                    Some(ps) if !ps.is_empty() => format!("Scan {name} [pushdown: {ps}]"),
                    _ => format!("Scan {name}"),
                },
                LogicalPlan::SingleRow => "SingleRow".to_string(),
                LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
                LogicalPlan::Project { exprs, .. } => format!("Project [{} exprs]", exprs.len()),
                LogicalPlan::Join { join_type, on, .. } => format!("{join_type:?}Join on {on}"),
                LogicalPlan::UnionAll { inputs, .. } => {
                    format!("UnionAll [{} inputs]", inputs.len())
                }
                LogicalPlan::Aggregate {
                    group_exprs,
                    aggregates,
                    ..
                } => format!(
                    "Aggregate [{} keys, {} aggs]",
                    group_exprs.len(),
                    aggregates.len()
                ),
                LogicalPlan::Distinct { .. } => "Distinct".to_string(),
                LogicalPlan::Window { exprs, .. } => format!("Window [{} fns]", exprs.len()),
                LogicalPlan::Sort { keys, .. } => format!("Sort [{} keys]", keys.len()),
                LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            };
            out.push_str(&pad);
            out.push_str(&line);
            out.push('\n');
            for c in p.children() {
                go(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

/// Operator kinds counted by the Figure 6 census.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OperatorKind {
    /// Table scan.
    Scan,
    /// Filter.
    Filter,
    /// Projection.
    Project,
    /// Inner join.
    InnerJoin,
    /// Any outer join.
    OuterJoin,
    /// UNION ALL.
    UnionAll,
    /// Grouped aggregation.
    Aggregate,
    /// DISTINCT.
    Distinct,
    /// Window function.
    Window,
    /// Sort.
    Sort,
    /// Limit.
    Limit,
}

impl OperatorKind {
    /// Display name matching the figure's axis labels.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Scan => "scan",
            OperatorKind::Filter => "filter",
            OperatorKind::Project => "project",
            OperatorKind::InnerJoin => "inner join",
            OperatorKind::OuterJoin => "outer join",
            OperatorKind::UnionAll => "union all",
            OperatorKind::Aggregate => "aggregate",
            OperatorKind::Distinct => "distinct",
            OperatorKind::Window => "window function",
            OperatorKind::Sort => "sort",
            OperatorKind::Limit => "limit",
        }
    }
}

/// Count operator occurrences in a plan — the measurement behind Figure 6
/// (frequency of each operator in the definitions of incremental DTs).
pub fn operator_census(plan: &LogicalPlan) -> BTreeMap<OperatorKind, usize> {
    let mut counts = BTreeMap::new();
    plan.walk(&mut |p| {
        let kind = match p {
            LogicalPlan::TableScan { .. } => OperatorKind::Scan,
            LogicalPlan::SingleRow => return,
            LogicalPlan::Filter { .. } => OperatorKind::Filter,
            LogicalPlan::Project { .. } => OperatorKind::Project,
            LogicalPlan::Join { join_type, .. } => {
                if join_type.is_outer() {
                    OperatorKind::OuterJoin
                } else {
                    OperatorKind::InnerJoin
                }
            }
            LogicalPlan::UnionAll { .. } => OperatorKind::UnionAll,
            LogicalPlan::Aggregate { .. } => OperatorKind::Aggregate,
            LogicalPlan::Distinct { .. } => OperatorKind::Distinct,
            LogicalPlan::Window { .. } => OperatorKind::Window,
            LogicalPlan::Sort { .. } => OperatorKind::Sort,
            LogicalPlan::Limit { .. } => OperatorKind::Limit,
        };
        *counts.entry(kind).or_insert(0) += 1;
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{Column, DataType};

    fn scan(id: u64) -> LogicalPlan {
        LogicalPlan::TableScan {
            entity: EntityId(id),
            name: format!("t{id}"),
            schema: Arc::new(Schema::new(vec![Column::new("x", DataType::Int)])),
            pushdown: None,
        }
    }

    #[test]
    fn scanned_entities_dedup() {
        let p = LogicalPlan::Join {
            left: Box::new(scan(1)),
            right: Box::new(scan(1)),
            join_type: JoinType::Inner,
            on: ScalarExpr::lit(true),
            schema: Arc::new(Schema::empty()),
        };
        assert_eq!(p.scanned_entities(), vec![EntityId(1)]);
    }

    #[test]
    fn differentiability_rules() {
        assert!(scan(1).is_differentiable());
        let sorted = LogicalPlan::Sort {
            input: Box::new(scan(1)),
            keys: vec![],
        };
        assert!(!sorted.is_differentiable());
        let limited = LogicalPlan::Limit {
            input: Box::new(scan(1)),
            n: 5,
        };
        assert!(!limited.is_differentiable());
        // Scalar aggregate (no group keys) is not differentiable.
        let scalar_agg = LogicalPlan::Aggregate {
            input: Box::new(scan(1)),
            group_exprs: vec![],
            aggregates: vec![],
            schema: Arc::new(Schema::empty()),
        };
        assert!(!scalar_agg.is_differentiable());
    }

    #[test]
    fn census_counts_join_flavors() {
        let p = LogicalPlan::Join {
            left: Box::new(scan(1)),
            right: Box::new(LogicalPlan::Join {
                left: Box::new(scan(2)),
                right: Box::new(scan(3)),
                join_type: JoinType::Left,
                on: ScalarExpr::lit(true),
                schema: Arc::new(Schema::empty()),
            }),
            join_type: JoinType::Inner,
            on: ScalarExpr::lit(true),
            schema: Arc::new(Schema::empty()),
        };
        let census = operator_census(&p);
        assert_eq!(census[&OperatorKind::InnerJoin], 1);
        assert_eq!(census[&OperatorKind::OuterJoin], 1);
        assert_eq!(census[&OperatorKind::Scan], 3);
    }

    #[test]
    fn bind_params_replaces_every_slot() {
        use dt_common::Value;
        let p = LogicalPlan::Filter {
            input: Box::new(scan(1)),
            predicate: ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::Parameter(0)),
        };
        assert_eq!(p.max_parameter(), Some(0));
        let bound = p.bind_params(&[Value::Int(9)]).unwrap();
        assert_eq!(bound.max_parameter(), None);
        let LogicalPlan::Filter { predicate, .. } = &bound else {
            panic!()
        };
        assert_eq!(
            *predicate,
            ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(9i64))
        );
        // Too few bindings is an error, not a silent NULL.
        assert!(p.bind_params(&[]).is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan(1)),
            predicate: ScalarExpr::lit(true),
        };
        let text = p.explain();
        assert!(text.contains("Filter"));
        assert!(text.contains("  Scan t1"));
    }
}
