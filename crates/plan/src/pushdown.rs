//! Filter pushdown: move column-vs-constant conjuncts below table scans.
//!
//! [`push_down_filters`] rewrites `Filter(TableScan)` shapes: the
//! predicate is split at its top-level `AND`s, conjuncts of the form
//! `column OP literal` (either orientation) become a
//! [`PredicateSet`] on the scan, and whatever remains stays behind as the
//! residual filter — which the executor still evaluates, so a conjunct the
//! scan already applied is never re-derived wrongly and a conjunct the
//! scan *can't* apply is never lost. With everything pushed, the filter
//! node disappears entirely.
//!
//! Only comparisons against literals are pushable — run the rewrite
//! *after* [`LogicalPlan::bind_params`], so prepared-statement parameters
//! have already become literals and get pushed too. (An unbound
//! `Parameter` is simply not pushable; the rewrite is safe either way.)
//!
//! Note on evaluation order: SQL leaves conjunct evaluation order
//! unspecified. Pushing a conjunct means rows it rejects never reach the
//! residual, so a residual that would *error* on such a row (e.g.
//! `1/x = 1 AND x > 0` at `x = 0`) no longer does. Result rows are always
//! identical; only error surfacing on rejected rows can differ, exactly as
//! in any engine with scan-level filtering.

use std::sync::Arc;

use dt_common::{CmpOp, ColumnPredicate, PredicateSet};

use crate::expr::{BinOp, ScalarExpr};
use crate::plan::LogicalPlan;

/// Rewrite the plan bottom-up, attaching pushable conjuncts of
/// `Filter`-over-`TableScan` nodes to the scan. Pure function: returns the
/// rewritten plan.
pub fn push_down_filters(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_filters(input);
            if let LogicalPlan::TableScan {
                entity,
                name,
                schema,
                pushdown,
            } = &input
            {
                let mut pushed = pushdown.clone().unwrap_or_default().preds;
                let mut residual: Vec<&ScalarExpr> = Vec::new();
                for conjunct in split_conjuncts(predicate) {
                    match as_column_predicate(conjunct) {
                        Some(p) => pushed.push(p),
                        None => residual.push(conjunct),
                    }
                }
                if pushed.is_empty() {
                    return LogicalPlan::Filter {
                        input: Box::new(input),
                        predicate: predicate.clone(),
                    };
                }
                let scan = LogicalPlan::TableScan {
                    entity: *entity,
                    name: name.clone(),
                    schema: Arc::clone(schema),
                    pushdown: Some(PredicateSet::new(pushed)),
                };
                return match rejoin_conjuncts(&residual) {
                    // Everything pushed: the filter node dissolves (its
                    // schema equals its input's, so shapes are unchanged).
                    None => scan,
                    Some(residual) => LogicalPlan::Filter {
                        input: Box::new(scan),
                        predicate: residual,
                    },
                };
            }
            LogicalPlan::Filter {
                input: Box::new(input),
                predicate: predicate.clone(),
            }
        }
        LogicalPlan::TableScan { .. } | LogicalPlan::SingleRow => plan.clone(),
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(push_down_filters(input)),
            exprs: exprs.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(left)),
            right: Box::new(push_down_filters(right)),
            join_type: *join_type,
            on: on.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::UnionAll { inputs, schema } => LogicalPlan::UnionAll {
            inputs: inputs.iter().map(push_down_filters).collect(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(input)),
            group_exprs: group_exprs.clone(),
            aggregates: aggregates.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_down_filters(input)),
        },
        LogicalPlan::Window {
            input,
            exprs,
            schema,
        } => LogicalPlan::Window {
            input: Box::new(push_down_filters(input)),
            exprs: exprs.clone(),
            schema: Arc::clone(schema),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_filters(input)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_down_filters(input)),
            n: *n,
        },
    }
}

/// Flatten a predicate's top-level AND tree into conjuncts.
fn split_conjuncts(e: &ScalarExpr) -> Vec<&ScalarExpr> {
    let mut out = Vec::new();
    fn go<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
        match e {
            ScalarExpr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                go(left, out);
                go(right, out);
            }
            other => out.push(other),
        }
    }
    go(e, &mut out);
    out
}

/// Reassemble residual conjuncts into one left-deep AND (evaluation order
/// preserved), or `None` when nothing is left.
fn rejoin_conjuncts(conjuncts: &[&ScalarExpr]) -> Option<ScalarExpr> {
    let mut it = conjuncts.iter();
    let first = (*it.next()?).clone();
    Some(it.fold(first, |acc, c| ScalarExpr::Binary {
        left: Box::new(acc),
        op: BinOp::And,
        right: Box::new((*c).clone()),
    }))
}

/// `col OP literal` / `literal OP col` → a pushable [`ColumnPredicate`].
fn as_column_predicate(e: &ScalarExpr) -> Option<ColumnPredicate> {
    let ScalarExpr::Binary { left, op, right } = e else {
        return None;
    };
    let op = cmp_of(*op)?;
    match (left.as_ref(), right.as_ref()) {
        (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => Some(ColumnPredicate {
            column: *c,
            op,
            literal: v.clone(),
        }),
        (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => Some(ColumnPredicate {
            column: *c,
            op: op.flip(),
            literal: v.clone(),
        }),
        _ => None,
    }
}

fn cmp_of(op: BinOp) -> Option<CmpOp> {
    Some(match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::NotEq => CmpOp::NotEq,
        BinOp::Lt => CmpOp::Lt,
        BinOp::LtEq => CmpOp::LtEq,
        BinOp::Gt => CmpOp::Gt,
        BinOp::GtEq => CmpOp::GtEq,
        _ => return None,
    })
}

/// The pushed-predicate set of a scan, if any (bench/test introspection).
pub fn scan_pushdown(plan: &LogicalPlan) -> Option<&PredicateSet> {
    match plan {
        LogicalPlan::TableScan { pushdown, .. } => pushdown.as_ref(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{Column, DataType, EntityId, Schema, Value};
    use std::sync::Arc;

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            entity: EntityId(1),
            name: "t".into(),
            schema: Arc::new(Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Int),
            ])),
            pushdown: None,
        }
    }

    fn bin(l: ScalarExpr, op: BinOp, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn fully_pushable_filter_dissolves() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: bin(ScalarExpr::col(0), BinOp::Gt, ScalarExpr::lit(5i64)),
        };
        let out = push_down_filters(&p);
        let LogicalPlan::TableScan { pushdown, .. } = &out else {
            panic!("filter should dissolve into the scan: {out:?}");
        };
        let ps = pushdown.as_ref().unwrap();
        assert_eq!(ps.preds.len(), 1);
        assert_eq!(ps.preds[0].column, 0);
        assert_eq!(ps.preds[0].op, CmpOp::Gt);
        assert_eq!(ps.preds[0].literal, Value::Int(5));
        assert_eq!(out.schema(), p.schema());
    }

    #[test]
    fn flipped_literal_orientation_is_normalized() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: bin(ScalarExpr::lit(5i64), BinOp::Lt, ScalarExpr::col(1)),
        };
        let out = push_down_filters(&p);
        let LogicalPlan::TableScan { pushdown, .. } = &out else {
            panic!()
        };
        let p0 = &pushdown.as_ref().unwrap().preds[0];
        // 5 < y  ≡  y > 5
        assert_eq!((p0.column, p0.op), (1, CmpOp::Gt));
    }

    #[test]
    fn mixed_conjunction_keeps_residual() {
        // x > 5 AND x + y = 3: first conjunct pushes, second stays.
        let pushable = bin(ScalarExpr::col(0), BinOp::Gt, ScalarExpr::lit(5i64));
        let residual = bin(
            bin(ScalarExpr::col(0), BinOp::Add, ScalarExpr::col(1)),
            BinOp::Eq,
            ScalarExpr::lit(3i64),
        );
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: bin(pushable, BinOp::And, residual.clone()),
        };
        let out = push_down_filters(&p);
        let LogicalPlan::Filter { input, predicate } = &out else {
            panic!("residual filter must remain: {out:?}");
        };
        assert_eq!(*predicate, residual);
        let LogicalPlan::TableScan { pushdown, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(pushdown.as_ref().unwrap().preds.len(), 1);
    }

    #[test]
    fn or_and_non_literal_comparisons_do_not_push() {
        for pred in [
            // OR is not a conjunction.
            bin(
                bin(ScalarExpr::col(0), BinOp::Gt, ScalarExpr::lit(1i64)),
                BinOp::Or,
                bin(ScalarExpr::col(1), BinOp::Gt, ScalarExpr::lit(1i64)),
            ),
            // column-vs-column.
            bin(ScalarExpr::col(0), BinOp::Eq, ScalarExpr::col(1)),
            // unbound parameter.
            bin(ScalarExpr::col(0), BinOp::Eq, ScalarExpr::Parameter(0)),
        ] {
            let p = LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: pred.clone(),
            };
            let out = push_down_filters(&p);
            assert_eq!(out, p, "{pred:?} must not push");
        }
    }

    #[test]
    fn filters_above_non_scans_are_untouched() {
        let p = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Distinct {
                input: Box::new(scan()),
            }),
            predicate: bin(ScalarExpr::col(0), BinOp::Gt, ScalarExpr::lit(5i64)),
        };
        assert_eq!(push_down_filters(&p), p);
    }

    #[test]
    fn explain_shows_pushdown() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: bin(ScalarExpr::col(0), BinOp::GtEq, ScalarExpr::lit(2i64)),
        };
        let text = push_down_filters(&p).explain();
        assert!(text.contains("Scan t [pushdown: #0 >= 2]"), "{text}");
    }
}
