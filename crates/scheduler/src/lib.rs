//! Refresh scheduling (§3.2, §3.3, §5.2 of the paper).
//!
//! * [`periods`] — target-lag resolution (durations and `DOWNSTREAM`) and
//!   the canonical refresh periods `48·2ⁿ` seconds with a constant
//!   per-account phase, which guarantee that the data timestamps of DTs
//!   with different target lags align (§5.2).
//! * [`warehouse`] — the virtual-warehouse cost model: per-second credit
//!   billing, auto-suspend, node-count scaling (§3.3.1), and the
//!   fixed + variable refresh cost model of §3.3.2.
//! * [`scheduler`] — the refresh planner: due-refresh computation in
//!   dependency order with aligned data timestamps, skip logic when the
//!   previous refresh is still running (§3.3.3), the consecutive-error
//!   counter with automatic suspension, and lag telemetry (the sawtooth of
//!   Figure 4).
//!
//! The scheduler is a *planner*: it decides what to refresh and when, and
//! is driven by the database façade (`dt-core`), which executes refreshes
//! and reports outcomes back. This mirrors the paper's split between the
//! scheduler service and the refresh jobs it issues (§5.1).

pub mod periods;
pub mod scheduler;
pub mod warehouse;

pub use periods::{canonical_period, TargetLag, CANONICAL_BASE_SECS};
pub use scheduler::{
    DtSchedState, LagSample, RefreshAction, RefreshCommand, RefreshOutcome, Scheduler,
    SchedulerConfig,
};
pub use warehouse::{CostModel, Warehouse, WarehousePool};
