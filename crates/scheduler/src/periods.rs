//! Target lags and canonical refresh periods.

use dt_common::Duration;

/// Target lag (scheduler-side mirror of the catalog's spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetLag {
    /// Keep lag below this duration.
    Duration(Duration),
    /// Align with the minimum target lag of downstream DTs (§3.2).
    Downstream,
}

/// Base of the canonical period set: §5.2 "We define a set of canonical
/// refresh periods as 48·2ⁿ seconds, for integers n."
pub const CANONICAL_BASE_SECS: i64 = 48;

/// Choose the canonical refresh period for a target lag: the largest
/// `48·2ⁿ` not exceeding half the target lag (leaving the other half of the
/// budget for waiting time `w` and refresh duration `d`, per the
/// `p + w + d < t` requirement of §5.2), clamped below at `48·2⁰`.
///
/// Because every canonical period divides all larger ones and the phase is
/// constant per account, the refresh grids of different DTs align — the
/// property §5.2 relies on for snapshot isolation across the DT graph.
pub fn canonical_period(target_lag: Duration) -> Duration {
    let budget_secs = (target_lag.as_secs() / 2).max(CANONICAL_BASE_SECS);
    let mut p = CANONICAL_BASE_SECS;
    while p * 2 <= budget_secs {
        p *= 2;
    }
    Duration::from_secs(p)
}

/// The last grid point at or before `now` for a period and phase.
pub fn grid_at_or_before(
    now: dt_common::Timestamp,
    period: Duration,
    phase: Duration,
) -> dt_common::Timestamp {
    let p = period.as_micros();
    let ph = phase.as_micros();
    let t = now.as_micros() - ph;
    let k = t.div_euclid(p);
    dt_common::Timestamp::from_micros(k * p + ph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::Timestamp;

    #[test]
    fn canonical_periods_are_48_times_powers_of_two() {
        for lag_mins in [1i64, 2, 5, 10, 60, 960] {
            let p = canonical_period(Duration::from_mins(lag_mins)).as_secs();
            assert_eq!(p % CANONICAL_BASE_SECS, 0);
            let q = p / CANONICAL_BASE_SECS;
            assert_eq!(q & (q - 1), 0, "{q} not a power of two");
        }
    }

    #[test]
    fn period_leaves_headroom_under_target() {
        // 1 minute target → 48s period (the minimum).
        assert_eq!(canonical_period(Duration::from_mins(1)), Duration::from_secs(48));
        // 10 minutes → largest 48·2ⁿ ≤ 300s = 192s.
        assert_eq!(
            canonical_period(Duration::from_mins(10)),
            Duration::from_secs(192)
        );
        // 16 hours → ≤ 28800s: 48·512 = 24576s.
        assert_eq!(
            canonical_period(Duration::from_hours(16)),
            Duration::from_secs(24576)
        );
    }

    #[test]
    fn period_can_be_much_smaller_than_target_lag() {
        // §5.2: users are sometimes surprised that the refresh period is
        // substantially smaller than the target lag.
        let target = Duration::from_hours(1);
        let p = canonical_period(target);
        assert!(p.as_secs() * 2 <= target.as_secs());
    }

    #[test]
    fn smaller_periods_divide_larger_ones() {
        let a = canonical_period(Duration::from_mins(2)).as_secs();
        let b = canonical_period(Duration::from_hours(4)).as_secs();
        assert_eq!(b % a, 0);
    }

    #[test]
    fn downstream_chain_resolves_to_min_consumer_lag_and_period() {
        use crate::scheduler::{Scheduler, SchedulerConfig};
        use dt_common::EntityId;

        // a ← b ← {c, d}: a and b are DOWNSTREAM, c/d carry durations.
        let mut s = Scheduler::new(SchedulerConfig::default());
        let (a, b, c, d) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4));
        s.register(a, TargetLag::Downstream, vec![]);
        s.register(b, TargetLag::Downstream, vec![a]);
        s.register(c, TargetLag::Duration(Duration::from_mins(30)), vec![b]);
        s.register(d, TargetLag::Duration(Duration::from_hours(4)), vec![b]);

        // §3.2: DOWNSTREAM inherits the *minimum* consumer lag, transitively.
        assert_eq!(s.effective_lag(b), Some(Duration::from_mins(30)));
        assert_eq!(s.effective_lag(a), Some(Duration::from_mins(30)));

        // The refresh period is the canonical period of the resolved lag:
        // 30 min → half-budget 900 s → largest 48·2ⁿ ≤ 900 is 48·16 = 768.
        assert_eq!(s.period_of(a), Some(canonical_period(Duration::from_mins(30))));
        assert_eq!(s.period_of(a), Some(Duration::from_secs(768)));
    }

    #[test]
    fn phase_alignment_guarantee_across_lag_spectrum() {
        // §5.2: because every canonical period divides all larger ones and
        // the phase is constant per account, every grid point of a larger
        // period is also a grid point of any smaller period — so data
        // timestamps of DTs with different target lags align.
        let phase = Duration::from_secs(17);
        let lag_mins = [1i64, 7, 30, 120, 960, 5760];
        for now_secs in [1_000i64, 54_321, 1_000_000] {
            let now = Timestamp::from_secs(now_secs);
            for &la in &lag_mins {
                for &lb in &lag_mins {
                    let pa = canonical_period(Duration::from_mins(la));
                    let pb = canonical_period(Duration::from_mins(lb));
                    if pa > pb {
                        continue;
                    }
                    assert_eq!(pb.as_secs() % pa.as_secs(), 0, "{pa:?} ∤ {pb:?}");
                    // A grid point of the coarser grid sits on the finer one.
                    let gb = grid_at_or_before(now, pb, phase);
                    assert_eq!(grid_at_or_before(gb, pa, phase), gb);
                }
            }
        }
    }

    #[test]
    fn grid_alignment() {
        let p = Duration::from_secs(96);
        let phase = Duration::from_secs(10);
        let g = grid_at_or_before(Timestamp::from_secs(500), p, phase);
        assert_eq!(g, Timestamp::from_secs(490)); // 10 + 5*96 = 490
        // Grid points of a divider period include those of the multiple.
        let small = Duration::from_secs(48);
        let g2 = grid_at_or_before(g, small, phase);
        assert_eq!(g2, g);
    }
}
