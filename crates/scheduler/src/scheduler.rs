//! The refresh planner.

use std::collections::{BTreeMap, BTreeSet};

use dt_common::{DtError, DtResult, Duration, EntityId, Timestamp};

use crate::periods::{canonical_period, grid_at_or_before, TargetLag};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Constant per-account phase offsetting the refresh grid (§5.2).
    pub phase: Duration,
    /// Consecutive failures before automatic suspension (§3.3.3).
    pub error_suspend_threshold: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            phase: Duration::ZERO,
            error_suspend_threshold: 5,
        }
    }
}

/// The action a refresh took (§3.3.2 / §3.3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshAction {
    /// Sources unchanged; only the data timestamp advanced. Free.
    NoData,
    /// INSERT OVERWRITE of the full defining query.
    Full,
    /// Changes computed and merged.
    Incremental,
    /// Upstream change invalidated stored results; recompute with row ids.
    Reinitialize,
    /// The refresh failed with a user error.
    Failed(String),
}

/// The outcome the driver reports after executing a refresh.
#[derive(Debug, Clone)]
pub struct RefreshOutcome {
    /// What happened.
    pub action: RefreshAction,
    /// Output changed rows (inserts + deletes) — the §6.3 metric.
    pub changed_rows: usize,
    /// The DT's row count after the refresh.
    pub dt_rows: usize,
    /// Work units consumed (for warehouse billing).
    pub work_units: f64,
}

/// A refresh the scheduler wants executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshCommand {
    /// The DT to refresh.
    pub dt: EntityId,
    /// The data timestamp to refresh to.
    pub refresh_ts: Timestamp,
    /// Grid points skipped since the last refresh (folded into this one's
    /// change interval, §3.3.3).
    pub skipped: u64,
}

/// One point of the lag sawtooth (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LagSample {
    /// Measurement instant.
    pub at: Timestamp,
    /// Lag value.
    pub lag: Duration,
    /// True for the peak (just before commit), false for the trough
    /// (just after).
    pub peak: bool,
}

/// Scheduler-side state of one DT.
#[derive(Debug, Clone)]
pub struct DtSchedState {
    /// Entity id.
    pub id: EntityId,
    /// Declared target lag.
    pub target: TargetLag,
    /// Upstream entities (only registered DTs constrain scheduling).
    pub upstream: Vec<EntityId>,
    /// Current data timestamp (None until initialized).
    pub last_data_ts: Option<Timestamp>,
    /// In-flight refresh: (refresh_ts, expected end).
    pub in_flight: Option<(Timestamp, Timestamp)>,
    /// Suspended (user or errors).
    pub suspended: bool,
    /// Consecutive error count.
    pub error_count: u32,
    /// Total skips.
    pub skipped_total: u64,
    /// Counts per action label, for the §6.3 statistics.
    pub action_counts: BTreeMap<&'static str, u64>,
    /// Lag sawtooth samples.
    pub lag_samples: Vec<LagSample>,
}

/// The refresh planner.
#[derive(Debug, Default)]
pub struct Scheduler {
    config: SchedulerConfig,
    dts: BTreeMap<EntityId, DtSchedState>,
}

impl Scheduler {
    /// Build with a config.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            dts: BTreeMap::new(),
        }
    }

    /// Register a DT. Until [`Scheduler::mark_initialized`] it is not
    /// scheduled.
    pub fn register(&mut self, id: EntityId, target: TargetLag, upstream: Vec<EntityId>) {
        self.dts.insert(
            id,
            DtSchedState {
                id,
                target,
                upstream,
                last_data_ts: None,
                in_flight: None,
                suspended: false,
                error_count: 0,
                skipped_total: 0,
                action_counts: BTreeMap::new(),
                lag_samples: Vec::new(),
            },
        );
    }

    /// Remove a DT (drop/replace).
    pub fn unregister(&mut self, id: EntityId) {
        self.dts.remove(&id);
    }

    /// State of one DT.
    pub fn state(&self, id: EntityId) -> Option<&DtSchedState> {
        self.dts.get(&id)
    }

    /// All registered DTs.
    pub fn registered(&self) -> Vec<EntityId> {
        self.dts.keys().copied().collect()
    }

    /// Suspend or resume a DT (user action; resume clears errors).
    pub fn set_suspended(&mut self, id: EntityId, suspended: bool) -> DtResult<()> {
        let st = self
            .dts
            .get_mut(&id)
            .ok_or_else(|| DtError::Catalog(format!("unknown DT {id}")))?;
        st.suspended = suspended;
        if !suspended {
            st.error_count = 0;
        }
        Ok(())
    }

    /// Effective target lag: durations stand; DOWNSTREAM resolves to the
    /// minimum effective lag of downstream DTs (§3.2). Returns None for a
    /// DOWNSTREAM DT with no duration-lagged consumer (it refreshes only
    /// on demand).
    pub fn effective_lag(&self, id: EntityId) -> Option<Duration> {
        let mut memo: BTreeMap<EntityId, Option<Duration>> = BTreeMap::new();
        self.effective_lag_memo(id, &mut memo)
    }

    fn effective_lag_memo(
        &self,
        id: EntityId,
        memo: &mut BTreeMap<EntityId, Option<Duration>>,
    ) -> Option<Duration> {
        if let Some(v) = memo.get(&id) {
            return *v;
        }
        memo.insert(id, None); // cycle guard (graphs are acyclic anyway)
        let result = match self.dts.get(&id).map(|s| s.target) {
            Some(TargetLag::Duration(d)) => Some(d),
            Some(TargetLag::Downstream) => {
                let mut best: Option<Duration> = None;
                for (did, st) in &self.dts {
                    if st.upstream.contains(&id) {
                        if let Some(l) = self.effective_lag_memo(*did, memo) {
                            best = Some(match best {
                                None => l,
                                Some(b) => b.min(l),
                            });
                        }
                    }
                }
                best
            }
            None => None,
        };
        memo.insert(id, result);
        result
    }

    /// The refresh period of a DT: the canonical period for its effective
    /// lag, raised to at least every upstream DT's period (§5.2: each DT's
    /// period must be ≥ those upstream).
    pub fn period_of(&self, id: EntityId) -> Option<Duration> {
        let lag = self.effective_lag(id)?;
        let mut p = canonical_period(lag);
        if let Some(st) = self.dts.get(&id) {
            for up in &st.upstream {
                if self.dts.contains_key(up) {
                    if let Some(up_p) = self.period_of(*up) {
                        if up_p > p {
                            p = up_p;
                        }
                    }
                }
            }
        }
        Some(p)
    }

    /// Choose an initialization data timestamp (§3.1.2): the most recent
    /// upstream DT data timestamp that is within the target lag of `now`,
    /// else `now` itself. This avoids the quadratic re-refresh cascade when
    /// users create DTs in dependency order.
    pub fn choose_init_ts(&self, id: EntityId, now: Timestamp) -> Timestamp {
        let lag = self.effective_lag(id).unwrap_or(Duration::ZERO);
        let Some(st) = self.dts.get(&id) else {
            return now;
        };
        let mut best: Option<Timestamp> = None;
        for up in &st.upstream {
            if let Some(up_st) = self.dts.get(up) {
                if let Some(ts) = up_st.last_data_ts {
                    if now.since(ts) <= lag {
                        best = Some(match best {
                            None => ts,
                            Some(b) => b.max(ts),
                        });
                    }
                }
            }
        }
        // All upstream DTs (if any have data within lag) must share the
        // chosen timestamp; the minimum qualifying choice is the most
        // recent one common to all. We use the max recent and rely on the
        // driver to refresh any upstream that lacks that exact timestamp.
        best.unwrap_or(now)
    }

    /// Mark a DT initialized at a data timestamp.
    pub fn mark_initialized(&mut self, id: EntityId, data_ts: Timestamp) -> DtResult<()> {
        let st = self
            .dts
            .get_mut(&id)
            .ok_or_else(|| DtError::Catalog(format!("unknown DT {id}")))?;
        st.last_data_ts = Some(data_ts);
        Ok(())
    }

    /// Compute the refreshes due at `now`, in dependency order. A DT is due
    /// when its grid point advanced beyond its data timestamp, it is not
    /// suspended, not currently refreshing, and every upstream DT already
    /// has data at the target timestamp.
    pub fn due_refreshes(&mut self, now: Timestamp) -> Vec<RefreshCommand> {
        let order = self.topo_order();
        let mut out = Vec::new();
        for id in order {
            let Some(period) = self.period_of(id) else {
                continue;
            };
            let phase = self.config.phase;
            let Some(st) = self.dts.get(&id) else { continue };
            if st.suspended || st.last_data_ts.is_none() {
                continue;
            }
            let scheduled = grid_at_or_before(now, period, phase);
            let last = st.last_data_ts.unwrap();
            if scheduled <= last {
                continue;
            }
            if let Some((_, end)) = st.in_flight {
                // Previous refresh still running: the missed grid point is
                // skipped; the next refresh covers its interval (§3.3.3).
                let _ = end;
                continue;
            }
            // Upstream readiness at the same data timestamp.
            let ready = st.upstream.iter().all(|up| match self.dts.get(up) {
                Some(up_st) => {
                    up_st.last_data_ts.map(|t| t >= scheduled).unwrap_or(false)
                        && up_st.in_flight.is_none()
                }
                None => true, // base tables impose no constraint
            });
            if !ready {
                continue;
            }
            // Count skipped grid points in (last, scheduled).
            let p = period.as_micros();
            let missed = ((scheduled.as_micros() - last.as_micros()) / p - 1).max(0) as u64;
            let st = self.dts.get_mut(&id).unwrap();
            st.skipped_total += missed;
            st.in_flight = Some((scheduled, Timestamp::MAX));
            out.push(RefreshCommand {
                dt: id,
                refresh_ts: scheduled,
                skipped: missed,
            });
        }
        out
    }

    /// Plan a manual refresh (§3.2): a data timestamp at `now` (after the
    /// command was issued), refreshing every upstream DT first at the same
    /// timestamp, in dependency order.
    pub fn manual_refresh_plan(&mut self, id: EntityId, now: Timestamp) -> Vec<RefreshCommand> {
        let mut closure = BTreeSet::new();
        self.upstream_closure(id, &mut closure);
        closure.insert(id);
        let order = self.topo_order();
        let mut out = Vec::new();
        for cand in order {
            if !closure.contains(&cand) {
                continue;
            }
            if let Some(st) = self.dts.get_mut(&cand) {
                if st.last_data_ts == Some(now) {
                    continue; // already there
                }
                st.in_flight = Some((now, Timestamp::MAX));
                out.push(RefreshCommand {
                    dt: cand,
                    refresh_ts: now,
                    skipped: 0,
                });
            }
        }
        out
    }

    fn upstream_closure(&self, id: EntityId, out: &mut BTreeSet<EntityId>) {
        if let Some(st) = self.dts.get(&id) {
            for up in &st.upstream {
                if self.dts.contains_key(up) && out.insert(*up) {
                    self.upstream_closure(*up, out);
                }
            }
        }
    }

    fn topo_order(&self) -> Vec<EntityId> {
        // Kahn's algorithm over DT→DT edges.
        let ids: BTreeSet<EntityId> = self.dts.keys().copied().collect();
        let mut indeg: BTreeMap<EntityId, usize> = ids.iter().map(|i| (*i, 0)).collect();
        for st in self.dts.values() {
            let n = st.upstream.iter().filter(|u| ids.contains(u)).count();
            indeg.insert(st.id, n);
        }
        let mut ready: Vec<EntityId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| *i)
            .collect();
        let mut out = Vec::with_capacity(ids.len());
        while let Some(i) = ready.pop() {
            out.push(i);
            for st in self.dts.values() {
                if st.upstream.contains(&i) {
                    if let Some(d) = indeg.get_mut(&st.id) {
                        *d -= 1;
                        if *d == 0 {
                            ready.push(st.id);
                        }
                    }
                }
            }
        }
        out
    }

    /// Group `dts` into topological levels of the DT dependency DAG: every
    /// DT in level *k* depends (directly or transitively, **within the
    /// given set**) only on DTs in levels < *k*. All DTs in one level can
    /// therefore refresh concurrently once the previous levels have
    /// installed — the schedule a parallel refresh round executes level by
    /// level. DTs in `dts` that are not registered are ignored; ordering
    /// within a level is deterministic (ascending entity id).
    pub fn level_order(&self, dts: &[EntityId]) -> Vec<Vec<EntityId>> {
        let set: BTreeSet<EntityId> = dts
            .iter()
            .copied()
            .filter(|id| self.dts.contains_key(id))
            .collect();
        // Depth of each DT = 1 + max depth of its in-set DT upstreams.
        let mut depth: BTreeMap<EntityId, usize> = BTreeMap::new();
        for id in self.topo_order() {
            if !set.contains(&id) {
                continue;
            }
            let d = self.dts[&id]
                .upstream
                .iter()
                .filter(|u| set.contains(u))
                .filter_map(|u| depth.get(u))
                .map(|d| d + 1)
                .max()
                .unwrap_or(0);
            depth.insert(id, d);
        }
        let max_depth = depth.values().copied().max().map_or(0, |d| d + 1);
        let mut levels = vec![Vec::new(); max_depth];
        for (id, d) in depth {
            levels[d].push(id);
        }
        levels
    }

    /// The downstream cone of `root` restricted to `within`: every DT in
    /// `within` that (transitively) reads `root`, excluding `root` itself.
    /// A parallel refresh round prunes this cone when `root` fails, is
    /// suspended, or conflicts — its descendants cannot produce a
    /// consistent result at the round's timestamp without it (§3.3.3).
    pub fn downstream_cone(&self, root: EntityId, within: &[EntityId]) -> Vec<EntityId> {
        let set: BTreeSet<EntityId> = within.iter().copied().collect();
        // Traverse every registered descendant (an out-of-scope intermediate
        // DT still propagates unavailability), then restrict the answer.
        let mut visited: BTreeSet<EntityId> = BTreeSet::new();
        let mut frontier = vec![root];
        while let Some(parent) = frontier.pop() {
            for st in self.dts.values() {
                if st.upstream.contains(&parent) && visited.insert(st.id) {
                    frontier.push(st.id);
                }
            }
        }
        visited.into_iter().filter(|id| set.contains(id)).collect()
    }

    /// Report a refresh outcome. `started`/`ended` are the wall (simulated)
    /// times of the refresh job. Returns true if the DT was auto-suspended
    /// by the error policy.
    pub fn report(
        &mut self,
        id: EntityId,
        refresh_ts: Timestamp,
        outcome: &RefreshOutcome,
        ended: Timestamp,
    ) -> DtResult<bool> {
        let threshold = self.config.error_suspend_threshold;
        let st = self
            .dts
            .get_mut(&id)
            .ok_or_else(|| DtError::Catalog(format!("unknown DT {id}")))?;
        st.in_flight = None;
        let label = match &outcome.action {
            RefreshAction::NoData => "no_data",
            RefreshAction::Full => "full",
            RefreshAction::Incremental => "incremental",
            RefreshAction::Reinitialize => "reinitialize",
            RefreshAction::Failed(_) => "failed",
        };
        *st.action_counts.entry(label).or_insert(0) += 1;
        if let RefreshAction::Failed(_) = outcome.action {
            // §3.3.3: failures are not retried; the next scheduled refresh
            // (a later data timestamp) will be attempted. Consecutive
            // failures suspend the DT.
            st.error_count += 1;
            if st.error_count >= threshold {
                st.suspended = true;
                return Ok(true);
            }
            return Ok(false);
        }
        st.error_count = 0;
        // A late completion report (e.g. a manual refresh already advanced
        // the data timestamp past this one) must not move time backwards.
        if st.last_data_ts.map(|t| t >= refresh_ts).unwrap_or(false) {
            return Ok(false);
        }
        // Lag sawtooth: the peak is measured just before this commit
        // (against the previous data timestamp), the trough just after.
        if let Some(prev) = st.last_data_ts {
            st.lag_samples.push(LagSample {
                at: ended,
                lag: ended.since(prev),
                peak: true,
            });
        }
        st.lag_samples.push(LagSample {
            at: ended,
            lag: ended.since(refresh_ts),
            peak: false,
        });
        st.last_data_ts = Some(refresh_ts);
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: i64) -> Duration {
        Duration::from_mins(m)
    }

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn ok_outcome() -> RefreshOutcome {
        RefreshOutcome {
            action: RefreshAction::Incremental,
            changed_rows: 10,
            dt_rows: 100,
            work_units: 100.0,
        }
    }

    #[test]
    fn level_order_groups_by_dag_depth() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let base = EntityId(100); // not registered: base tables don't level
        let (a, b, c, d, e) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4), EntityId(5));
        s.register(a, TargetLag::Duration(mins(1)), vec![base]);
        s.register(b, TargetLag::Duration(mins(1)), vec![base]);
        s.register(c, TargetLag::Duration(mins(1)), vec![a, b]);
        s.register(d, TargetLag::Duration(mins(1)), vec![c]);
        s.register(e, TargetLag::Duration(mins(1)), vec![base]);
        let levels = s.level_order(&[a, b, c, d, e]);
        assert_eq!(levels, vec![vec![a, b, e], vec![c], vec![d]]);
        // Restricting the set re-levels: without c, d has no in-set parent.
        let levels = s.level_order(&[a, d]);
        assert_eq!(levels, vec![vec![a, d]]);
        // Unregistered ids are ignored.
        assert_eq!(s.level_order(&[base]), Vec::<Vec<EntityId>>::new());
    }

    #[test]
    fn downstream_cone_is_transitive_and_restricted() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let (a, b, c, d, e) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4), EntityId(5));
        s.register(a, TargetLag::Duration(mins(1)), vec![]);
        s.register(b, TargetLag::Duration(mins(1)), vec![a]);
        s.register(c, TargetLag::Duration(mins(1)), vec![b]);
        s.register(d, TargetLag::Duration(mins(1)), vec![a]);
        s.register(e, TargetLag::Duration(mins(1)), vec![]);
        let all = [a, b, c, d, e];
        assert_eq!(s.downstream_cone(a, &all), vec![b, c, d]);
        assert_eq!(s.downstream_cone(b, &all), vec![c]);
        assert_eq!(s.downstream_cone(e, &all), vec![]);
        // Restriction: c reads b which reads a, but only c is in scope.
        assert_eq!(s.downstream_cone(a, &[c]), vec![c]);
    }

    #[test]
    fn downstream_lag_resolution() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let (a, b, c) = (EntityId(1), EntityId(2), EntityId(3));
        s.register(a, TargetLag::Downstream, vec![]);
        s.register(b, TargetLag::Duration(mins(10)), vec![a]);
        s.register(c, TargetLag::Duration(mins(2)), vec![a]);
        // a inherits the *minimum* downstream lag.
        assert_eq!(s.effective_lag(a), Some(mins(2)));
        // A pure-DOWNSTREAM chain with no consumer resolves to None.
        let mut s2 = Scheduler::new(SchedulerConfig::default());
        s2.register(a, TargetLag::Downstream, vec![]);
        assert_eq!(s2.effective_lag(a), None);
    }

    #[test]
    fn period_respects_upstream() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let (a, b) = (EntityId(1), EntityId(2));
        // Upstream with a large lag → large period; downstream with small
        // lag is clamped up to the upstream period (§5.2).
        s.register(a, TargetLag::Duration(Duration::from_hours(4)), vec![]);
        s.register(b, TargetLag::Duration(mins(1)), vec![a]);
        let pa = s.period_of(a).unwrap();
        let pb = s.period_of(b).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn due_refreshes_in_dependency_order_and_alignment() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let (a, b) = (EntityId(1), EntityId(2));
        s.register(a, TargetLag::Duration(mins(2)), vec![]);
        s.register(b, TargetLag::Duration(mins(2)), vec![a]);
        s.mark_initialized(a, ts(0)).unwrap();
        s.mark_initialized(b, ts(0)).unwrap();
        // At t=100s the 48s grid has points at 48 and 96.
        let due = s.due_refreshes(ts(100));
        // Only `a` can start; `b` waits for a's data at ts 96.
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].dt, a);
        assert_eq!(due[0].refresh_ts, ts(96));
        s.report(a, ts(96), &ok_outcome(), ts(101)).unwrap();
        let due = s.due_refreshes(ts(102));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].dt, b);
        assert_eq!(due[0].refresh_ts, ts(96));
    }

    #[test]
    fn no_duplicate_issue_while_in_flight_and_skips_counted() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let a = EntityId(1);
        s.register(a, TargetLag::Duration(mins(1)), vec![]);
        s.mark_initialized(a, ts(0)).unwrap();
        let due = s.due_refreshes(ts(50));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].refresh_ts, ts(48));
        // Still in flight at the next grid point: nothing due.
        assert!(s.due_refreshes(ts(100)).is_empty());
        // Finishes late at t=150 (after missing grid 96 and 144).
        s.report(a, ts(48), &ok_outcome(), ts(150)).unwrap();
        let due = s.due_refreshes(ts(150));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].refresh_ts, ts(144));
        // Grid point 96 was skipped.
        assert_eq!(due[0].skipped, 1);
        assert_eq!(s.state(a).unwrap().skipped_total, 1);
    }

    #[test]
    fn error_counter_suspends_after_threshold() {
        let mut s = Scheduler::new(SchedulerConfig {
            phase: Duration::ZERO,
            error_suspend_threshold: 3,
        });
        let a = EntityId(1);
        s.register(a, TargetLag::Duration(mins(1)), vec![]);
        s.mark_initialized(a, ts(0)).unwrap();
        let fail = RefreshOutcome {
            action: RefreshAction::Failed("division by zero".into()),
            changed_rows: 0,
            dt_rows: 0,
            work_units: 10.0,
        };
        let mut now = 50;
        for i in 0..3 {
            let due = s.due_refreshes(ts(now));
            assert_eq!(due.len(), 1, "round {i}");
            let suspended = s.report(a, due[0].refresh_ts, &fail, ts(now + 1)).unwrap();
            assert_eq!(suspended, i == 2);
            now += 48;
        }
        assert!(s.state(a).unwrap().suspended);
        assert!(s.due_refreshes(ts(now)).is_empty());
        // Resume clears the error count.
        s.set_suspended(a, false).unwrap();
        assert_eq!(s.state(a).unwrap().error_count, 0);
        assert!(!s.due_refreshes(ts(now)).is_empty());
    }

    #[test]
    fn success_resets_error_counter() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let a = EntityId(1);
        s.register(a, TargetLag::Duration(mins(1)), vec![]);
        s.mark_initialized(a, ts(0)).unwrap();
        let fail = RefreshOutcome {
            action: RefreshAction::Failed("x".into()),
            changed_rows: 0,
            dt_rows: 0,
            work_units: 1.0,
        };
        let due = s.due_refreshes(ts(50));
        s.report(a, due[0].refresh_ts, &fail, ts(51)).unwrap();
        assert_eq!(s.state(a).unwrap().error_count, 1);
        let due = s.due_refreshes(ts(100));
        s.report(a, due[0].refresh_ts, &ok_outcome(), ts(101)).unwrap();
        assert_eq!(s.state(a).unwrap().error_count, 0);
    }

    #[test]
    fn lag_sawtooth_peaks_and_troughs() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let a = EntityId(1);
        s.register(a, TargetLag::Duration(mins(1)), vec![]);
        s.mark_initialized(a, ts(0)).unwrap();
        let due = s.due_refreshes(ts(50));
        s.report(a, due[0].refresh_ts, &ok_outcome(), ts(52)).unwrap();
        let samples = &s.state(a).unwrap().lag_samples;
        // Peak: 52 - 0 = 52s; trough: 52 - 48 = 4s.
        assert_eq!(samples[0].lag, Duration::from_secs(52));
        assert!(samples[0].peak);
        assert_eq!(samples[1].lag, Duration::from_secs(4));
        assert!(!samples[1].peak);
    }

    #[test]
    fn manual_refresh_plans_upstream_chain() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let (a, b, c) = (EntityId(1), EntityId(2), EntityId(3));
        s.register(a, TargetLag::Duration(mins(10)), vec![]);
        s.register(b, TargetLag::Duration(mins(10)), vec![a]);
        s.register(c, TargetLag::Duration(mins(10)), vec![b]);
        s.mark_initialized(a, ts(0)).unwrap();
        s.mark_initialized(b, ts(0)).unwrap();
        s.mark_initialized(c, ts(0)).unwrap();
        let plan = s.manual_refresh_plan(c, ts(500));
        let order: Vec<EntityId> = plan.iter().map(|c| c.dt).collect();
        assert_eq!(order, vec![a, b, c]);
        assert!(plan.iter().all(|c| c.refresh_ts == ts(500)));
    }

    #[test]
    fn init_timestamp_reuses_recent_upstream_data() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        let (a, b) = (EntityId(1), EntityId(2));
        s.register(a, TargetLag::Duration(mins(10)), vec![]);
        s.mark_initialized(a, ts(400)).unwrap();
        s.register(b, TargetLag::Duration(mins(10)), vec![a]);
        // a's data (t=400) is within b's 10-minute lag at t=500: reuse it —
        // initialized to a timestamp *before* creation (§3.1.2).
        assert_eq!(s.choose_init_ts(b, ts(500)), ts(400));
        // Outside the lag window: initialize at now.
        assert_eq!(s.choose_init_ts(b, ts(10_000)), ts(10_000));
    }
}
