//! Virtual warehouses: the data-plane resource model (§3.3.1).
//!
//! A warehouse is a cluster of nodes billed per second while active, with
//! automatic suspension when idle. Refresh cost follows §3.3.2's model:
//! a fixed cost plus a variable cost linear in the amount of changed data;
//! duration scales inversely with the node count.

use std::collections::HashMap;

use dt_common::{DtError, DtResult, Duration, Timestamp};

/// The fixed + variable refresh cost model of §3.3.2, in abstract "work
/// units" (1 unit ≈ 1 node-millisecond).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed per-refresh cost (query compilation, version resolution,
    /// commit) — paid even by small incremental refreshes.
    pub fixed_units: f64,
    /// Cost per input/changed row scanned.
    pub unit_per_row: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Defaults chosen so a no-op incremental refresh costs ~200ms
            // of one node and large scans dominate beyond ~10k rows.
            fixed_units: 200.0,
            unit_per_row: 0.02,
        }
    }
}

impl CostModel {
    /// Work units for a refresh that processes `rows` rows.
    pub fn units(&self, rows: usize) -> f64 {
        self.fixed_units + self.unit_per_row * rows as f64
    }
}

/// One virtual warehouse.
#[derive(Debug, Clone)]
pub struct Warehouse {
    /// Name (catalog-level identity).
    pub name: String,
    /// Number of nodes; duration scales as 1/nodes.
    pub nodes: u32,
    /// Suspend automatically after this much idle time.
    pub auto_suspend: Duration,
    /// Credits consumed so far (node-seconds).
    credits: f64,
    /// The instant the warehouse became (or will become) idle.
    busy_until: Timestamp,
    /// Whether currently suspended.
    suspended: bool,
    /// Total resumes (cold starts).
    resumes: u64,
}

impl Warehouse {
    /// A suspended warehouse with the given size.
    pub fn new(name: impl Into<String>, nodes: u32, auto_suspend: Duration) -> Self {
        assert!(nodes > 0);
        Warehouse {
            name: name.into(),
            nodes,
            auto_suspend,
            credits: 0.0,
            busy_until: Timestamp::EPOCH,
            suspended: true,
            resumes: 0,
        }
    }

    /// Account for suspension up to `now` (lazily applied before use).
    fn settle(&mut self, now: Timestamp) {
        if !self.suspended && now > self.busy_until {
            let idle = now.since(self.busy_until);
            if idle >= self.auto_suspend {
                // Bill the idle tail up to auto-suspend, then suspend.
                self.credits += self.auto_suspend.as_secs_f64() * self.nodes as f64;
                self.suspended = true;
            }
        }
    }

    /// Execute a job of `units` work at `now`; returns its duration.
    /// Resuming a suspended warehouse counts a cold start.
    pub fn execute(&mut self, now: Timestamp, units: f64) -> Duration {
        self.settle(now);
        if self.suspended {
            self.suspended = false;
            self.resumes += 1;
            self.busy_until = now;
        } else if now > self.busy_until {
            // Bill idle-but-running time since the last job.
            self.credits += now.since(self.busy_until).as_secs_f64() * self.nodes as f64;
            self.busy_until = now;
        }
        // 1 unit = 1 node-millisecond of work.
        let millis = (units / self.nodes as f64).max(1.0);
        let d = Duration::from_micros((millis * 1_000.0) as i64);
        // Jobs on a warehouse serialize in this model (one refresh at a
        // time per DT; co-located DTs queue, trading latency for cost —
        // exactly the §3.3.1 trade-off).
        let start = self.busy_until.max(now);
        self.busy_until = start.add(d);
        self.credits += d.as_secs_f64() * self.nodes as f64;
        d
    }

    /// When the warehouse will next be free.
    pub fn busy_until(&self) -> Timestamp {
        self.busy_until
    }

    /// Credits (node-seconds) consumed so far.
    pub fn credits(&self) -> f64 {
        self.credits
    }

    /// Cold starts so far.
    pub fn resumes(&self) -> u64 {
        self.resumes
    }

    /// Whether the warehouse is suspended as of `now`.
    pub fn is_suspended(&mut self, now: Timestamp) -> bool {
        self.settle(now);
        self.suspended
    }
}

/// The account's warehouses, by name.
#[derive(Debug, Default)]
pub struct WarehousePool {
    warehouses: HashMap<String, Warehouse>,
}

impl WarehousePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a warehouse. Names are unique.
    pub fn create(&mut self, name: &str, nodes: u32, auto_suspend: Duration) -> DtResult<()> {
        let lname = name.to_ascii_lowercase();
        if self.warehouses.contains_key(&lname) {
            return Err(DtError::Catalog(format!("warehouse '{lname}' already exists")));
        }
        self.warehouses
            .insert(lname.clone(), Warehouse::new(lname, nodes, auto_suspend));
        Ok(())
    }

    /// Look up a warehouse.
    pub fn get_mut(&mut self, name: &str) -> DtResult<&mut Warehouse> {
        self.warehouses
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DtError::Catalog(format!("unknown warehouse '{name}'")))
    }

    /// Read-only lookup.
    pub fn get(&self, name: &str) -> DtResult<&Warehouse> {
        self.warehouses
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DtError::Catalog(format!("unknown warehouse '{name}'")))
    }

    /// Total credits across all warehouses.
    pub fn total_credits(&self) -> f64 {
        self.warehouses.values().map(|w| w.credits()).sum()
    }

    /// Dump every warehouse's definition as `(name, nodes, auto_suspend)`,
    /// sorted by name. Runtime accounting (credits, busy-until, resume
    /// counts) is deliberately excluded: a restarted engine starts its
    /// warehouses cold, like a resumed account.
    pub fn dump(&self) -> Vec<(String, u32, Duration)> {
        let mut out: Vec<(String, u32, Duration)> = self
            .warehouses
            .values()
            .map(|w| (w.name.clone(), w.nodes, w.auto_suspend))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn cost_model_fixed_plus_variable() {
        let m = CostModel::default();
        assert!(m.units(0) > 0.0);
        assert!(m.units(1_000_000) > 100.0 * m.units(0) / 2.0);
    }

    #[test]
    fn bigger_warehouses_run_faster_but_cost_more_per_second() {
        let mut small = Warehouse::new("s", 1, Duration::from_mins(5));
        let mut big = Warehouse::new("b", 8, Duration::from_mins(5));
        let d_small = small.execute(ts(0), 8000.0);
        let d_big = big.execute(ts(0), 8000.0);
        assert!(d_big < d_small);
        // Same total credits for the same work (seconds × nodes).
        let ratio = small.credits() / big.credits();
        assert!((ratio - 1.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn auto_suspend_stops_billing() {
        let mut w = Warehouse::new("w", 2, Duration::from_secs(60));
        w.execute(ts(0), 1000.0);
        let after_job = w.credits();
        // A long idle period: only the 60s auto-suspend tail is billed.
        assert!(w.is_suspended(ts(3600)));
        let billed_idle = w.credits() - after_job;
        assert!((billed_idle - 120.0).abs() < 1.0, "billed {billed_idle}");
        // Next job is a cold start.
        w.execute(ts(3600), 1000.0);
        assert_eq!(w.resumes(), 2);
    }

    #[test]
    fn jobs_queue_on_a_busy_warehouse() {
        let mut w = Warehouse::new("w", 1, Duration::from_mins(5));
        let d1 = w.execute(ts(0), 10_000.0); // 10s on one node
        assert_eq!(d1, Duration::from_secs(10));
        // Second job issued at t=0 starts after the first.
        w.execute(ts(0), 10_000.0);
        assert_eq!(w.busy_until(), ts(20));
    }

    #[test]
    fn pool_create_and_duplicate() {
        let mut p = WarehousePool::new();
        p.create("WH", 4, Duration::from_mins(5)).unwrap();
        assert!(p.create("wh", 1, Duration::from_mins(5)).is_err());
        assert_eq!(p.get("wh").unwrap().nodes, 4);
        assert!(p.get("nope").is_err());
    }
}
