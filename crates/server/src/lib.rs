//! The network front end: a framed wire-protocol server over TCP.
//!
//! Everything the engine can do in-process — queries, prepared
//! statements with `?` parameters, `BEGIN`/`COMMIT`/`ROLLBACK`
//! transactions, time travel, telemetry — becomes reachable over a
//! socket. The design leans on two properties the engine already
//! guarantees:
//!
//! * [`Engine`] is `Clone + Send + Sync`: every connection thread holds
//!   its own cheap handle to one shared engine.
//! * [`Session`] methods are `&self` and sessions are independent: one
//!   session per connection gives each remote peer its own role,
//!   variables, prepared-statement cache, and transaction scope — the
//!   same isolation local callers get.
//!
//! **Threading model.** One OS thread per connection over
//! `std::net::TcpListener` (the build environment has no registry
//! access, so no tokio; the paper's service is session-threaded too).
//! An accept thread admits connections under a configurable limit —
//! the N+1th connection is answered with a typed
//! [`WireError::ServerBusy`] frame and closed, never left hanging.
//!
//! **Connection lifecycle.** Handshake (magic + protocol version,
//! answered with [`Response::Hello`] or a typed protocol error), then a
//! request/response loop. Sockets are polled with a short read timeout
//! so every connection keeps enforcing its idle timeout and observing
//! shutdown without losing partial frames ([`dt_wire::FrameReader`]).
//! Frame sizes are capped in both directions before any allocation.
//!
//! **Failure semantics.** Engine errors (including retryable
//! [`dt_common::DtError::Conflict`]) are answered in-band and leave the
//! connection usable. Protocol violations (bad magic, oversized or
//! malformed frames) are answered with a typed error where framing
//! still permits, then the connection closes — the server never panics
//! on hostile bytes. When a connection drops — cleanly or not — its
//! session is dropped, which rolls back any open transaction: no
//! admission lock or `TxnManager` state can leak past a disconnect.
//!
//! **Shutdown.** [`Server::shutdown`] stops admitting, nudges the
//! accept loop awake, lets every connection finish the request it is
//! processing (in-flight requests drain; the next poll observes the
//! flag), then joins all threads. Open transactions of still-connected
//! peers roll back via the same session-drop path.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dt_core::{Engine, ExecResult, Session, Statement};
use dt_wire::{
    write_frame, FrameError, FrameReader, Hello, Poll, RemoteRows, Request, Response, ServerStats,
    WireError, PROTOCOL_VERSION,
};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently admitted connections; the next one is
    /// answered with [`WireError::ServerBusy`] and closed.
    pub max_connections: usize,
    /// A connection that sends no complete request for this long is
    /// answered with a typed protocol error and closed. Also bounds how
    /// long a peer may dawdle over the handshake.
    pub idle_timeout: Duration,
    /// Per-frame payload cap, enforced before any allocation on both
    /// received and sent frames.
    pub max_frame_len: u32,
    /// Socket read-poll granularity: how often an idle connection wakes
    /// to check its idle timeout and the shutdown flag. Latency of
    /// shutdown and idle enforcement, not of requests.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            max_frame_len: dt_wire::DEFAULT_MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// State shared between the accept loop, connections, and telemetry.
struct Shared {
    engine: Engine,
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    total_connections: AtomicU64,
    rejected_connections: AtomicU64,
    requests_served: AtomicU64,
}

impl Shared {
    /// Assemble the telemetry snapshot `SHOW STATS` / [`Request::Stats`]
    /// reports: server counters + engine commit pipeline + storage scan
    /// pruning.
    fn stats(&self) -> ServerStats {
        let commit = self.engine.commit_stats();
        let refresh = self.engine.refresh_stats();
        let wal = self.engine.wal_stats();
        let lock = self.engine.lock_stats();
        let active_txns = self.engine.inspect(|s| s.txn_manager().active_txns());
        ServerStats {
            active_connections: self.active.load(Ordering::Relaxed) as u64,
            total_connections: self.total_connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            active_txns: active_txns as u64,
            commits: commit.commits,
            conflicts: commit.conflicts,
            install_lock_acquisitions: commit.install_lock_acquisitions,
            max_batch: commit.max_batch,
            group_submitted: commit.group_submitted,
            zone_map_pruned: dt_storage::zone_map_pruned_total(),
            refreshes: refresh.refreshes,
            refresh_batches: refresh.install_lock_acquisitions,
            refresh_workers: refresh.workers,
            wal_appends: wal.appends,
            wal_batches: wal.batches,
            wal_fsyncs: wal.fsyncs,
            wal_bytes: wal.bytes,
            checkpoints: wal.checkpoints,
            recovery_replayed: wal.recovery_replayed,
            lock_waits: lock.waits,
            lock_wait_time_us: lock.wait_time_us,
            lock_timeouts: lock.timeouts,
            deadlocks: lock.deadlocks,
            tables_pessimistic: lock.tables_pessimistic,
            adaptive_flips: lock.adaptive_flips,
        }
    }
}

/// A running wire-protocol server. Dropping it (or calling
/// [`Server::shutdown`]) drains and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `engine`. Returns once the listener is live; the accept loop and
    /// all connections run on background threads.
    pub fn bind(
        engine: Engine,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            total_connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("dt-server-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on (resolves ephemeral
    /// ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently admitted.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// The telemetry snapshot remote peers get from `SHOW STATS`.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop admitting, let every connection finish
    /// its in-flight request, roll back transactions left open by
    /// still-connected peers (their sessions drop), and join all
    /// threads. Also runs on `Drop`; returns when fully drained.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; poke it awake. The
        // throwaway connection is answered with `ShuttingDown`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("active_connections", &self.active_connections())
            .finish()
    }
}

/// Decrements the active-connection count when a connection thread
/// exits, however it exits (panic-safe: runs during unwind too).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            answer_and_close(stream, &WireError::ShuttingDown);
            break;
        }
        // Admission control: claim a slot or reject with a typed frame.
        let limit = shared.config.max_connections;
        let mut admitted = false;
        loop {
            let cur = shared.active.load(Ordering::SeqCst);
            if cur >= limit {
                break;
            }
            if shared
                .active
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                admitted = true;
                break;
            }
        }
        if !admitted {
            shared.rejected_connections.fetch_add(1, Ordering::Relaxed);
            let active = shared.active.load(Ordering::SeqCst) as u32;
            let busy = WireError::ServerBusy {
                active,
                limit: limit as u32,
            };
            // Detached: the rejection drain must not stall admissions.
            let _ = std::thread::Builder::new()
                .name("dt-server-reject".into())
                .spawn(move || answer_and_close(stream, &busy));
            continue;
        }
        shared.total_connections.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dt-server-conn".into())
            .spawn(move || {
                let _guard = ConnGuard(Arc::clone(&conn_shared));
                serve_connection(stream, conn_shared);
            });
        match handle {
            Ok(h) => conn_threads.push(h),
            // Spawn failed: the guard never ran, release the slot here.
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
        // Reap finished threads so a long-lived server doesn't
        // accumulate handles.
        conn_threads.retain(|h| !h.is_finished());
    }
    for h in conn_threads {
        let _ = h.join();
    }
}

/// Best-effort single-frame answer on a connection being turned away
/// (busy / shutting down). Errors are ignored: the peer may already be
/// gone, and the connection was never admitted. Half-closes and then
/// drains the peer's in-flight bytes (its `Hello` is likely mid-flight)
/// so closing the socket doesn't RST the answer away before the peer
/// reads it.
fn answer_and_close(stream: TcpStream, err: &WireError) {
    use std::io::Read;
    let mut stream = stream;
    let _ = write_frame(&mut stream, &Response::Err(err.clone()).encode());
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Outcome of handling one request: the response, plus whether the
/// connection should close after sending it.
struct Handled {
    response: Response,
    close: bool,
}

impl Handled {
    fn reply(response: Response) -> Handled {
        Handled {
            response,
            close: false,
        }
    }

    fn last(response: Response) -> Handled {
        Handled {
            response,
            close: true,
        }
    }
}

/// Per-connection state: the engine session (role, variables, open
/// transaction) plus the connection-scoped prepared-statement table.
struct Connection {
    shared: Arc<Shared>,
    session: Session,
    statements: HashMap<u64, Statement>,
    next_statement_id: u64,
}

impl Connection {
    fn new(shared: Arc<Shared>) -> Connection {
        let session = shared.engine.session();
        Connection {
            shared,
            session,
            statements: HashMap::new(),
            next_statement_id: 1,
        }
    }

    fn handle(&mut self, request: Request) -> Handled {
        match request {
            Request::Query { sql } => {
                if is_show_stats(&sql) {
                    return Handled::reply(stats_as_rows(&self.shared.stats()));
                }
                Handled::reply(exec_to_response(self.session.execute(&sql)))
            }
            Request::QueryAt { sql, at } => {
                Handled::reply(match self.session.query_at(&sql, at) {
                    Ok(rows) => rows_response(rows),
                    Err(e) => Response::Err(WireError::Engine(e)),
                })
            }
            Request::Prepare { sql } => Handled::reply(match self.session.prepare(&sql) {
                Ok(stmt) => {
                    let id = self.next_statement_id;
                    self.next_statement_id += 1;
                    let params = stmt.param_count() as u16;
                    self.statements.insert(id, stmt);
                    Response::Prepared { id, params }
                }
                Err(e) => Response::Err(WireError::Engine(e)),
            }),
            Request::ExecutePrepared { id, params } => {
                let Some(stmt) = self.statements.get(&id) else {
                    return Handled::reply(Response::Err(WireError::Engine(
                        dt_common::DtError::Binding(format!(
                            "unknown prepared statement id {id} on this connection"
                        )),
                    )));
                };
                Handled::reply(exec_to_response(stmt.execute(&params)))
            }
            Request::Begin => Handled::reply(exec_to_response(self.session.execute("BEGIN"))),
            Request::Commit => Handled::reply(exec_to_response(self.session.execute("COMMIT"))),
            Request::Rollback => {
                Handled::reply(exec_to_response(self.session.execute("ROLLBACK")))
            }
            Request::Stats => Handled::reply(Response::Stats(self.shared.stats())),
            Request::Close => Handled::last(Response::Goodbye),
        }
    }
}

/// `SHOW STATS` is served by the *server*, not the engine: the engine
/// has no notion of connections. Recognized here so plain SQL clients
/// can observe the service without the typed [`Request::Stats`].
fn is_show_stats(sql: &str) -> bool {
    sql.trim()
        .trim_end_matches(';')
        .trim()
        .eq_ignore_ascii_case("SHOW STATS")
}

/// Render the stats as `(name, value)` rows for SQL-shaped consumers.
fn stats_as_rows(stats: &ServerStats) -> Response {
    use dt_common::{Column, DataType, Row, Schema, Value};
    let schema = Arc::new(Schema::new(vec![
        Column::new("name", DataType::Str),
        Column::new("value", DataType::Int),
    ]));
    let rows = stats
        .fields()
        .into_iter()
        .map(|(name, v)| Row::new(vec![Value::Str(name.into()), Value::Int(v as i64)]))
        .collect();
    Response::Rows(RemoteRows::new(schema, rows))
}

fn rows_response(rows: dt_core::QueryResult) -> Response {
    let schema = rows.schema().clone();
    Response::Rows(RemoteRows::new(schema, rows.into_rows()))
}

fn exec_to_response(result: dt_common::DtResult<ExecResult>) -> Response {
    match result {
        Ok(ExecResult::Rows(rows)) => rows_response(rows),
        Ok(ExecResult::Ok(message)) => Response::Ok(message),
        Ok(ExecResult::Count(n)) => Response::Count(n as u64),
        Err(e) => Response::Err(WireError::Engine(e)),
    }
}

/// Outcome of waiting for one complete frame.
enum Gather {
    Frame(Vec<u8>),
    IdleTimeout,
    Closed,
    Shutdown,
    TooLarge { len: u32, max: u32 },
    Io,
}

/// Poll the socket until a complete frame arrives, the deadline passes,
/// the peer closes, or the server begins shutting down. Partial frames
/// survive across polls inside `reader`.
fn gather_frame(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    shared: &Shared,
    deadline: Instant,
) -> Gather {
    loop {
        match reader.poll(stream, shared.config.max_frame_len) {
            Ok(Poll::Frame(payload)) => return Gather::Frame(payload),
            Ok(Poll::Pending) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Gather::Shutdown;
                }
                if Instant::now() >= deadline {
                    return Gather::IdleTimeout;
                }
            }
            Ok(Poll::Closed) => return Gather::Closed,
            Err(FrameError::TooLarge { len, max }) => return Gather::TooLarge { len, max },
            Err(FrameError::Io(_)) => return Gather::Io,
        }
    }
}

fn send(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    write_frame(stream, &response.encode())?;
    stream.flush()
}

fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let mut reader = FrameReader::new();

    // --- Handshake: one Hello frame within the idle window. ---
    let deadline = Instant::now() + shared.config.idle_timeout;
    let hello = match gather_frame(&mut stream, &mut reader, &shared, deadline) {
        Gather::Frame(payload) => payload,
        Gather::Shutdown => {
            let _ = send(&mut stream, &Response::Err(WireError::ShuttingDown));
            return;
        }
        Gather::IdleTimeout => {
            let _ = send(
                &mut stream,
                &Response::Err(WireError::Protocol("handshake timed out".into())),
            );
            return;
        }
        Gather::TooLarge { len, max } => {
            let _ = send(
                &mut stream,
                &Response::Err(WireError::Protocol(format!(
                    "frame length {len} exceeds cap {max}"
                ))),
            );
            return;
        }
        Gather::Closed | Gather::Io => return,
    };
    match Hello::decode(&hello) {
        Ok(h) if h.version == PROTOCOL_VERSION => {
            if send(
                &mut stream,
                &Response::Hello {
                    version: PROTOCOL_VERSION,
                },
            )
            .is_err()
            {
                return;
            }
        }
        Ok(h) => {
            let _ = send(
                &mut stream,
                &Response::Err(WireError::Protocol(format!(
                    "unsupported protocol version {} (server speaks {PROTOCOL_VERSION})",
                    h.version
                ))),
            );
            return;
        }
        Err(e) => {
            let _ = send(
                &mut stream,
                &Response::Err(WireError::Protocol(e.to_string())),
            );
            return;
        }
    }

    // --- Request loop. The session (and with it any open transaction,
    // which rolls back on drop) lives exactly as long as this scope. ---
    let mut conn = Connection::new(Arc::clone(&shared));
    loop {
        // Checked here — not only on idle polls — so a connection kept
        // busy by a fast request stream still observes shutdown between
        // requests (the in-flight one was fully answered).
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = send(&mut stream, &Response::Err(WireError::ShuttingDown));
            return;
        }
        let deadline = Instant::now() + shared.config.idle_timeout;
        let payload = match gather_frame(&mut stream, &mut reader, &shared, deadline) {
            Gather::Frame(payload) => payload,
            Gather::Shutdown => {
                // Drained: the previous request was fully answered.
                let _ = send(&mut stream, &Response::Err(WireError::ShuttingDown));
                return;
            }
            Gather::IdleTimeout => {
                let _ = send(
                    &mut stream,
                    &Response::Err(WireError::Protocol(format!(
                        "idle timeout: no request in {:?}",
                        shared.config.idle_timeout
                    ))),
                );
                return;
            }
            Gather::TooLarge { len, max } => {
                // The oversized frame was never read off the socket;
                // answer typed, then close (the stream position is
                // unrecoverable).
                let _ = send(
                    &mut stream,
                    &Response::Err(WireError::Protocol(format!(
                        "frame length {len} exceeds cap {max}"
                    ))),
                );
                return;
            }
            Gather::Closed | Gather::Io => return,
        };
        shared.requests_served.fetch_add(1, Ordering::Relaxed);
        let handled = match Request::decode(&payload) {
            Ok(request) => conn.handle(request),
            // Framing was intact — only the payload was malformed — so
            // the connection stays usable after a typed answer.
            Err(e) => Handled::reply(Response::Err(WireError::Protocol(e.to_string()))),
        };
        let encoded = handled.response.encode();
        let frame = if encoded.len() as u64 <= shared.config.max_frame_len as u64 {
            encoded
        } else {
            Response::Err(WireError::Protocol(format!(
                "response exceeds frame cap {}; narrow the query",
                shared.config.max_frame_len
            )))
            .encode()
        };
        if write_frame(&mut stream, &frame).and_then(|_| stream.flush()).is_err() {
            return;
        }
        if handled.close {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn show_stats_recognizer() {
        assert!(is_show_stats("SHOW STATS"));
        assert!(is_show_stats("  show stats ; "));
        assert!(!is_show_stats("SHOW DYNAMIC TABLES"));
        assert!(!is_show_stats("SELECT 'SHOW STATS'"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.max_connections > 0);
        assert!(c.idle_timeout > c.poll_interval);
        assert!(c.max_frame_len >= 1024);
    }
}
